"""Extension benches: leader election, multi-message pipelining, and
centralized-schedule quality — the features built on top of the paper's
core per DESIGN.md §4/§5.
"""

from conftest import bench_config, emit, run_once

from repro.analysis.tables import Table
from repro.core.schedule import greedy_layer_schedule, sequential_tree_schedule
from repro.graphs import grid, random_gnp
from repro.graphs.properties import diameter
from repro.protocols.leader_election import run_leader_election
from repro.protocols.multi_broadcast import run_multi_broadcast
from repro.rng import spawn


def _leader_election_table(config):
    table = Table(
        "EXT-a — Decay leader election ([BGI89] application)",
        ["n", "runs", "correct_rate", "mean_slots"],
    )
    sizes = (9, 16) if config.quick else (9, 16, 36, 64)
    for n in sizes:
        side = int(n**0.5)
        g = grid(side, side)
        correct = 0
        slots = []
        for seed in config.seeds("le", n):
            result = run_leader_election(g, seed=seed, epsilon=0.1)
            outputs = result.node_results()
            expected = max(g.nodes)
            if all(out["winner_id"] == expected for out in outputs.values()):
                correct += 1
            slots.append(result.slots)
        table.add_row(
            g.num_nodes(),
            config.reps,
            correct / config.reps,
            sum(slots) / len(slots),
        )
    return table


def test_ext_leader_election(benchmark):
    config = bench_config(reps=8)
    table = run_once(benchmark, _leader_election_table, config)
    emit("ext_leader_election", table)
    assert all(rate >= 0.7 for rate in table.column("correct_rate"))


def _multi_broadcast_table(config):
    table = Table(
        "EXT-b — multi-message broadcast: pipelined vs sequential ([BII89] shape)",
        ["messages", "pipelined_slots", "sequential_slots", "speedup"],
    )
    g = grid(5, 5)
    counts = (2, 4) if config.quick else (2, 4, 8, 16)
    for j in counts:
        payloads = [f"m{i}" for i in range(j)]
        pipe = run_multi_broadcast(
            g, 0, payloads, mode="pipelined", seed=config.master_seed
        )
        seq = run_multi_broadcast(
            g, 0, payloads, mode="sequential", seed=config.master_seed
        )
        table.add_row(j, pipe.slots, seq.slots, seq.slots / pipe.slots)
    return table


def test_ext_multi_broadcast(benchmark):
    config = bench_config(reps=5)
    table = run_once(benchmark, _multi_broadcast_table, config)
    emit("ext_multi_broadcast", table)
    speedups = table.column("speedup")
    assert speedups[-1] > speedups[0]  # pipelining pays more with more messages


def _schedule_quality_table(config):
    table = Table(
        "EXT-c — centralized schedule length: greedy ([CW87] flavour) vs sequential",
        ["n", "D", "greedy_len", "tree_len", "greedy_over_D"],
    )
    sizes = (40, 80) if config.quick else (40, 80, 160, 320)
    for n in sizes:
        g = random_gnp(n, min(1.0, 6.0 / n), spawn(config.master_seed, "schedq", n))
        d = diameter(g)
        greedy = greedy_layer_schedule(g, 0, rng=spawn(config.master_seed, "g", n))
        tree = sequential_tree_schedule(g, 0)
        table.add_row(n, d, len(greedy), len(tree), len(greedy) / max(1, d))
    return table


def _routing_table(config):
    from repro.graphs import grid as make_grid
    from repro.protocols.routing import run_routing

    table = Table(
        "EXT-e — point-to-point routing ([BII89]): beam vs flood",
        ["grid", "hops", "delivered_rate", "mean_beam_size", "n"],
    )
    sides = (5, 6) if config.quick else (5, 6, 8, 10)
    for side in sides:
        g = make_grid(side, side)
        # Route along one edge of the grid (corner-to-corner would put
        # EVERY node on a shortest path, which defeats the beam demo).
        target = side - 1
        delivered = 0
        beams = []
        for seed in config.seeds("routing", side):
            out = run_routing(g, 0, target, seed=seed, epsilon=0.1)
            if out["delivered"]:
                delivered += 1
                beams.append(out["beam_size"])
        table.add_row(
            f"{side}x{side}",
            side - 1,
            delivered / config.reps,
            sum(beams) / len(beams) if beams else float("nan"),
            side * side,
        )
    return table


def test_ext_routing(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, _routing_table, config)
    emit("ext_routing", table)
    assert all(rate >= 0.8 for rate in table.column("delivered_rate"))
    # The beam stays well below the full network (routing, not flooding).
    for beam, n in zip(table.column("mean_beam_size"), table.column("n")):
        assert beam < 0.8 * n


def _emulation_table(config):
    from repro.emulation import (
        ActiveCountProtocol,
        MaxFindingProtocol,
        run_emulated,
        run_single_hop,
    )
    from repro.graphs import ring

    table = Table(
        "EXT-d — [BGI89] emulation: single-hop CD protocols on multi-hop no-CD nets",
        ["protocol", "n", "rounds", "slots", "matches_direct", "all_agree"],
    )
    sizes = (6, 9) if config.quick else (6, 9, 16)
    for n in sizes:
        g = ring(n)
        bits = max(1, (n - 1).bit_length())
        active = {1, n - 1}
        direct = run_single_hop(
            {i: MaxFindingProtocol(i, bits, active=(i in active)) for i in g.nodes},
            bits + 2,
        )
        result = run_emulated(
            g,
            {i: MaxFindingProtocol(i, bits, active=(i in active)) for i in g.nodes},
            max_rounds=bits + 1,
            seed=config.master_seed,
            epsilon=0.1,
        )
        outs = result.node_results()
        table.add_row(
            "max-finding",
            n,
            bits + 1,
            result.slots,
            all(outs[v]["winner"] == direct[v]["winner"] for v in g.nodes),
            len({o["winner"] for o in outs.values()}) == 1,
        )
        direct_count = run_single_hop(
            {i: ActiveCountProtocol(i, (0, n), active=(i in active)) for i in g.nodes},
            20 * n,
        )
        result_count = run_emulated(
            g,
            {i: ActiveCountProtocol(i, (0, n), active=(i in active)) for i in g.nodes},
            max_rounds=6 * len(active) + 8,
            seed=config.master_seed + 1,
            epsilon=0.1,
        )
        outs_count = result_count.node_results()
        table.add_row(
            "active-count",
            n,
            "-",
            result_count.slots,
            all(outs_count[v] == direct_count[v] for v in g.nodes),
            len({tuple(o["roster"]) for o in outs_count.values()}) == 1,
        )
    return table


def test_ext_emulation(benchmark):
    config = bench_config(reps=5)
    table = run_once(benchmark, _emulation_table, config)
    emit("ext_emulation", table)
    assert all(table.column("matches_direct"))
    assert all(table.column("all_agree"))


def test_ext_schedule_quality(benchmark):
    config = bench_config(reps=5)
    table = run_once(benchmark, _schedule_quality_table, config)
    emit("ext_schedule_quality", table)
    for greedy_len, tree_len in zip(table.column("greedy_len"), table.column("tree_len")):
        assert greedy_len <= tree_len
