"""E11 — Section 3.4: DFS <= 2n, plus the deterministic-regime comparison."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_dfs import (
    run_deterministic_comparison_table,
    run_dfs_table,
)


def test_e11_dfs_2n(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_dfs_table, config)
    emit("e11_dfs", table)
    assert all(table.column("claim_holds"))


def test_e11b_deterministic_comparison(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_deterministic_comparison_table, config)
    emit("e11b_deterministic_comparison", table)
    assert len(table) > 0
