"""E4 — the deterministic lower bound (Lemmas 9-10, Prop. 11, Thm 12).

Regenerates: the adversary-vs-strategy table (every strategy stalled
for n/2 moves), the compiled-protocol lower bound (≥ n/4 rounds), and
the matching O(n) upper bounds.  Micro-benchmarks ``find_set``.
"""

import random

from conftest import bench_config, emit, run_once

from repro.experiments.exp_hitting import (
    run_adversary_table,
    run_protocol_lower_bound_table,
    run_upper_bound_table,
)
from repro.lowerbound.adversary import find_set


def test_e4_adversary_table(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_adversary_table, config)
    emit("e4_adversary", table)
    assert all(table.column("S_nonempty"))
    assert all(table.column("survived_all"))


def test_e4b_protocol_lower_bound(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_protocol_lower_bound_table, config)
    emit("e4b_protocol_lower_bound", table)
    assert all(table.column("claim_holds"))


def test_e4c_upper_bounds(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_upper_bound_table, config)
    emit("e4c_upper_bounds", table)
    assert all(table.column("sweep_le_n"))
    assert all(table.column("rr_le_n"))


def test_micro_find_set(benchmark):
    rng = random.Random(3)
    n = 256
    moves = [
        set(rng.sample(range(1, n + 1), rng.randint(1, n))) for _ in range(n // 2)
    ]
    s = benchmark(lambda: find_set(moves, n))
    assert s
