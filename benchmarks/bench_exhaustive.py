"""E4d — Theorem 12 verified exhaustively on the real engine (small n)."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_exhaustive import run_exhaustive_table


def test_e4d_exhaustive_theorem12(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_exhaustive_table, config)
    emit("e4d_exhaustive", table)
    assert all(table.column("thm12_holds"))
    # Decay's average beats the deterministic worst case already here.
    for worst, rand in zip(
        table.column("worst_slots"), table.column("rand_mean_on_worst_set")
    ):
        assert rand <= worst + 1
