"""Parallel execution layer: serial-vs-pool speedup and equivalence.

Not a paper result — this benchmarks the :mod:`repro.parallel`
process-pool backend.  Two properties are recorded:

* **Equivalence** (asserted, not just printed): for the same derived
  seeds, ``jobs=N`` returns element-for-element the same results as
  ``jobs=1``.  This is the whole point of order-independent seeding.
* **Speedup** (informational): wall-clock ratio of the serial loop to
  the pooled run.  On a single-core container the ratio hovers around
  or below 1.0 — pool overhead with no extra cores — which is expected
  and does not fail the bench.
"""

from __future__ import annotations

import os
import time
from functools import partial

from conftest import bench_config, emit, run_once

from repro.analysis.tables import Table
from repro.experiments.exp_decay import engine_decay_game
from repro.parallel import parallel_map, resolve_jobs

#: Workload: the full-engine Theorem-1 game, heavy enough per repetition
#: that chunked dispatch amortises IPC.
_D, _K = (32, 10)


def _timed_map(fn, seeds, jobs):
    start = time.perf_counter()
    results = parallel_map(fn, seeds, jobs=jobs)
    return results, time.perf_counter() - start


def run_parallel_speedup_table(reps: int, job_counts: tuple[int, ...]) -> Table:
    """Time ``reps`` engine decay games serially and per worker count."""
    config = bench_config(reps)
    seeds = config.seeds("bench-parallel", _D, _K)
    fn = partial(engine_decay_game, _D, _K)
    serial_results, serial_time = _timed_map(fn, seeds, jobs=1)
    table = Table(
        f"parallel backend — engine_decay_game(d={_D}, k={_K}) x {len(seeds)}",
        ["jobs", "wall_sec", "speedup", "identical_to_serial"],
    )
    table.add_row(1, round(serial_time, 3), 1.0, True)
    for jobs in job_counts:
        pooled_results, pooled_time = _timed_map(fn, seeds, jobs=jobs)
        identical = pooled_results == serial_results
        assert identical, f"jobs={jobs} diverged from serial results"
        table.add_row(
            jobs,
            round(pooled_time, 3),
            round(serial_time / pooled_time, 2),
            identical,
        )
    return table


def test_parallel_speedup(benchmark):
    cpus = os.cpu_count() or 1
    job_counts = tuple(sorted({2, min(4, max(2, cpus)), resolve_jobs(0)}))
    table = run_once(
        benchmark, run_parallel_speedup_table, reps=200, job_counts=job_counts
    )
    emit("bench_parallel", table)
