"""E7 — paper property 2: expected transmissions <= 2n*ceil(log(N/eps))."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_messages import run_message_complexity_table


def test_e7_message_complexity(benchmark):
    config = bench_config(reps=20)
    table = run_once(benchmark, run_message_complexity_table, config)
    emit("e7_messages", table)
    assert all(table.column("mean_within_bound"))
