"""E2/E3 — Lemmas 2-3 and Theorem 4: randomized broadcast time.

Regenerates: completion-slot statistics vs the Theorem-4 bound across
four topology families (E2), the failure-rate-vs-ε table (E3), and the
diameter-scaling shape check (E2b).  Micro-benchmarks one end-to-end
broadcast run (the engine's hot loop).
"""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_broadcast import (
    broadcast_family,
    run_broadcast_time_table,
    run_diameter_scaling_table,
    run_success_rate_table,
    run_upper_bound_sensitivity_table,
)
from repro.protocols.decay_broadcast import run_decay_broadcast


def test_e2_broadcast_time_table(benchmark):
    config = bench_config(reps=25)
    table = run_once(benchmark, run_broadcast_time_table, config)
    emit("e2_broadcast_time", table)
    for frac, required in zip(
        table.column("within_bound_frac"), table.column("required_frac")
    ):
        assert frac >= required


def test_e3_success_rate_table(benchmark):
    config = bench_config(reps=200)
    table = run_once(benchmark, run_success_rate_table, config)
    emit("e3_success_rate", table)
    assert all(table.column("claim_holds"))


def test_e2b_diameter_scaling_table(benchmark):
    config = bench_config(reps=20)
    table = run_once(benchmark, run_diameter_scaling_table, config)
    emit("e2b_diameter_scaling", table)
    per_d = table.column("slots_per_D")
    assert max(per_d) <= 4 * min(per_d)


def test_e2c_upper_bound_sensitivity(benchmark):
    config = bench_config(reps=25)
    table = run_once(benchmark, run_upper_bound_sensitivity_table, config)
    emit("e2c_upper_bound_sensitivity", table)
    # Polynomial N costs only a small constant factor, never correctness.
    assert all(rate >= 0.85 for rate in table.column("success_rate"))
    assert all(s <= 3.0 for s in table.column("slowdown"))


def test_micro_single_broadcast_run(benchmark):
    g = broadcast_family("gnp", 96, 1)

    counter = iter(range(10**9))

    def one_run():
        return run_decay_broadcast(g, source=0, seed=next(counter), epsilon=0.1)

    result = benchmark(one_run)
    assert result.slots > 0
