"""E5 — Corollary 13: THE headline result.

Regenerates the exponential-gap table on the ``C_n`` family:
randomized Decay broadcast (polylog slots) vs round-robin TDMA and DFS
token traversal (linear slots), plus the growth-law fits that classify
the curves.
"""

from conftest import bench_config, emit, run_once

from repro.analysis.tables import Table
from repro.experiments.exp_gap import gap_growth_fits, run_gap_table


def test_e5_exponential_gap(benchmark):
    config = bench_config(reps=15)
    table = run_once(benchmark, run_gap_table, config)
    fits = gap_growth_fits(table)
    fit_table = Table(
        "E5 fits — growth-law classification (Corollary 13's shape)",
        ["curve", "model", "slope", "r_squared"],
    )
    fit_table.add_row(
        "randomized", "a + b*log2(n)^2",
        fits["randomized_vs_log2sq"]["slope"], fits["randomized_vs_log2sq"]["r_squared"],
    )
    fit_table.add_row(
        "randomized", "a + b*n",
        fits["randomized_vs_n"]["slope"], fits["randomized_vs_n"]["r_squared"],
    )
    fit_table.add_row(
        "round-robin", "a + b*n",
        fits["round_robin_vs_n"]["slope"], fits["round_robin_vs_n"]["r_squared"],
    )
    fit_table.add_row(
        "dfs", "a + b*n",
        fits["dfs_vs_n"]["slope"], fits["dfs_vs_n"]["r_squared"],
    )
    emit("e5_gap", table, fit_table)
    ratios = table.column("gap_rr_over_rand")
    assert ratios[-1] > ratios[0]
    assert fits["round_robin_vs_n"]["slope"] > 0.5
    assert fits["dfs_vs_n"]["slope"] > 0.5
    assert fits["randomized_vs_n"]["slope"] < fits["round_robin_vs_n"]["slope"] / 4
