"""Engine micro-benchmarks: simulator throughput (slots/sec scale).

Not a paper result — these keep the substrate's performance honest so
the full-scale experiment sweeps stay laptop-sized.  Besides the
pytest-benchmark timings, :func:`write_bench_json` records slots/sec
per reference topology in ``BENCH_engine.json`` at the repo root, so
successive PRs have a machine-readable perf trajectory to regress
against::

    PYTHONPATH=src python benchmarks/bench_engine.py            # quick
    REPRO_BENCH_SCALE=full PYTHONPATH=src python benchmarks/bench_engine.py

``--check`` compares a fresh measurement against the committed
``BENCH_engine.json`` and fails (exit 1) if combined throughput fell
below ``1 - REPRO_BENCH_TOLERANCE`` of the baseline.  The default
tolerance is deliberately wide (0.35) because the baseline may have
been recorded on different hardware; the check is a floor against
gross regressions — e.g. telemetry instrumentation leaking into the
disabled hot path — not a tight perf gate.

``--bus-check`` is the subscriber-bus variant of the same guard: with
telemetry *disabled* (the default in these benchmarks), the monitor's
subscriber bus must cost nothing — the dispatch hook lives behind the
recorder-active check, so the disabled hot path is byte-identical to
the pre-bus engine.  The check measures exactly as ``--check`` does
(asserting parity with the committed baseline) and additionally
reports the marginal cost of an attached no-op subscriber when
telemetry *is* on, so the overhead of in-process monitoring stays
visible in the history (appended with ``variant: bus-no-subscriber``).

``--perf-overhead`` is the :mod:`repro.perf` variant: the engine with
no ambient session must match the bare hot path (that leg *is* the
bare hot path — one global load plus a ``None`` check), and an active
sampler-only session at the default 97 Hz must cost at most
``REPRO_PERF_TOLERANCE`` percent (default 5).  The tracemalloc leg is
reported but not asserted.  ``--check --flame PATH`` adds perf
forensics to the regression gate: on failure the measurement is
re-taken under the sampling profiler and a flamegraph naming the
hottest frame lands at PATH.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.graphs import complete, grid, random_gnp
from repro.protocols.aloha import make_aloha_programs
from repro.rng import spawn
from repro.sim import Engine

#: Reference topologies: low-degree lattice, sparse random, dense clique.
TOPOLOGIES = [
    ("grid-16x16", lambda: grid(16, 16)),
    ("gnp-256", lambda: random_gnp(256, 0.05, spawn(0, "bench"))),
    ("clique-64", lambda: complete(64)),
]

DEFAULT_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


#: Trials advanced simultaneously by the ``batched`` bench backend.
DEFAULT_BATCH = 64

#: Bench backends: the reference engine, the vectorized engine run one
#: trial at a time (apples-to-apples per-run cost), and the vectorized
#: engine in its batched campaign mode (its actual operating point).
BENCH_BACKENDS = ("reference", "numpy", "batched")


def _run(graph, slots: int) -> float:
    """One timed engine run over ``slots`` slots; returns seconds."""
    programs = make_aloha_programs(graph, 0, p=0.2)
    engine = Engine(graph, programs, seed=1, initiators={0})
    start = time.perf_counter()
    result = engine.run(slots)
    elapsed = time.perf_counter() - start
    assert result.slots == slots
    return elapsed


def _run_vectorized(graph, slots: int, batch: int) -> float:
    """One timed vectorized run of ``batch`` trials; returns seconds.

    Timing covers ``run()`` only — stream seeding happens at
    construction, mirroring :func:`_run`, which also excludes program
    and engine construction.  Trial seeds start at the reference run's
    seed 1, so ``batch=1`` times the exact same run the reference
    backend does.
    """
    from repro.sim.vectorized import AlohaBatch

    runner = AlohaBatch(graph, range(1, batch + 1), source=0, p=0.2, slots=slots)
    start = time.perf_counter()
    results = runner.run()
    elapsed = time.perf_counter() - start
    assert all(result.slots == slots for result in results)
    return elapsed


def measure_slots_per_sec(
    *,
    slots: int | None = None,
    rounds: int | None = None,
    backend: str = "reference",
    batch: int = DEFAULT_BATCH,
) -> dict:
    """Best-of-``rounds`` slots/sec per reference topology.

    ``backend`` is one of :data:`BENCH_BACKENDS`; the ``batched``
    backend advances ``batch`` trials simultaneously and counts
    ``slots * batch`` simulated slots per run (combined campaign
    throughput — the quantity campaigns actually experience).
    """
    if backend not in BENCH_BACKENDS:
        raise ValueError(
            f"unknown bench backend {backend!r}; choose from {BENCH_BACKENDS}"
        )
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if slots is None:
        slots = 500 if scale == "full" else 200
    if rounds is None:
        rounds = 5 if scale == "full" else 3
    trials = batch if backend == "batched" else 1
    topologies = {}
    total_time = 0.0
    for name, factory in TOPOLOGIES:
        graph = factory()
        if backend == "reference":
            best = min(_run(graph, slots) for _ in range(rounds))
        else:
            best = min(_run_vectorized(graph, slots, trials) for _ in range(rounds))
        total_time += best
        topologies[name] = {
            "nodes": graph.num_nodes(),
            "edges": graph.num_edges(),
            "slots_per_sec": round(slots * trials / best, 1),
            "ms_per_run": round(best * 1e3, 2),
        }
    from repro.telemetry.core import git_sha

    payload = {
        "schema": "repro-bench-engine/1",
        "scale": scale,
        "slots_per_run": slots,
        "rounds": rounds,
        "topologies": topologies,
        "combined_slots_per_sec": round(
            slots * trials * len(topologies) / total_time, 1
        ),
        "recorded": round(time.time(), 2),
        "git_sha": git_sha(),
    }
    if backend != "reference":
        payload["backend"] = backend
        if backend == "batched":
            payload["batch"] = batch
    return payload


def measure_backend_matrix(
    *,
    slots: int | None = None,
    rounds: int | None = None,
    batch: int = DEFAULT_BATCH,
    backends: tuple[str, ...] = BENCH_BACKENDS,
) -> dict[str, dict]:
    """One measurement per backend (same topologies, same slot budget)."""
    return {
        name: measure_slots_per_sec(
            slots=slots, rounds=rounds, backend=name, batch=batch
        )
        for name in backends
    }


def render_backend_matrix(matrix: dict[str, dict]) -> str:
    """The backend comparison as one aligned slots/sec table."""
    names = [name for name, _ in TOPOLOGIES] + ["combined"]
    lines = [" ".join([f"{'topology':<12}"] + [f"{b:>12}" for b in matrix])]
    reference = matrix.get("reference")
    for row in names:
        cells = [f"{row:<12}"]
        for measurement in matrix.values():
            value = (
                measurement["combined_slots_per_sec"]
                if row == "combined"
                else measurement["topologies"][row]["slots_per_sec"]
            )
            cells.append(f"{value:>12.1f}")
        lines.append(" ".join(cells))
    if reference is not None and len(matrix) > 1:
        cells = [f"{'speedup':<12}"]
        for measurement in matrix.values():
            ratio = (
                measurement["combined_slots_per_sec"]
                / reference["combined_slots_per_sec"]
            )
            cells.append(f"{ratio:>11.1f}x")
        lines.append(" ".join(cells))
    return "\n".join(lines)


#: Append-only slots/sec trajectory (one measurement per line); the obs
#: run store ingests it for `python -m repro obs trend --source bench`.
DEFAULT_HISTORY_PATH = (
    pathlib.Path(__file__).resolve().parent / "results" / "bench_history.jsonl"
)


def append_bench_history(
    payload: dict, path: str | os.PathLike | None = None
) -> pathlib.Path:
    """Append one measurement to the bench trajectory file."""
    if path is None:
        path = os.environ.get("REPRO_BENCH_HISTORY", DEFAULT_HISTORY_PATH)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as stream:
        stream.write(json.dumps(payload, sort_keys=True) + "\n")
    return target


def write_bench_json(
    path: str | os.PathLike | None = None, *, history: bool = True, **measure_kwargs
) -> dict:
    """Measure and persist the slots/sec record (``BENCH_engine.json``).

    Besides rewriting the committed snapshot, the measurement is
    appended to the trajectory file (``history=False`` or
    ``REPRO_BENCH_HISTORY=""`` to skip), so successive recordings
    accumulate instead of overwriting each other.
    """
    if path is None:
        path = os.environ.get("REPRO_BENCH_JSON", DEFAULT_JSON_PATH)
    payload = measure_slots_per_sec(**measure_kwargs)
    # Record the vectorized backends alongside the reference numbers
    # when NumPy is importable; the top-level keys stay the reference
    # measurement so existing trend tooling keeps reading one series.
    from repro.sim.backends import numpy_available

    if numpy_available():
        batch = measure_kwargs.get("batch", DEFAULT_BATCH)
        payload["backends"] = {
            name: measure_slots_per_sec(**{**measure_kwargs, "backend": name})
            for name in BENCH_BACKENDS
            if name != "reference"
        }
        payload["speedup_batched_vs_reference"] = round(
            payload["backends"]["batched"]["combined_slots_per_sec"]
            / payload["combined_slots_per_sec"],
            2,
        )
        payload["batch"] = batch
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if history and os.environ.get("REPRO_BENCH_HISTORY", "unset") != "":
        append_bench_history(payload)
    return payload


#: Allowed fractional drop of combined slots/sec vs the committed baseline.
DEFAULT_TOLERANCE = 0.35


def check_against_baseline(
    path: str | os.PathLike | None = None,
    *,
    tolerance: float | None = None,
    payload: dict | None = None,
    backend: str = "reference",
) -> tuple[bool, str]:
    """Measure now and compare against the committed baseline.

    Returns ``(ok, message)``; ``ok`` is False when combined slots/sec
    dropped more than ``tolerance`` (fraction, default
    ``REPRO_BENCH_TOLERANCE`` or 0.35) below the baseline.  Pass a
    ``payload`` from :func:`measure_slots_per_sec` to compare an
    existing measurement instead of taking a fresh one.  Each backend
    checks against its *own* baseline series: ``reference`` against the
    top-level keys, the vectorized backends against their entry under
    ``baseline["backends"]`` — comparing a batched measurement against
    the reference baseline would declare a bogus 15x "improvement".
    """
    if path is None:
        path = os.environ.get("REPRO_BENCH_JSON", DEFAULT_JSON_PATH)
    baseline_path = pathlib.Path(path)
    if not baseline_path.exists():
        return False, f"no baseline at {baseline_path}; run without --check first"
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    # A stale or hand-edited baseline should fail with a diagnosis, not
    # a KeyError traceback: parse and cross-check before measuring.
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return False, (
            f"baseline {baseline_path} is unreadable ({exc}); "
            f"re-record it by running without --check"
        )
    if backend != "reference":
        backends = baseline.get("backends") if isinstance(baseline, dict) else None
        baseline = backends.get(backend) if isinstance(backends, dict) else None
        if baseline is None:
            return False, (
                f"baseline {baseline_path} has no '{backend}' entry under "
                f"'backends' (recorded without NumPy?); re-record it by "
                f"running without --check with the fast extra installed"
            )
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("combined_slots_per_sec"), (int, float)
    ):
        schema = baseline.get("schema") if isinstance(baseline, dict) else None
        return False, (
            f"baseline {baseline_path} has no numeric 'combined_slots_per_sec' "
            f"(schema {schema!r}); re-record it by running without --check"
        )
    current_names = {name for name, _ in TOPOLOGIES}
    baseline_topologies = baseline.get("topologies")
    if isinstance(baseline_topologies, dict):
        stale = sorted(set(baseline_topologies) - current_names)
        if stale:
            return False, (
                f"baseline {baseline_path} lists topologies the bench set no "
                f"longer produces: {', '.join(stale)} (current set: "
                f"{', '.join(sorted(current_names))}); re-record the baseline "
                f"by running without --check"
            )
    base = baseline["combined_slots_per_sec"]
    current = (
        payload if payload is not None else measure_slots_per_sec(backend=backend)
    )
    now = current["combined_slots_per_sec"]
    floor = base * (1.0 - tolerance)
    ok = now >= floor
    message = (
        f"combined slots/sec [{backend}]: current={now:.1f} baseline={base:.1f} "
        f"floor={floor:.1f} (tolerance {tolerance:.0%}) -> "
        f"{'OK' if ok else 'REGRESSION'}"
    )
    return ok, message


def measure_subscriber_overhead(*, slots: int | None = None, rounds: int | None = None) -> dict:
    """Marginal cost of the monitor's subscriber bus, measured directly.

    Three legs on the grid topology, best-of-``rounds`` each:

    * ``disabled`` — no recorder active (the default engine hot path);
    * ``telemetry`` — a buffered recorder active, no subscriber;
    * ``subscribed`` — the same recorder with one no-op subscriber.

    ``subscribed`` vs ``telemetry`` is the bus's dispatch cost when
    monitoring is on; ``telemetry`` vs ``disabled`` is the recorder
    cost that existed before the bus.  The disabled leg never executes
    bus code at all — that is what ``--bus-check`` holds to the
    committed baseline.
    """
    from repro.telemetry.core import Telemetry, activate

    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if slots is None:
        slots = 500 if scale == "full" else 200
    if rounds is None:
        rounds = 5 if scale == "full" else 3
    graph = grid(16, 16)

    def leg_disabled() -> float:
        return min(_run(graph, slots) for _ in range(rounds))

    def leg_with_recorder(subscriber) -> float:
        best = float("inf")
        for _ in range(rounds):
            recorder = Telemetry.buffered()
            if subscriber is not None:
                recorder.subscribe(subscriber)
            with recorder, activate(recorder):
                best = min(best, _run(graph, slots))
        return best

    disabled = leg_disabled()
    telemetry = leg_with_recorder(None)
    subscribed = leg_with_recorder(lambda record: None)
    result = {
        "slots_per_run": slots,
        "rounds": rounds,
        "disabled_slots_per_sec": round(slots / disabled, 1),
        "telemetry_slots_per_sec": round(slots / telemetry, 1),
        "subscribed_slots_per_sec": round(slots / subscribed, 1),
    }
    result["bus_overhead_pct"] = (
        round((subscribed - telemetry) / telemetry * 100.0, 2) if telemetry else 0.0
    )
    return result


#: Allowed sampling-profiler overhead, percent (``--perf-overhead``).
DEFAULT_PERF_TOLERANCE_PCT = 5.0


def measure_perf_overhead(
    *, slots: int | None = None, rounds: int | None = None, hz: float | None = None
) -> dict:
    """Marginal cost of an active :mod:`repro.perf` sampling session.

    Three legs on the grid topology, best-of-``rounds`` each:

    * ``disabled`` — no session (the default engine hot path: one
      module-global load plus a ``None`` check per run);
    * ``sampled`` — an ambient :class:`~repro.perf.PerfSession` at
      ``hz``, sampler only (the ``REPRO_PERF`` worker configuration);
    * ``traced`` — the same session with :mod:`tracemalloc` accounting
      (the ``--perf`` CLI default).

    The CI gate holds ``sampler_overhead_pct`` under
    ``REPRO_PERF_TOLERANCE`` (default 5%): the sampler runs on its own
    thread, so the sampled leg's only hot-path cost is the ambient
    check the disabled leg pays too.  The traced leg is *reported*, not
    asserted — tracemalloc hooks every allocation and its cost scales
    with allocation rate, which is exactly what it exists to expose.
    """
    from repro.perf import DEFAULT_HZ, PerfSession
    from repro.perf import core as perf_core

    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if slots is None:
        slots = 500 if scale == "full" else 200
    if rounds is None:
        rounds = 5 if scale == "full" else 3
    if hz is None:
        hz = DEFAULT_HZ
    graph = grid(16, 16)
    _run(graph, slots)  # warm-up: imports and allocator steady-state

    def leg(memory: bool | None) -> float:
        if memory is None:
            return min(_run(graph, slots) for _ in range(rounds))
        best = float("inf")
        for _ in range(rounds):
            session = PerfSession(hz, memory=memory)
            previous = perf_core.set_active(session)
            session.start()
            try:
                best = min(best, _run(graph, slots))
            finally:
                session.stop()
                perf_core.set_active(previous)
        return best

    disabled = leg(None)
    sampled = leg(False)
    traced = leg(True)
    return {
        "slots_per_run": slots,
        "rounds": rounds,
        "hz": hz,
        "disabled_slots_per_sec": round(slots / disabled, 1),
        "sampled_slots_per_sec": round(slots / sampled, 1),
        "traced_slots_per_sec": round(slots / traced, 1),
        "sampler_overhead_pct": round((sampled - disabled) / disabled * 100.0, 2),
        "tracemalloc_overhead_pct": round((traced - disabled) / disabled * 100.0, 2),
    }


def profile_regression(
    flame_path: str | os.PathLike,
    *,
    backend: str = "reference",
    hz: float | None = None,
    message: str = "",
) -> str | None:
    """Re-measure under the sampling profiler and write a flamegraph.

    The ``--check`` gate calls this after a regression verdict: the
    profiled re-measurement shows where the wall time went, and the
    returned culprit — the hottest self-time frame — names the prime
    suspect in both the gate output and the flamegraph subtitle.
    """
    from repro.perf import DEFAULT_HZ, PerfSession, render_flamegraph, top_frames
    from repro.perf import core as perf_core

    session = PerfSession(hz if hz is not None else 2 * DEFAULT_HZ, memory=False)
    previous = perf_core.set_active(session)
    session.start()
    try:
        measure_slots_per_sec(backend=backend)
    finally:
        session.stop()
        perf_core.set_active(previous)
    frames = top_frames(session.counts, top=1)
    culprit = frames[0]["frame"] if frames else None
    subtitle = message or "bench --check regression profile"
    if culprit:
        subtitle += f" — hottest frame: {culprit}"
    pathlib.Path(flame_path).write_text(
        render_flamegraph(
            session.counts,
            title=f"bench perf gate — {backend} regression",
            subtitle=subtitle,
        ),
        encoding="utf-8",
    )
    return culprit


def test_engine_slot_throughput(benchmark, engine_topology):
    name, factory = engine_topology
    g = factory()

    def run_200_slots():
        programs = make_aloha_programs(g, 0, p=0.2)
        engine = Engine(g, programs, seed=1, initiators={0})
        return engine.run(200)

    result = benchmark(run_200_slots)
    assert result.slots == 200


def test_engine_bench_json():
    """Emit the perf-trajectory record as part of the bench harness."""
    payload = write_bench_json()
    assert payload["combined_slots_per_sec"] > 0
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))


def pytest_generate_tests(metafunc):
    if "engine_topology" in metafunc.fixturenames:
        metafunc.parametrize(
            "engine_topology", TOPOLOGIES, ids=[name for name, _ in TOPOLOGIES]
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="output path (default: repo root)")
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh measurement against the committed baseline "
             "instead of rewriting it; exit 1 on regression beyond "
             "$REPRO_BENCH_TOLERANCE (default 0.35)",
    )
    parser.add_argument(
        "--bus-check", action="store_true",
        help="assert the subscriber bus costs nothing when no recorder is "
             "active (parity with the committed baseline, same tolerance "
             "as --check) and report the marginal cost of an attached "
             "no-op subscriber; the measurement is appended to the bench "
             "history with variant=bus-no-subscriber",
    )
    parser.add_argument(
        "--perf-overhead", action="store_true",
        help="measure the marginal cost of an active sampling-profiler "
             "session (repro.perf) and exit 1 if the sampler-only leg "
             "costs more than $REPRO_PERF_TOLERANCE percent (default 5); "
             "the tracemalloc leg is reported, not asserted; the "
             "measurement is appended to the bench history with "
             "variant=perf-overhead",
    )
    parser.add_argument(
        "--flame", default=None, metavar="HTML",
        help="with --check: on regression, re-measure under the sampling "
             "profiler and write a flamegraph here naming the hottest "
             "frame (the gate's prime suspect)",
    )
    parser.add_argument(
        "--backend", default="reference",
        choices=[*BENCH_BACKENDS, "all"],
        help="engine backend to measure: 'reference' (default), 'numpy' "
             "(vectorized, batch of 1), 'batched' (vectorized, --batch "
             "trials at once), or 'all' to print a per-topology "
             "comparison matrix; with --check, the named backend is "
             "compared against its own entry in the baseline",
    )
    parser.add_argument(
        "--batch", type=int, default=DEFAULT_BATCH,
        help=f"trials per batch for the 'batched' backend "
             f"(default {DEFAULT_BATCH})",
    )
    args = parser.parse_args()
    if args.check:
        if args.backend == "all":
            parser.error("--check needs a single backend, not 'all'")
        ok, message = check_against_baseline(args.json, backend=args.backend)
        print(message)
        if not ok and args.flame:
            culprit = profile_regression(
                args.flame, backend=args.backend, message=message
            )
            print(f"perf gate: wrote {args.flame}"
                  + (f" (hottest frame: {culprit})" if culprit else ""))
        raise SystemExit(0 if ok else 1)
    if args.perf_overhead:
        overhead = measure_perf_overhead()
        print(json.dumps(overhead, indent=2, sort_keys=True))
        tolerance_pct = float(
            os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_PERF_TOLERANCE_PCT)
        )
        ok = overhead["sampler_overhead_pct"] <= tolerance_pct
        print(f"sampler overhead: {overhead['sampler_overhead_pct']:+.2f}% "
              f"(tolerance {tolerance_pct:.0f}%) -> "
              f"{'OK' if ok else 'REGRESSION'}")
        if os.environ.get("REPRO_BENCH_HISTORY", "unset") != "":
            record = {"variant": "perf-overhead", **overhead,
                      "recorded": round(time.time(), 2)}
            append_bench_history(record)
        raise SystemExit(0 if ok else 1)
    if args.backend != "reference":
        from repro.sim.backends import numpy_available

        if not numpy_available():
            print(
                f"backend '{args.backend}' needs NumPy (pip install "
                f"'.[fast]'); only 'reference' runs without it"
            )
            raise SystemExit(2)
    if args.backend == "all":
        matrix = measure_backend_matrix(batch=args.batch)
        print(render_backend_matrix(matrix))
        raise SystemExit(0)
    if args.backend != "reference":
        payload = measure_slots_per_sec(backend=args.backend, batch=args.batch)
        print(json.dumps(payload, indent=2, sort_keys=True))
        raise SystemExit(0)
    if args.bus_check:
        current = measure_slots_per_sec()
        ok, message = check_against_baseline(args.json, payload=current)
        print(f"bus parity (telemetry disabled, dispatch never reached): {message}")
        overhead = measure_subscriber_overhead()
        print(json.dumps(overhead, indent=2, sort_keys=True))
        record = dict(current)
        record["variant"] = "bus-no-subscriber"
        record["subscriber_overhead"] = overhead
        if os.environ.get("REPRO_BENCH_HISTORY", "unset") != "":
            append_bench_history(record)
        raise SystemExit(0 if ok else 1)
    report = write_bench_json(args.json)
    print(json.dumps(report, indent=2, sort_keys=True))
