"""Engine micro-benchmarks: simulator throughput (slots/sec scale).

Not a paper result — these keep the substrate's performance honest so
the full-scale experiment sweeps stay laptop-sized.
"""

import pytest

from repro.graphs import complete, grid, random_gnp
from repro.protocols.aloha import make_aloha_programs
from repro.rng import spawn
from repro.sim import Engine


@pytest.mark.parametrize(
    "name,factory",
    [
        ("grid-16x16", lambda: grid(16, 16)),
        ("gnp-256", lambda: random_gnp(256, 0.05, spawn(0, "bench"))),
        ("clique-64", lambda: complete(64)),
    ],
    ids=["grid", "gnp", "clique"],
)
def test_engine_slot_throughput(benchmark, name, factory):
    g = factory()

    def run_200_slots():
        programs = make_aloha_programs(g, 0, p=0.2)
        engine = Engine(g, programs, seed=1, initiators={0})
        return engine.run(200)

    result = benchmark(run_200_slots)
    assert result.slots == 200
