"""E6 — Section 2.3: Decay-based BFS (labels correct w.p. >= 1 - eps)."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_bfs import run_bfs_table
from repro.graphs import grid
from repro.protocols.decay_bfs import run_bfs


def test_e6_bfs_table(benchmark):
    config = bench_config(reps=30)
    table = run_once(benchmark, run_bfs_table, config)
    emit("e6_bfs", table)
    assert all(table.column("claim_holds"))


def test_micro_bfs_run(benchmark):
    g = grid(6, 6)
    counter = iter(range(10**9))
    result = benchmark(lambda: run_bfs(g, 0, seed=next(counter), epsilon=0.1))
    assert result.slots > 0
