"""E10 — Section 4: collision detection (4-slot C_n + tree splitting)."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_cd import run_cd_cn_table, run_tree_splitting_table


def test_e10_cd_cn(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_cd_cn_table, config)
    emit("e10_cd_cn", table)
    assert all(table.column("claim_holds"))


def test_e10b_tree_splitting(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_tree_splitting_table, config)
    emit("e10b_tree_splitting", table)
    assert all(table.column("all_resolved"))
