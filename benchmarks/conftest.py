"""Shared plumbing for the benchmark/reproduction harness.

Every ``bench_*`` file reproduces one of the paper's results (see
DESIGN.md §3): it runs the corresponding experiment from
``repro.experiments`` exactly once under ``pytest-benchmark`` (so wall
time is recorded), prints the result table, and writes it to
``benchmarks/results/<name>.txt`` — those files are the source of the
numbers in EXPERIMENTS.md.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default: minutes for the whole harness) or ``full``
(the EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentConfig

#: Full-scale tables (the EXPERIMENTS.md numbers) live in results/;
#: quick-scale smoke runs write to results-quick/ so they never clobber
#: the published numbers.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
QUICK_RESULTS_DIR = pathlib.Path(__file__).parent / "results-quick"


def bench_config(reps: int) -> ExperimentConfig:
    """The experiment configuration for the current bench scale."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale == "full":
        return ExperimentConfig(reps=reps, master_seed=20260706, quick=False)
    return ExperimentConfig(reps=max(5, reps // 4), master_seed=20260706, quick=True)


def is_full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"


def emit(name: str, *tables) -> None:
    """Print tables and persist them (scale-appropriate directory)."""
    directory = RESULTS_DIR if is_full_scale() else QUICK_RESULTS_DIR
    directory.mkdir(exist_ok=True)
    rendered = "\n\n".join(t.render() for t in tables)
    print()
    print(rendered)
    (directory / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def experiment(benchmark):
    """Fixture bundling the one-shot benchmark runner."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
