"""E8 — ablations: the Decay coin bias (Hofri [H87]) and phase alignment."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_coin_bias import run_alignment_table, run_coin_bias_table


def test_e8_coin_bias(benchmark):
    config = bench_config(reps=15)
    table = run_once(benchmark, run_coin_bias_table, config)
    emit("e8_coin_bias", table)
    biases = table.column("p_continue")
    reception = dict(zip(biases, table.column("P_k_d")))
    assert reception[0.5] >= max(reception[min(biases)], reception[max(biases)])


def test_e8b_phase_alignment(benchmark):
    config = bench_config(reps=20)
    table = run_once(benchmark, run_alignment_table, config)
    emit("e8b_alignment", table)
    assert all(rate > 0.5 for rate in table.column("success_rate"))
