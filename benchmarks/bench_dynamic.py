"""E9 — paper property 3: adaptiveness to fail/stop edge faults."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_dynamic import run_dynamic_table, run_mobility_table


def test_e9_dynamic_topology(benchmark):
    config = bench_config(reps=30)
    table = run_once(benchmark, run_dynamic_table, config)
    emit("e9_dynamic", table)
    assert all(table.column("claim_holds"))


def test_e9b_mobility(benchmark):
    config = bench_config(reps=20)
    table = run_once(benchmark, run_mobility_table, config)
    emit("e9b_mobility", table)
    assert all(table.column("claim_holds"))
