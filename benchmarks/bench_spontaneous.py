"""E12 — Section 3.5: spontaneous wakeup (3-round C_n trick; C*_n gap)."""

from conftest import bench_config, emit, run_once

from repro.experiments.exp_spontaneous import run_c_star_table, run_three_round_table


def test_e12a_three_round(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_three_round_table, config)
    emit("e12a_three_round", table)
    assert all(table.column("always_informed"))
    assert all(w <= 3 for w in table.column("worst_slots"))


def test_e12b_c_star_gap(benchmark):
    config = bench_config(reps=10)
    table = run_once(benchmark, run_c_star_table, config)
    emit("e12b_c_star", table)
    gaps = table.column("gap")
    assert gaps[-1] > 1.0
