"""E1 — Theorem 1: Decay reception probabilities (DESIGN.md §3).

Regenerates the Theorem-1 "table": ``P(k, d)`` at ``k = 2⌈log d⌉`` via
exact DP, Markov Monte-Carlo, and full-engine Monte-Carlo, plus the
``P(∞, d) ≥ 2/3`` limit column.  Also micro-benchmarks the two Decay
kernels (the simulator's hot paths).
"""

import random

from conftest import bench_config, emit, run_once

from repro.core.bounds import p_exact
from repro.core.decay import simulate_decay_game
from repro.experiments.exp_decay import run_theorem1_table


def test_e1_theorem1_table(benchmark):
    config = bench_config(reps=400)
    table = run_once(benchmark, run_theorem1_table, config)
    emit("e1_decay", table)
    assert all(table.column("claim_ii_holds"))
    assert all(table.column("claim_i_holds"))


def test_micro_simulate_decay_game(benchmark):
    rng = random.Random(7)
    result = benchmark(lambda: simulate_decay_game(64, 12, rng))
    assert result is None or 0 <= result < 12


def test_micro_p_exact_dp(benchmark):
    value = benchmark(lambda: p_exact(12, 64))
    assert 0.5 < value < 1.0
