"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
fully offline environments whose setuptools lacks the PEP 517 editable
hooks (no ``wheel`` package available).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
