"""Point-to-point routing via Decay (the second [BII89] application).

The paper closes Section 2.3 noting that "*Decay plays a central role
in the efficient protocols for the broadcast and point-to-point routing
of messages in multi-hop radio networks presented in [BII89]*".  This
module implements that routing pattern on our substrate:

1. **Route discovery** — run the Decay-BFS of Section 2.3 *from the
   destination*, so every node learns its hop distance *to* the target
   (:func:`run_routing` does this with
   :func:`repro.protocols.decay_bfs.run_bfs` and hands each node its
   label).
2. **Forwarding** — the message travels as a shrinking wavefront: it
   carries a hop counter ``h`` (initially the source's label); in each
   forwarding phase, exactly the current wavefront (nodes with label
   ``h`` holding the message) runs one superphase of Decay transmitting
   ``(msg, h - 1)``; only nodes with label ``h − 1`` adopt it.  After
   ``h`` superphases the destination holds the message.

Unlike broadcast, nodes off the shortest-path "beam" never adopt or
relay — the transmission cost is confined to the beam (measured by the
tests), which is the point of routing versus flooding.

Time: ``dist(s, t)`` forwarding superphases of
``2⌈log Δ⌉·⌈log(N/ε)⌉`` slots each, after the one-off BFS; failure
probability ≤ ε per phase by the usual Theorem-1 argument (each
wavefront node repeats Decay ``⌈log(N/ε)⌉`` times per superphase).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.bounds import decay_phase_length, m_epsilon
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.properties import max_degree as true_max_degree
from repro.protocols.base import ordered_nodes
from repro.sim.engine import Engine, RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["RoutingProgram", "run_routing"]

Node = Hashable


class RoutingProgram(NodeProgram):
    """Wavefront forwarding along precomputed distance-to-target labels.

    Parameters
    ----------
    label:
        This node's hop distance to the destination (from the BFS), or
        ``None`` if the discovery failed to label it (it then only
        listens).
    k, decays_per_superphase:
        The Decay geometry, as in :mod:`repro.protocols.decay_bfs`.
    payload:
        Non-None exactly at the source, which starts holding the
        message.
    """

    def __init__(
        self,
        label: int | None,
        k: int,
        decays_per_superphase: int,
        *,
        payload: Any = None,
        p_continue: float = 0.5,
    ) -> None:
        if k < 1 or decays_per_superphase < 1:
            raise ProtocolError("k and decays_per_superphase must be >= 1")
        self.label = label
        self.k = k
        self.decays = decays_per_superphase
        self.superphase_len = k * decays_per_superphase
        self.p_continue = p_continue
        self.payload: Any = payload
        self.received_at_slot: int | None = 0 if payload is not None else None
        self._forward_superphase: int | None = 0 if payload is not None else None
        self._decay: DecayProcess | None = None
        self._decays_done = 0
        self._done = False

    def act(self, ctx: Context) -> Intent:
        if self._done or self.label is None:
            return Receive() if not self._done else Idle()
        if self.label == 0:
            # The destination never forwards; it is done on reception.
            return Receive()
        if self.payload is None:
            return Receive()
        superphase = ctx.slot // self.superphase_len
        if superphase < self._forward_superphase:
            return Receive()
        if superphase > self._forward_superphase:
            self._done = True  # our forwarding window has passed
            return Idle()
        if self._decay is None:
            self._decay = DecayProcess(
                self.k,
                ("route", self.label - 1, self.payload),
                ctx.rng,
                p_continue=self.p_continue,
            )
        transmit = self._decay.wants_transmit()
        if ctx.slot % self.k == self.k - 1:
            self._decay = None
            self._decays_done += 1
            if self._decays_done >= self.decays:
                self._done = True
        return (
            Transmit(("route", self.label - 1, self.payload))
            if transmit
            else Receive()
        )

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if not (isinstance(heard, tuple) and len(heard) == 3 and heard[0] == "route"):
            return
        _tag, hop, payload = heard
        if self.payload is None and self.label is not None and hop == self.label:
            self.payload = payload
            self.received_at_slot = ctx.slot
            self._forward_superphase = ctx.slot // self.superphase_len + 1

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "got_message": self.payload is not None,
            "received_at_slot": self.received_at_slot,
        }


def run_routing(
    graph: Graph,
    source: Node,
    target: Node,
    *,
    payload: Any = "packet",
    seed: int = 0,
    epsilon: float = 0.1,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
) -> dict[str, Any]:
    """Route ``payload`` from ``source`` to ``target``.

    Runs the discovery BFS (from ``target``) and then the forwarding
    wave.  Returns a summary dict: delivery flag, slot counts for both
    phases, the beam size (nodes that ever held the message), and the
    per-phase run results for inspection.
    """
    if source == target:
        raise ProtocolError("source and target must differ")
    from repro.protocols.decay_bfs import run_bfs
    from repro.rng import derive_seed

    bfs_result = run_bfs(
        graph,
        target,
        seed=derive_seed(seed, "route-discovery"),
        epsilon=epsilon,
        upper_bound_n=upper_bound_n,
        max_degree_bound=max_degree_bound,
    )
    labels = bfs_result.node_results()
    n = graph.num_nodes()
    big_n = upper_bound_n if upper_bound_n is not None else n
    delta = (
        max_degree_bound
        if max_degree_bound is not None
        else max(1, true_max_degree(graph))
    )
    k = decay_phase_length(delta)
    decays = m_epsilon(big_n, epsilon)
    programs = {
        node: RoutingProgram(
            labels.get(node),
            k,
            decays,
            payload=payload if node == source else None,
        )
        for node in graph.nodes
    }
    engine = Engine(
        graph,
        programs,
        seed=derive_seed(seed, "route-forwarding"),
        initiators=frozenset({source}),
    )
    source_label = labels.get(source)
    max_slots = (
        (source_label + 1) * k * decays if source_label is not None else k * decays
    )

    def delivered(eng: Engine) -> bool:
        return programs[target].payload is not None

    forward_result: RunResult = engine.run(max_slots, stop_when=delivered)
    beam = [
        node
        for node, prog in programs.items()
        if prog.payload is not None
    ]
    return {
        "delivered": programs[target].payload is not None,
        "payload_at_target": programs[target].payload,
        "discovery_slots": bfs_result.slots,
        "forwarding_slots": forward_result.slots,
        "hop_distance": source_label,
        "beam": ordered_nodes(beam),
        "beam_size": len(beam),
        "labels": labels,
    }
