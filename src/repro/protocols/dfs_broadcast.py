"""Deterministic DFS token broadcast — the paper's ``2n`` upper bound.

Section 3.4: *"it is easy to see that one may reach all n processors in
a network within 2n time-slots, by having the current transmitter
traverse the network in a Depth-First-Search manner."*

The token is a message carrying the global set of visited nodes; at any
slot exactly one processor (the token holder) transmits, so collisions
never occur and every neighbour of the holder receives.  The holder
picks its smallest unvisited neighbour as the next holder, or returns
the token to its DFS parent when none remain.  Each DFS-tree edge is
traversed at most twice, so the traversal uses at most ``2(n - 1)``
slots — within the paper's ``2n``.

This protocol is deterministic and *requires* unique, ordered IDs and
the Definition-1 initial input (each node knows its neighbours' IDs) —
exactly the model of the lower-bound section.  It is the matching
upper bound for Theorem 12 and one of the two deterministic comparators
in the exponential-gap experiment (E5).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.graphs.graph import Graph
from repro.protocols.base import ordered_nodes
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["DFSBroadcastProgram", "make_dfs_programs"]

Node = Hashable

_TOKEN = "dfs-token"


class DFSBroadcastProgram(NodeProgram):
    """Per-node logic of the DFS token traversal.

    Message format: ``(_TOKEN, target, visited, sender, payload)`` where
    ``visited`` is a frozenset of already-visited node IDs (including
    the sender) and ``target`` is the node designated as next holder.
    """

    def __init__(self, *, is_source: bool = False, payload: Any = "m") -> None:
        self.is_source = is_source
        self.payload = payload
        self.has_token = is_source
        self.parent: Node | None = None
        self.visited: frozenset[Node] = frozenset()
        self._done = False

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        if not self.has_token:
            return Receive()
        visited = frozenset(self.visited | {ctx.node})
        unvisited = ordered_nodes(
            nbr for nbr in ctx.neighbor_ids if nbr not in visited
        )
        if unvisited:
            target = unvisited[0]
            self.visited = visited
            self.has_token = False
            return Transmit((_TOKEN, target, visited, ctx.node, self.payload))
        if self.parent is not None:
            self.visited = visited
            self.has_token = False
            self._done = True  # a node never receives the token again after backtracking
            return Transmit((_TOKEN, self.parent, visited, ctx.node, self.payload))
        # Source with nothing left to visit: traversal complete.
        self._done = True
        return Idle()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if not (isinstance(heard, tuple) and heard and heard[0] == _TOKEN):
            return
        _tag, target, visited, sender, _payload = heard
        self.visited = frozenset(self.visited | visited)
        if target == ctx.node:
            self.has_token = True
            self._done = False  # a backtrack returns the token to us
            if self.parent is None and not self.is_source and ctx.node not in visited:
                self.parent = sender

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> dict[str, Any]:
        return {"visited_count": len(self.visited), "parent": self.parent}


def make_dfs_programs(graph: Graph, source: Node, *, payload: Any = "m") -> dict[Node, DFSBroadcastProgram]:
    """One DFS program per node of ``graph``; ``source`` starts with the token."""
    return {
        node: DFSBroadcastProgram(is_source=(node == source), payload=payload)
        for node in graph.nodes
    }
