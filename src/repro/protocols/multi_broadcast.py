"""Multi-message broadcast built on Decay (the [BII89] follow-on).

The paper's protocol handles a single message; Bar-Yehuda, Israeli and
Itai [BII89] showed the Decay machinery extends to broadcasting many
messages efficiently.  This module implements that extension in two
modes so the ablation bench (E-extensions) can compare them:

* ``mode="sequential"`` — message ``i`` gets its own private window of
  ``window_phases`` Decay phases; the network broadcasts the messages
  one after another.  Total time ``Θ(j · (D + log(n/ε)) · log Δ)`` for
  ``j`` messages: the diameter cost is paid ``j`` times.
* ``mode="pipelined"`` — the source injects message ``i`` after a gap
  of ``gap_phases`` phases; every node maintains a FIFO of received-
  but-not-yet-relayed messages and relays each for ``relay_phases``
  Decay phases, one message at a time.  Messages travel in a wave
  train; the diameter is paid once, so total time is roughly
  ``Θ((D + j·log(n/ε)) · log Δ)`` — the [BII89] shape.  Different
  messages do contend with each other for slots (that is the point:
  Decay absorbs the contention).

Per-message reception is tracked inside the programs (the engine's
``first_reception`` only records the first delivery of *anything*).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Sequence

from repro.core.bounds import decay_phase_length, num_phases
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.properties import max_degree as true_max_degree
from repro.sim.engine import Engine, RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Intent, NodeProgram, Receive, Transmit

__all__ = ["MultiBroadcastProgram", "run_multi_broadcast"]

Node = Hashable


class MultiBroadcastProgram(NodeProgram):
    """Relay a stream of messages with per-message Decay schedules.

    Messages on the air are tuples ``("multi", index, payload)``.  The
    source is constructed with the full payload list and an injection
    schedule (phase at which each message enters its queue); other
    nodes enqueue each *new* message index on first reception.
    """

    def __init__(
        self,
        k: int,
        relay_phases: int,
        *,
        injections: Sequence[tuple[int, int, Any]] = (),
        p_continue: float = 0.5,
    ) -> None:
        if k < 1 or relay_phases < 1:
            raise ProtocolError("k and relay_phases must be >= 1")
        self.k = k
        self.relay_phases = relay_phases
        self.p_continue = p_continue
        # (phase, index, payload), sorted by phase: source-side injections.
        self._injections = deque(sorted(injections))
        self.received_at: dict[int, int] = {}  # message index -> first slot
        self.payloads: dict[int, Any] = {}
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()
        self._current: int | None = None
        self._phases_left = 0
        self._decay: DecayProcess | None = None

    def act(self, ctx: Context) -> Intent:
        phase = ctx.slot // self.k
        boundary = ctx.slot % self.k == 0
        if boundary:
            self._inject_due(phase, ctx.slot)
            self._advance_queue()
            if self._current is not None:
                self._decay = DecayProcess(
                    self.k,
                    ("multi", self._current, self.payloads[self._current]),
                    ctx.rng,
                    p_continue=self.p_continue,
                )
        if self._decay is not None and self._decay.wants_transmit():
            intent: Intent = Transmit(
                ("multi", self._current, self.payloads[self._current])
            )
        else:
            intent = Receive()
        if ctx.slot % self.k == self.k - 1:
            self._decay = None
            if self._current is not None:
                self._phases_left -= 1
                if self._phases_left <= 0:
                    self._current = None
        return intent

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if not (isinstance(heard, tuple) and len(heard) == 3 and heard[0] == "multi"):
            return
        _tag, index, payload = heard
        if index not in self.received_at:
            self.received_at[index] = ctx.slot
            self.payloads[index] = payload
            if index not in self._queued:
                self._queue.append(index)
                self._queued.add(index)

    def is_done(self, ctx: Context) -> bool:
        # A node never knows locally whether more messages are coming,
        # so it keeps listening; the harness's stop condition ends runs.
        return False

    def result(self) -> dict[str, Any]:
        return {"received_at": dict(self.received_at)}

    # -- internals --------------------------------------------------------

    def _inject_due(self, phase: int, slot: int) -> None:
        while self._injections and self._injections[0][0] <= phase:
            _phase, index, payload = self._injections.popleft()
            self.payloads[index] = payload
            self.received_at.setdefault(index, slot)
            if index not in self._queued:
                self._queue.append(index)
                self._queued.add(index)

    def _advance_queue(self) -> None:
        if self._current is None and self._queue:
            self._current = self._queue.popleft()
            self._phases_left = self.relay_phases


def run_multi_broadcast(
    graph: Graph,
    source: Node,
    payloads: Sequence[Any],
    *,
    mode: str = "pipelined",
    seed: int = 0,
    epsilon: float = 0.1,
    gap_phases: int | None = None,
    max_degree_bound: int | None = None,
    max_slots: int | None = None,
) -> RunResult:
    """Broadcast ``payloads`` from ``source``; see module docs for modes."""
    if mode not in {"sequential", "pipelined"}:
        raise ProtocolError(f"unknown mode {mode!r}")
    if not payloads:
        raise ProtocolError("need at least one payload")
    from repro.core.bounds import t_epsilon
    from repro.graphs.properties import diameter as true_diameter

    n = graph.num_nodes()
    d = true_diameter(graph)
    delta = max_degree_bound if max_degree_bound is not None else max(1, true_max_degree(graph))
    k = decay_phase_length(delta)
    relay_phases = num_phases(n, epsilon)
    if mode == "sequential":
        # One full single-message broadcast (Lemma 3's phase bound, plus
        # the relays' own tail) completes before the next message starts.
        gap = t_epsilon(n, d, epsilon) + relay_phases
    else:
        gap = gap_phases if gap_phases is not None else relay_phases
    injections = [(i * gap, i, payload) for i, payload in enumerate(payloads)]
    programs = {
        node: MultiBroadcastProgram(
            k,
            relay_phases,
            injections=injections if node == source else (),
        )
        for node in graph.nodes
    }
    if max_slots is None:
        from repro.core.bounds import t_epsilon as _t_eps

        tail = _t_eps(n, d, epsilon) + relay_phases
        max_slots = k * (len(payloads) * (gap + tail) + tail) * 4

    def all_received(engine: Engine) -> bool:
        want = len(payloads)
        return all(
            len(prog.received_at) >= want for prog in engine.programs.values()
        )

    engine = Engine(
        graph,
        programs,
        seed=seed,
        initiators=frozenset({source}),
    )
    return engine.run(max_slots, stop_when=all_received)
