"""Deterministic round-robin (TDMA) broadcast.

The folklore deterministic upper bound: give every processor its own
time-slot in a repeating frame of ``frame_size`` slots.  A processor
with integer ID ``i`` transmits the message — once informed — in every
slot ``t`` with ``t ≡ i (mod frame_size)``.  Since IDs are unique
within the frame, at most one processor transmits per slot anywhere in
the network, so no collision ever occurs, and the informed set grows by
at least one full BFS layer per frame: broadcast completes within
``D`` frames, i.e. ``O(n · D)`` slots when ``frame_size = n``.

On the paper's class ``C_n`` (diameter 3) this takes Θ(n) slots —
round-robin is the natural "reasonable deterministic protocol" whose
linear cost Theorem 12 shows is unavoidable.

Requires integer node IDs in ``[0, frame_size)``; the frame size plays
the role of the globally-known ``n`` ("*n is known to all processors*",
as in the paper's lower-bound statement).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["RoundRobinProgram", "make_round_robin_programs"]

Node = Hashable


class RoundRobinProgram(NodeProgram):
    """Transmit in my slot of each frame once informed; else listen.

    Parameters
    ----------
    slot_index:
        This node's residue in the frame (its integer ID).
    frame_size:
        Slots per frame (≥ number of nodes for collision freedom).
    max_frames:
        Stop transmitting after this many frames from first informing
        (``None``: keep going until the harness stops the run).
    """

    def __init__(
        self,
        slot_index: int,
        frame_size: int,
        *,
        initial_message: Any = None,
        max_frames: int | None = None,
    ) -> None:
        if not 0 <= slot_index < frame_size:
            raise ProtocolError(
                f"slot_index {slot_index} outside frame of size {frame_size}"
            )
        self.slot_index = slot_index
        self.frame_size = frame_size
        self.max_frames = max_frames
        self.message: Any = initial_message
        self._informed_slot: int | None = -1 if initial_message is not None else None
        self._done = False

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        if self.message is None:
            return Receive()
        if self.max_frames is not None and self._informed_slot is not None:
            frames_elapsed = (ctx.slot - max(0, self._informed_slot)) // self.frame_size
            if frames_elapsed >= self.max_frames:
                self._done = True
                return Idle()
        if ctx.slot % self.frame_size == self.slot_index:
            return Transmit(self.message)
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if self.message is None:
            self.message = heard
            self._informed_slot = ctx.slot

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> dict[str, Any]:
        return {"informed": self.message is not None, "informed_at": self._informed_slot}


def make_round_robin_programs(
    graph: Graph,
    source: Node,
    *,
    frame_size: int | None = None,
    message: Any = "m",
    max_frames: int | None = None,
) -> dict[Node, RoundRobinProgram]:
    """One round-robin program per node; nodes must be ints ``0..n-1``.

    ``frame_size`` defaults to ``n``; pass a larger value to model a
    loose upper bound on the ID space.
    """
    nodes = graph.nodes
    if not all(isinstance(node, int) for node in nodes):
        raise ProtocolError("round robin requires integer node IDs")
    size = frame_size if frame_size is not None else max(nodes) + 1
    return {
        node: RoundRobinProgram(
            node,
            size,
            initial_message=message if node == source else None,
            max_frames=max_frames,
        )
        for node in nodes
    }
