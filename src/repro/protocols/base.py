"""Shared protocol plumbing.

:func:`run_broadcast` is the one-call harness most experiments use: it
builds an engine over a graph with a program per node, runs it, and
returns the :class:`~repro.sim.engine.RunResult`.  Stopping policy:

* ``stop="informed"`` — stop as soon as every node has received a
  message (measures the paper's completion time ``T_fin``; the real
  protocol would keep transmitting a bit longer, harmlessly);
* ``stop="terminated"`` — run until every program reports done
  (measures termination time and total message cost — paper property 2
  and Theorem 4's second clause).

Either way the run is capped at ``max_slots`` — a failed broadcast
(which randomized runs exhibit with probability ≤ ε) shows up as
``RunResult.broadcast_succeeded() == False``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Literal, Mapping

from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.sim.engine import Engine, RunResult
from repro.sim.faults import FaultSchedule
from repro.sim.medium import Medium
from repro.sim.node import NodeProgram

__all__ = ["run_broadcast", "all_informed", "ordered_nodes"]

Node = Hashable


def ordered_nodes(nodes) -> list[Node]:
    """Natural order when labels are comparable, repr order otherwise."""
    items = list(nodes)
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=repr)


def all_informed(engine: Engine) -> bool:
    """Stop condition: every non-initiator node has received a message."""
    # Initiators count as informed whether or not they also received.
    informed = set(engine.metrics.first_reception) | engine.initiators
    return len(informed) >= engine.graph.num_nodes()


def run_broadcast(
    graph: Graph,
    programs: Mapping[Node, NodeProgram],
    *,
    initiators: set[Node] | frozenset[Node],
    max_slots: int,
    seed: int = 0,
    medium: Medium | None = None,
    faults: FaultSchedule | None = None,
    record_trace: bool = False,
    record_provenance: bool = False,
    enforce_no_spontaneous: bool = True,
    stop: Literal["informed", "terminated"] = "informed",
    extra_stop: Callable[[Engine], bool] | None = None,
) -> RunResult:
    """Run a broadcast-style protocol to completion (see module docs)."""
    if not initiators:
        raise SimulationError("broadcast needs at least one initiator")
    engine = Engine(
        graph,
        programs,
        medium=medium,
        seed=seed,
        initiators=frozenset(initiators),
        enforce_no_spontaneous=enforce_no_spontaneous,
        faults=faults,
        record_trace=record_trace,
        record_provenance=record_provenance,
    )
    if stop == "informed":
        stop_when: Callable[[Engine], bool] | None = all_informed
    elif stop == "terminated":
        stop_when = None  # engine stops when all programs are done
    else:
        raise SimulationError(f"unknown stop policy {stop!r}")
    if extra_stop is not None:
        primary = stop_when

        def stop_when(engine: Engine, _primary=primary, _extra=extra_stop) -> bool:
            if _primary is not None and _primary(engine):
                return True
            return _extra(engine)

    return engine.run(max_slots, stop_when=stop_when)
