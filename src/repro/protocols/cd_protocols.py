"""Collision-detection protocols.

Two pieces, both tied to the paper's discussion of collision detection:

1. :class:`FourSlotCnProgram` — Section 4's remark: *"one can broadcast
   in C_n using 4 time-slots"* when collisions are detectable.  The
   protocol:

   * slot 0 — the source transmits the message; all of the second
     layer receives it.
   * slot 1 — every second-layer node adjacent to the sink (each knows
     this from its initial input: its neighbour set contains the sink's
     ID) transmits the message.  If ``|S| = 1`` the sink receives and
     broadcast is complete in 2 slots.
   * slot 2 — otherwise the sink *detected the collision*; it polls its
     smallest neighbour by ID (the sink's initial input includes its
     neighbours' IDs).  The sink is the lone transmitter, so all of
     ``S`` hears the poll.
   * slot 3 — the polled node alone retransmits the message; the sink
     receives it.

   Note the sink transmits after detecting a collision but before
   receiving a *message*; with collision detection the natural model
   lets a detected collision activate a node, so runs use
   ``enforce_no_spontaneous=False``.  This is exactly why the ``C_n``
   lower bound evaporates under collision detection.

2. :class:`TreeSplittingProgram` — the classic Capetanakis/Hayes/
   Tsybakov-Mikhailov tree-splitting algorithm ([C79, H78, TM79] in the
   paper's Related Work): collision resolution on a single-hop channel
   *with* CD, resolving **all** contenders' messages.  We implement it
   honestly on the half-duplex engine by pairing every contention slot
   with a feedback slot in which a base station (which heard the
   contention outcome) broadcasts SUCCESS/COLLISION/SILENCE; every
   contender replays the same interval-stack automaton off that common
   feedback.  Runs on a star with the base station at the centre.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = [
    "FourSlotCnProgram",
    "make_four_slot_cn_programs",
    "TreeSplittingProgram",
    "make_tree_splitting_programs",
]

Node = Hashable


# ---------------------------------------------------------------------------
# Section 4: 4-slot broadcast on C_n with collision detection
# ---------------------------------------------------------------------------


class FourSlotCnProgram(NodeProgram):
    """Role-based program for the 4-slot ``C_n`` broadcast (see module docs).

    ``role`` is ``"source"``, ``"layer"`` (second layer), or ``"sink"``.
    Second-layer nodes derive S-membership from their initial input
    (their neighbour set contains the sink ID iff they are in ``S``).
    """

    def __init__(self, role: str, sink_id: Node, *, message: Any = "m") -> None:
        if role not in {"source", "layer", "sink"}:
            raise ProtocolError(f"unknown role {role!r}")
        self.role = role
        self.sink_id = sink_id
        self.message: Any = message if role == "source" else None
        self._saw_collision = False
        self._polled: Node | None = None

    def act(self, ctx: Context) -> Intent:
        slot = ctx.slot
        if self.role == "source":
            return Transmit(self.message) if slot == 0 else Idle()
        if self.role == "layer":
            if slot == 0:
                return Receive()
            in_s = self.sink_id in ctx.neighbor_ids
            if slot == 1:
                if in_s and self.message is not None:
                    return Transmit(self.message)
                return Receive()
            if slot == 2:
                return Receive() if in_s else Idle()
            if slot == 3:
                if self._polled == ctx.node and self.message is not None:
                    return Transmit(self.message)
                return Idle()
            return Idle()
        # sink
        if slot in (0, 1):
            return Receive()
        if slot == 2 and self._saw_collision and self.message is None:
            return Transmit(("poll", min(ctx.neighbor_ids)))
        if slot == 3 and self.message is None:
            return Receive()
        return Idle()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is COLLISION:
            self._saw_collision = True
            return
        if heard is SILENCE:
            return
        if isinstance(heard, tuple) and heard and heard[0] == "poll":
            self._polled = heard[1]
            return
        if self.message is None:
            self.message = heard

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= 4

    def result(self) -> dict[str, Any]:
        return {"informed": self.message is not None, "role": self.role}


def make_four_slot_cn_programs(
    graph: Graph,
    n: int,
    *,
    message: Any = "m",
) -> dict[Node, FourSlotCnProgram]:
    """Programs for a graph produced by :func:`repro.graphs.generators.c_n`."""
    sink = n + 1
    programs: dict[Node, FourSlotCnProgram] = {}
    for node in graph.nodes:
        if node == 0:
            role = "source"
        elif node == sink:
            role = "sink"
        else:
            role = "layer"
        programs[node] = FourSlotCnProgram(role, sink, message=message)
    return programs


# ---------------------------------------------------------------------------
# Related work: tree splitting with CD on a single-hop channel
# ---------------------------------------------------------------------------


class TreeSplittingProgram(NodeProgram):
    """Interval-stack tree splitting with explicit base-station feedback.

    Time alternates: even slots are *contention* slots, odd slots are
    *feedback* slots.  Every participant (base and contenders) mirrors
    the same stack of ID intervals ``[lo, hi)``; in a contention slot
    the members of the top interval holding unresolved messages
    transmit; in the following feedback slot the base broadcasts what
    it heard, and everyone updates the stack identically:

    * SUCCESS  → pop (one message resolved);
    * SILENCE  → pop (interval empty);
    * COLLISION→ pop and push the two halves.

    Terminates when the stack empties; by induction every contender's
    message is delivered to the base exactly once.
    """

    def __init__(
        self,
        *,
        is_base: bool,
        id_space: tuple[int, int],
        has_message: bool = False,
        message: Any = None,
    ) -> None:
        lo, hi = id_space
        if lo >= hi:
            raise ProtocolError("id_space must be a non-empty interval [lo, hi)")
        self.is_base = is_base
        self.has_message = has_message and not is_base
        self.message = message
        self._stack: list[tuple[int, int]] = [(lo, hi)]
        self._resolved = False
        self._i_transmitted = False
        self._pending_feedback: Any = None
        self.received_messages: list[Any] = []

    def act(self, ctx: Context) -> Intent:
        if not self._stack:
            return Idle()
        contention_slot = ctx.slot % 2 == 0
        if self.is_base:
            if contention_slot:
                return Receive()
            feedback = self._classify(self._pending_feedback)
            self._apply_feedback(feedback)
            return Transmit(("fb", feedback))
        if contention_slot:
            lo, hi = self._stack[-1]
            mine = self.has_message and not self._resolved and lo <= ctx.node < hi
            self._i_transmitted = mine
            if mine:
                return Transmit(("msg", ctx.node, self.message))
            return Receive()
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        contention_slot = ctx.slot % 2 == 0
        if self.is_base:
            if contention_slot:
                self._pending_feedback = heard
                if isinstance(heard, tuple) and heard and heard[0] == "msg":
                    self.received_messages.append(heard[2])
            return
        if contention_slot:
            return  # contenders ignore each other; only feedback matters
        if isinstance(heard, tuple) and heard and heard[0] == "fb":
            feedback = heard[1]
            if feedback == "success" and self._i_transmitted:
                self._resolved = True
            self._apply_feedback(feedback)

    def is_done(self, ctx: Context) -> bool:
        return not self._stack

    def result(self) -> dict[str, Any]:
        if self.is_base:
            return {"role": "base", "resolved": list(self.received_messages)}
        return {"role": "contender", "resolved": self._resolved}

    # -- shared stack automaton ----------------------------------------

    @staticmethod
    def _classify(observation: Any) -> str:
        if observation is COLLISION:
            return "collision"
        if observation is SILENCE or observation is None:
            return "silence"
        return "success"

    def _apply_feedback(self, feedback: str) -> None:
        if not self._stack:
            return
        lo, hi = self._stack.pop()
        if feedback == "collision":
            mid = (lo + hi) // 2
            # Split; a singleton interval cannot collide, so mid strictly
            # separates when hi - lo >= 2 (guaranteed by the collision).
            self._stack.append((mid, hi))
            self._stack.append((lo, mid))


def make_tree_splitting_programs(
    graph: Graph,
    base: Node,
    contenders: dict[Node, Any],
) -> dict[Node, TreeSplittingProgram]:
    """Programs for tree splitting on a star/clique centred at ``base``.

    ``contenders`` maps contender node → its message.  All non-base
    nodes must have integer IDs; the shared interval covers them all.
    """
    others = [node for node in graph.nodes if node != base]
    if not all(isinstance(node, int) for node in others):
        raise ProtocolError("tree splitting requires integer contender IDs")
    if not others:
        raise ProtocolError("need at least one non-base node")
    lo, hi = min(others), max(others) + 1
    programs: dict[Node, TreeSplittingProgram] = {}
    for node in graph.nodes:
        if node == base:
            programs[node] = TreeSplittingProgram(is_base=True, id_space=(lo, hi))
        else:
            programs[node] = TreeSplittingProgram(
                is_base=False,
                id_space=(lo, hi),
                has_message=node in contenders,
                message=contenders.get(node),
            )
    return programs
