"""Decay-based leader election (the [BGI89] application, Section 2.3).

The paper sketches (and [BGI89] develops) an *emulation*: any protocol
for a single-hop radio network **with** collision detection can run on
an arbitrary multi-hop network **without** collision detection by
replacing each single-hop slot with one execution of Broadcast_scheme —
"someone transmitted" becomes "a broadcast delivered something to me",
"silence" becomes "nothing arrived all epoch".  Willard's single-hop
leader election [W86] then yields multi-hop leader election.

We implement the deterministic-bit-probing instance of that emulation
(binary search over the ID space), which elects the **maximum ID**:

* Time is divided into ``id_bits`` *epochs*, one per ID bit, most
  significant first.  Each epoch lasts ``epoch_len`` slots and hosts
  one complete multi-initiator Broadcast_scheme.
* In epoch ``b``, the *initiators* are the still-standing candidates
  whose ID has bit ``b`` set.  They broadcast the epoch-tagged token
  ``("bit", b)``; every node that receives it relays it with the usual
  Decay phases (this is exactly Broadcast_scheme with several
  initiators and identical messages — the Remark after Theorem 4).
* At the epoch's end every node inspects whether the token arrived:
  if yes, bit ``b`` of the winner is 1 and candidates without it drop
  out; if no, the bit is 0 (and, with probability ≤ ε per epoch, a
  broadcast failure mis-records a bit — the usual randomized guarantee).

After all epochs every node holds the full winner ID, and exactly the
node owning it says "I am the leader".  Leader election inherently
requires spontaneous wake-up, so runs use
``enforce_no_spontaneous=False``.

Time: ``id_bits × epoch_len`` slots, with ``epoch_len`` a Theorem-4
bound — i.e. ``O(log N · (D + log(n/ε)) · log Δ)``.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.bounds import (
    decay_phase_length,
    log2_ceil,
    num_phases,
    theorem4_slot_bound,
)
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.properties import max_degree as true_max_degree
from repro.sim.engine import Engine, RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["LeaderElectionProgram", "run_leader_election"]

Node = Hashable


class LeaderElectionProgram(NodeProgram):
    """Per-node state machine of the bit-probing leader election."""

    def __init__(
        self,
        my_id: int,
        id_bits: int,
        k: int,
        phases: int,
        epoch_len: int,
        *,
        p_continue: float = 0.5,
    ) -> None:
        if my_id < 0 or my_id >= (1 << id_bits):
            raise ProtocolError(f"ID {my_id} does not fit in {id_bits} bits")
        if epoch_len < k * phases:
            raise ProtocolError("epoch_len must accommodate at least `phases` Decays")
        self.my_id = my_id
        self.id_bits = id_bits
        self.k = k
        self.phases = phases
        self.epoch_len = epoch_len
        self.p_continue = p_continue
        self.candidate = True
        self.winner_bits: list[int] = []
        self._epoch = 0
        self._heard_token = False
        self._initiating = False
        self._relaying = False
        self._phases_done = 0
        self._decay: DecayProcess | None = None
        self._done = False

    # -- epoch bookkeeping ----------------------------------------------

    def _bit_probed(self) -> int:
        """The bit index probed in the current epoch (MSB first)."""
        return self.id_bits - 1 - self._epoch

    def _begin_epoch(self) -> None:
        bit = self._bit_probed()
        self._heard_token = False
        self._relaying = False
        self._phases_done = 0
        self._decay = None
        self._initiating = self.candidate and bool(self.my_id >> bit & 1)
        if self._initiating:
            self._relaying = True  # initiators hold the token from the start

    def _end_epoch(self) -> None:
        token_present = self._heard_token or self._initiating
        bit_value = 1 if token_present else 0
        self.winner_bits.append(bit_value)
        bit = self._bit_probed()
        my_bit = self.my_id >> bit & 1
        if self.candidate and my_bit != bit_value:
            self.candidate = False
        self._epoch += 1
        if self._epoch >= self.id_bits:
            self._done = True
        else:
            self._begin_epoch()

    # -- NodeProgram interface -------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self._begin_epoch()

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        slot_in_epoch = ctx.slot % self.epoch_len
        intent = self._epoch_intent(ctx, slot_in_epoch)
        if slot_in_epoch == self.epoch_len - 1:
            self._end_epoch()
        return intent

    def _epoch_intent(self, ctx: Context, slot_in_epoch: int) -> Intent:
        if not self._relaying or self._phases_done >= self.phases:
            return Receive()
        if self._decay is None:
            if slot_in_epoch % self.k != 0:
                return Receive()  # align Decay starts within the epoch
            self._decay = DecayProcess(
                self.k,
                ("bit", self._bit_probed()),
                ctx.rng,
                p_continue=self.p_continue,
            )
        transmit = self._decay.wants_transmit()
        if slot_in_epoch % self.k == self.k - 1:
            self._decay = None
            self._phases_done += 1
        return Transmit(("bit", self._bit_probed())) if transmit else Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if isinstance(heard, tuple) and heard and heard[0] == "bit":
            if heard[1] == self._bit_probed():
                self._heard_token = True
                if not self._relaying:
                    self._relaying = True  # join the epoch's broadcast

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> dict[str, Any]:
        winner = 0
        for bit_value in self.winner_bits:
            winner = winner << 1 | bit_value
        return {
            "winner_id": winner if self._done else None,
            "is_leader": self._done and winner == self.my_id,
        }


def run_leader_election(
    graph: Graph,
    *,
    seed: int = 0,
    epsilon: float = 0.1,
    diameter_bound: int | None = None,
    id_bits: int | None = None,
    max_degree_bound: int | None = None,
) -> RunResult:
    """Elect the maximum integer node ID of ``graph``.

    ``diameter_bound`` defaults to the graph's true diameter (a real
    deployment would use a known bound; complexity is linear in it).
    """
    nodes = graph.nodes
    if not all(isinstance(node, int) and node >= 0 for node in nodes):
        raise ProtocolError("leader election requires non-negative integer IDs")
    from repro.graphs.properties import diameter as true_diameter

    n = graph.num_nodes()
    d_bound = diameter_bound if diameter_bound is not None else true_diameter(graph)
    delta = max_degree_bound if max_degree_bound is not None else max(1, true_max_degree(graph))
    bits = id_bits if id_bits is not None else max(1, log2_ceil(max(nodes) + 1))
    k = decay_phase_length(delta)
    # Per-epoch failure budget: epsilon / id_bits so the whole election
    # succeeds with probability >= 1 - epsilon (union bound over epochs).
    per_epoch_eps = epsilon / bits
    phases = num_phases(n, per_epoch_eps)
    slot_bound = theorem4_slot_bound(n, d_bound, delta, per_epoch_eps)
    # Round the epoch up to whole Decay phases and give every node room
    # to finish its own `phases` Decays after being informed late.
    epoch_len = -(-max(slot_bound, k * phases * 2) // k) * k
    programs = {
        node: LeaderElectionProgram(node, bits, k, phases, epoch_len)
        for node in nodes
    }
    engine = Engine(
        graph,
        programs,
        seed=seed,
        initiators=frozenset(nodes),  # spontaneous wake-up is inherent to LE
        enforce_no_spontaneous=False,
    )
    return engine.run(bits * epoch_len)
