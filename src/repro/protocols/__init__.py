"""Protocols runnable on the simulation engine.

Randomized (the paper's contribution):

* :mod:`repro.protocols.decay_broadcast` — Section 2.2's Broadcast.
* :mod:`repro.protocols.decay_bfs` — Section 2.3's BFS.
* :mod:`repro.protocols.leader_election` — Decay-based leader election
  (the [BGI89] application sketched in Section 2.3).
* :mod:`repro.protocols.multi_broadcast` — pipelined multi-message
  broadcast (the [BII89] follow-on built on Decay).

Deterministic baselines (the other side of the gap):

* :mod:`repro.protocols.dfs_broadcast` — DFS token traversal
  (Section 3.4's ``2n`` upper bound).
* :mod:`repro.protocols.round_robin` — ID-indexed TDMA.
* :mod:`repro.protocols.scheduled` — replay of a centralized schedule.

Other comparators:

* :mod:`repro.protocols.aloha` — p-persistent transmission.
* :mod:`repro.protocols.cd_protocols` — collision-detection protocols
  (Section 4 remark; related-work tree splitting).
"""

from repro.protocols.aloha import AlohaBroadcastProgram, make_aloha_programs
from repro.protocols.base import run_broadcast
from repro.protocols.cd_protocols import (
    FourSlotCnProgram,
    TreeSplittingProgram,
    make_four_slot_cn_programs,
    make_tree_splitting_programs,
)
from repro.protocols.decay_bfs import DecayBFSProgram, make_bfs_programs, run_bfs
from repro.protocols.decay_broadcast import (
    DecayBroadcastProgram,
    make_broadcast_programs,
    run_decay_broadcast,
)
from repro.protocols.dfs_broadcast import DFSBroadcastProgram, make_dfs_programs
from repro.protocols.leader_election import LeaderElectionProgram, run_leader_election
from repro.protocols.multi_broadcast import (
    MultiBroadcastProgram,
    run_multi_broadcast,
)
from repro.protocols.round_robin import RoundRobinProgram, make_round_robin_programs
from repro.protocols.routing import RoutingProgram, run_routing
from repro.protocols.scheduled import ScheduledProgram, make_scheduled_programs

__all__ = [
    "run_broadcast",
    "DecayBroadcastProgram",
    "make_broadcast_programs",
    "run_decay_broadcast",
    "DecayBFSProgram",
    "make_bfs_programs",
    "run_bfs",
    "DFSBroadcastProgram",
    "make_dfs_programs",
    "RoundRobinProgram",
    "make_round_robin_programs",
    "ScheduledProgram",
    "make_scheduled_programs",
    "AlohaBroadcastProgram",
    "make_aloha_programs",
    "FourSlotCnProgram",
    "make_four_slot_cn_programs",
    "TreeSplittingProgram",
    "make_tree_splitting_programs",
    "LeaderElectionProgram",
    "run_leader_election",
    "MultiBroadcastProgram",
    "run_multi_broadcast",
    "RoutingProgram",
    "run_routing",
]
