"""Randomized Breadth-First Search via Decay (paper Section 2.3).

Goal: *given a root r, mark all nodes v by dist(r, v)*.

The plain Broadcast_scheme's reception times have too much variance to
read distances off them, so the paper slows broadcast down to progress
"layer by layer": time is divided into **superphases** of
``k·L`` slots, where ``k = 2⌈log Δ⌉`` is the Decay duration and
``L = ⌈log(N/ε)⌉``.  A node that first receives the message during
superphase ``i`` sets ``Distance := i + 1``, waits for the start of
superphase ``i + 1``, then executes ``L`` consecutive Decay calls
(filling that one superphase) and stops.  The root does the same in
superphase 0.

Correctness sketch (the paper's Lemma-2 argument): all nodes of layer
``j`` that labelled correctly transmit throughout superphase ``j``;
a layer-``j+1`` node therefore sees ``L`` independent Decay phases,
each delivering with probability ≥ 1/2 (Theorem 1(ii)), so it fails to
receive within superphase ``j`` with probability ≤ 2^(−L) ≤ ε/N; a
union bound gives all labels correct with probability ≥ 1 − ε, in
``2·D·⌈log Δ⌉·⌈log(N/ε)⌉`` slots.

*Note on the PODC pseudocode*: the preliminary version's loop reads
"do ⌈log(N/ε)⌉ times { Wait until (Time mod k⌈log(N/ε)⌉) = 0;
Decay(k, m) }", which — taken literally — runs a single Decay per
superphase and cannot achieve the stated ε-dependence (one Decay fails
with probability up to 1/2).  We implement the reading consistent with
the paper's own analysis and stated time bound: *all* ``L`` Decays are
packed into the one superphase following reception.  This is also the
formulation of the journal version.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.bounds import decay_phase_length, m_epsilon
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.engine import RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit
from repro.protocols.base import run_broadcast
from repro.telemetry.core import phase as _phase_marker

__all__ = ["DecayBFSProgram", "make_bfs_programs", "run_bfs"]

Node = Hashable


class DecayBFSProgram(NodeProgram):
    """Per-node state machine for the Decay-based BFS.

    Parameters
    ----------
    k:
        Decay duration in slots (``2⌈log Δ⌉``).
    decays_per_superphase:
        The paper's ``L = ⌈log(N/ε)⌉``.
    is_root:
        The root knows the message from the start, labels itself 0,
        and transmits throughout superphase 0.
    """

    def __init__(
        self,
        k: int,
        decays_per_superphase: int,
        *,
        is_root: bool = False,
        message: Any = "bfs",
        p_continue: float = 0.5,
    ) -> None:
        if k < 1 or decays_per_superphase < 1:
            raise ProtocolError("k and decays_per_superphase must be >= 1")
        self.k = k
        self.decays = decays_per_superphase
        self.superphase_len = k * decays_per_superphase
        self.p_continue = p_continue
        self.distance: int | None = 0 if is_root else None
        self.message: Any = message if is_root else None
        self._transmit_superphase: int | None = 0 if is_root else None
        self._decay: DecayProcess | None = None
        self._decays_done = 0
        self._done = False

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        if self.message is None:
            return Receive()
        current_superphase = ctx.slot // self.superphase_len
        if current_superphase < self._transmit_superphase:
            return Receive()  # wait for our superphase to begin
        if self._decay is None:
            self._decay = DecayProcess(
                self.k, self.message, ctx.rng, p_continue=self.p_continue
            )
        transmit = self._decay.wants_transmit()
        # Decay boundaries within the superphase are fixed: the d-th
        # Decay occupies slots [d*k, (d+1)*k) of the superphase.
        slot_in_superphase = ctx.slot % self.superphase_len
        if slot_in_superphase % self.k == self.k - 1:
            self._decay = None
            self._decays_done += 1
            # Telemetry only (labels never feed back into behaviour).
            _phase_marker(
                "decay-bfs",
                node=ctx.node,
                index=self._decays_done - 1,
                slot=ctx.slot,
                start_slot=ctx.slot - self.k + 1,
                layer=self.distance,
                k=self.k,
            )
            if self._decays_done >= self.decays:
                self._done = True
        return Transmit(self.message) if transmit else Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if self.message is None:
            self.message = heard
            self.distance = ctx.slot // self.superphase_len + 1
            self._transmit_superphase = ctx.slot // self.superphase_len + 1
            # BFS layer marker: this node just labelled itself.
            _phase_marker(
                "bfs-layer",
                node=ctx.node,
                index=self.distance,
                slot=ctx.slot,
                superphase_len=self.superphase_len,
            )

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> int | None:
        """The computed distance label (``None`` if never informed)."""
        return self.distance


def make_bfs_programs(
    graph: Graph,
    root: Node,
    *,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
    epsilon: float = 0.1,
    message: Any = "bfs",
    p_continue: float = 0.5,
) -> tuple[dict[Node, DecayBFSProgram], dict[str, int]]:
    """Build one BFS program per node; returns programs and parameters."""
    from repro.graphs.properties import max_degree as true_max_degree

    n = graph.num_nodes()
    big_n = upper_bound_n if upper_bound_n is not None else n
    if big_n < n:
        raise ProtocolError(f"upper bound N={big_n} is below the true n={n}")
    delta = max_degree_bound if max_degree_bound is not None else max(1, true_max_degree(graph))
    k = decay_phase_length(delta)
    decays = m_epsilon(big_n, epsilon)
    programs = {
        node: DecayBFSProgram(
            k,
            decays,
            is_root=(node == root),
            message=message,
            p_continue=p_continue,
        )
        for node in graph.nodes
    }
    return programs, {"k": k, "decays_per_superphase": decays, "superphase_len": k * decays}


def run_bfs(
    graph: Graph,
    root: Node,
    *,
    seed: int = 0,
    epsilon: float = 0.1,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
    max_slots: int | None = None,
    record_trace: bool = False,
) -> RunResult:
    """Run the Decay-BFS from ``root``; labels are in ``node_results()``."""
    programs, params = make_bfs_programs(
        graph,
        root,
        upper_bound_n=upper_bound_n,
        max_degree_bound=max_degree_bound,
        epsilon=epsilon,
    )
    if max_slots is None:
        # At most n superphases can ever carry activity.
        max_slots = max(1, graph.num_nodes() * params["superphase_len"])

    def quiescent(engine) -> bool:
        return all(
            prog._done or prog.message is None for prog in engine.programs.values()
        )

    return run_broadcast(
        graph,
        programs,
        initiators={root},
        max_slots=max_slots,
        seed=seed,
        stop="terminated",
        record_trace=record_trace,
        extra_stop=quiescent,
    )
