"""The "trivial protocol using the schedule".

The paper observes its randomized protocol decomposes into (a) a
distributed algorithm that *finds* a broadcast schedule and (b) a
trivial protocol that *uses* one.  :class:`ScheduledProgram` is part
(b): each node is handed the (centrally computed) schedule and simply
transmits in the slots assigned to it.  Combined with the constructions
in :mod:`repro.core.schedule` this realises the [CW87]-style
centralized alternative discussed in Related Work, and is the ablation
comparator for "what if topology were known?".
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["ScheduledProgram", "make_scheduled_programs"]

Node = Hashable


class ScheduledProgram(NodeProgram):
    """Follow a precomputed broadcast schedule.

    ``my_slots`` is the sorted list of slots in which this node
    transmits.  The program listens in all other slots until the
    schedule ends, then stops.  If the schedule is valid (see
    :func:`repro.core.schedule.verify_schedule`) the node is always
    informed before its first transmission slot.
    """

    def __init__(
        self,
        my_slots: Sequence[int],
        schedule_length: int,
        *,
        initial_message: Any = None,
    ) -> None:
        if any(slot < 0 or slot >= schedule_length for slot in my_slots):
            raise ProtocolError("transmission slots must lie within the schedule")
        self.my_slots = frozenset(my_slots)
        self.schedule_length = schedule_length
        self.message: Any = initial_message

    def act(self, ctx: Context) -> Intent:
        if ctx.slot >= self.schedule_length:
            return Idle()
        if ctx.slot in self.my_slots:
            if self.message is None:
                raise ProtocolError(
                    f"invalid schedule: node {ctx.node!r} must transmit at slot "
                    f"{ctx.slot} but was never informed"
                )
            return Transmit(self.message)
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if self.message is None:
            self.message = heard

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= self.schedule_length

    def result(self) -> dict[str, Any]:
        return {"informed": self.message is not None}


def make_scheduled_programs(
    graph: Graph,
    source: Node,
    schedule: Sequence[frozenset],
    *,
    message: Any = "m",
) -> dict[Node, ScheduledProgram]:
    """Distribute a centralized schedule to per-node programs."""
    length = len(schedule)
    slots_of: dict[Node, list[int]] = {node: [] for node in graph.nodes}
    for slot, transmitters in enumerate(schedule):
        for node in transmitters:
            if node not in slots_of:
                raise ProtocolError(f"schedule names unknown node {node!r}")
            slots_of[node].append(slot)
    return {
        node: ScheduledProgram(
            slots_of[node],
            length,
            initial_message=message if node == source else None,
        )
        for node in graph.nodes
    }
