"""The paper's randomized Broadcast protocol (Section 2.2).

Pseudocode, executed by every processor::

    procedure Broadcast;
        k := 2⌈log Δ⌉;
        t := ⌈2·log(N/ε)⌉;
        Wait until receiving a message, say m;
        do t times
            Wait until (Time mod k) = 0;
            Decay(k, m);
        od

The *Broadcast_scheme* augments this with an initiation assumption: at
Time 0 one (or more — see the Remark after Theorem 4) processor already
holds the message.  We realise initiation by constructing the source's
program with ``initial_message=...``; since slot 0 is a phase boundary,
the source's first Decay transmission *is* the paper's "source
transmits an initial message at time-slot 0".

Key properties preserved from the paper:

* **ID-obliviousness** — the program never reads ``ctx.node`` or
  ``ctx.neighbor_ids``; only the common clock, its private coins, and
  its own observations drive it.  (A test asserts behavioural
  invariance under ID relabelling.)
* **Phase alignment** — every Decay starts at a slot ≡ 0 (mod k), so
  all transmitters of a phase start together, as Theorem 1 requires.
  ``align_phases=False`` gives the free-running ablation variant.
* **Constant local work per slot** — one coin flip and counter
  arithmetic.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.core.bounds import decay_phase_length, num_phases
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.engine import RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit
from repro.protocols.base import run_broadcast
from repro.telemetry.core import phase as _phase_marker

__all__ = ["DecayBroadcastProgram", "make_broadcast_programs", "run_decay_broadcast"]

Node = Hashable


class DecayBroadcastProgram(NodeProgram):
    """Per-node state machine for ``procedure Broadcast``.

    Parameters
    ----------
    k:
        Slots per Decay call (``2⌈log Δ⌉``).
    phases:
        Number of Decay calls once informed (the paper's ``t``).
    initial_message:
        If not ``None``, this node starts informed (it is the source,
        or one of several simultaneous initiators).
    p_continue:
        Decay coin bias (paper: 0.5; E8 ablation knob).
    align_phases:
        If True (paper), wait for ``Time mod k == 0`` before each
        Decay; if False, start Decay calls back-to-back immediately
        upon being informed (ablation).
    """

    def __init__(
        self,
        k: int,
        phases: int,
        *,
        initial_message: Any = None,
        p_continue: float = 0.5,
        align_phases: bool = True,
    ) -> None:
        if k < 1:
            raise ProtocolError("k must be >= 1")
        if phases < 1:
            raise ProtocolError("phases must be >= 1")
        self.k = k
        self.phases = phases
        self.p_continue = p_continue
        self.align_phases = align_phases
        self.message: Any = initial_message
        self.informed_at_slot: int | None = -1 if initial_message is not None else None
        self._phases_done = 0
        self._decay: DecayProcess | None = None
        self._decay_started_at = 0
        self._done = False

    # -- NodeProgram interface ------------------------------------------

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        if self.message is None:
            return Receive()  # Wait until receiving a message
        if self._decay is None:
            if self.align_phases and ctx.slot % self.k != 0:
                return Receive()  # Wait until (Time mod k) = 0
            self._decay = DecayProcess(
                self.k, self.message, ctx.rng, p_continue=self.p_continue
            )
            self._decay_started_at = ctx.slot
        if self._decay.wants_transmit():
            intent: Intent = Transmit(self.message)
        else:
            intent = Receive()
        if self._phase_elapsed(ctx.slot):
            self._finish_phase(ctx)
        return intent

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if self.message is None:
            self.message = heard
            self.informed_at_slot = ctx.slot

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> Any:
        return {
            "informed": self.message is not None,
            "informed_at_slot": self.informed_at_slot,
            "phases_executed": self._phases_done,
            "message": self.message,
        }

    # -- internals --------------------------------------------------------

    def _phase_elapsed(self, slot: int) -> bool:
        """True when the current slot is the last of the running phase."""
        return slot - self._decay_started_at >= self.k - 1

    def _finish_phase(self, ctx: Context) -> None:
        # Telemetry only: the phase marker reads ctx.node for labelling
        # but never feeds back into behaviour, so ID-obliviousness of
        # the *protocol* is intact (the relabelling test still holds).
        _phase_marker(
            "decay-broadcast",
            node=ctx.node,
            index=self._phases_done,
            slot=ctx.slot,
            start_slot=self._decay_started_at,
            k=self.k,
            phases=self.phases,
        )
        self._decay = None
        self._phases_done += 1
        if self._phases_done >= self.phases:
            self._done = True


def make_broadcast_programs(
    graph: Graph,
    initiators: Mapping[Node, Any] | set[Node] | frozenset[Node],
    *,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
    epsilon: float = 0.1,
    message: Any = "m",
    p_continue: float = 0.5,
    align_phases: bool = True,
    phase_multiplier: float = 2.0,
) -> tuple[dict[Node, DecayBroadcastProgram], dict[str, int]]:
    """Build one :class:`DecayBroadcastProgram` per node of ``graph``.

    ``initiators`` is either a set of nodes (all get ``message``) or a
    mapping node → initial message (the arbitrary-messages Remark).
    ``upper_bound_n`` is the paper's ``N`` (defaults to the true ``n``)
    and ``max_degree_bound`` its ``Δ`` (defaults to the true maximum
    degree).  Returns the programs plus the derived parameters
    ``{"k": ..., "phases": ...}`` for bound computations.
    """
    from repro.graphs.properties import max_degree as true_max_degree

    n = graph.num_nodes()
    big_n = upper_bound_n if upper_bound_n is not None else n
    if big_n < n:
        raise ProtocolError(f"upper bound N={big_n} is below the true n={n}")
    delta = max_degree_bound if max_degree_bound is not None else max(1, true_max_degree(graph))
    k = decay_phase_length(delta)
    phases = num_phases(big_n, epsilon, multiplier=phase_multiplier)
    if isinstance(initiators, (set, frozenset)):
        init_map: dict[Node, Any] = {node: message for node in initiators}
    else:
        init_map = dict(initiators)
    programs = {
        node: DecayBroadcastProgram(
            k,
            phases,
            initial_message=init_map.get(node),
            p_continue=p_continue,
            align_phases=align_phases,
        )
        for node in graph.nodes
    }
    return programs, {"k": k, "phases": phases}


def run_decay_broadcast(
    graph: Graph,
    source: Node,
    *,
    seed: int = 0,
    epsilon: float = 0.1,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
    max_slots: int | None = None,
    message: Any = "m",
    p_continue: float = 0.5,
    align_phases: bool = True,
    phase_multiplier: float = 2.0,
    stop: str = "informed",
    record_trace: bool = False,
    record_provenance: bool = False,
    faults=None,
) -> RunResult:
    """One-call runner for the paper's Broadcast_scheme from ``source``.

    ``max_slots`` defaults to a generous multiple of the Theorem 4
    bound so that failed runs terminate; completion is read off the
    returned :class:`~repro.sim.engine.RunResult`.
    """
    programs, params = make_broadcast_programs(
        graph,
        {source: message},
        upper_bound_n=upper_bound_n,
        max_degree_bound=max_degree_bound,
        epsilon=epsilon,
        p_continue=p_continue,
        align_phases=align_phases,
        phase_multiplier=phase_multiplier,
    )
    if max_slots is None:
        # Hard cap; in practice runs end at quiescence (below) long before.
        max_slots = max(1, graph.num_nodes() * params["phases"] * params["k"])

    def quiescent(engine) -> bool:
        # Once every informed node has exhausted its phases, no further
        # transmission can ever occur: the run's outcome is decided.
        return all(
            prog._done or prog.message is None
            for prog in engine.programs.values()
        )

    return run_broadcast(
        graph,
        programs,
        initiators={source},
        max_slots=max_slots,
        seed=seed,
        stop=stop,  # type: ignore[arg-type]
        record_trace=record_trace,
        record_provenance=record_provenance,
        faults=faults,
        extra_stop=quiescent,
    )
