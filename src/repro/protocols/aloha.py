"""p-persistent (slotted-ALOHA-style) broadcast baseline.

Randomized comparator referenced by the paper's Related Work ([A70],
[T81]): once informed, a node transmits the message in every slot
independently with probability ``p`` and listens otherwise, forever (or
for a bounded number of slots).

Against Decay this exhibits the classic failure mode the Decay design
fixes: a single fixed ``p`` cannot be right for every neighbourhood
size — ``p ≈ 1/d`` is needed for a ``d``-dense neighbourhood, but ``d``
varies across the network and over time.  Decay's geometric sweep of
effective transmission rates covers all ``d`` with one parameter-free
procedure; the E8/ablation bench quantifies the difference.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["AlohaBroadcastProgram", "make_aloha_programs"]

Node = Hashable


class AlohaBroadcastProgram(NodeProgram):
    """Transmit with probability ``p`` each slot once informed.

    ``active_slots`` bounds how many slots the node keeps transmitting
    after being informed (``None``: unbounded — the harness's stop
    condition or slot cap ends the run).
    """

    def __init__(
        self,
        p: float,
        *,
        initial_message: Any = None,
        active_slots: int | None = None,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ProtocolError("transmission probability must be in (0, 1]")
        self.p = p
        self.active_slots = active_slots
        self.message: Any = initial_message
        self._informed_slot: int | None = 0 if initial_message is not None else None
        self._done = False

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        if self.message is None:
            return Receive()
        if (
            self.active_slots is not None
            and self._informed_slot is not None
            and ctx.slot - self._informed_slot >= self.active_slots
        ):
            self._done = True
            return Idle()
        if ctx.rng.random() < self.p:
            return Transmit(self.message)
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if self.message is None:
            self.message = heard
            self._informed_slot = ctx.slot

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> dict[str, Any]:
        return {"informed": self.message is not None, "informed_at": self._informed_slot}


def make_aloha_programs(
    graph: Graph,
    source: Node,
    p: float,
    *,
    message: Any = "m",
    active_slots: int | None = None,
) -> dict[Node, AlohaBroadcastProgram]:
    """One ALOHA program per node of ``graph``."""
    return {
        node: AlohaBroadcastProgram(
            p,
            initial_message=message if node == source else None,
            active_slots=active_slots,
        )
        for node in graph.nodes
    }
