"""Graph property algorithms: BFS layers, distances, diameter, degrees.

These are the quantities the paper's bounds are phrased in — ``n`` (the
number of processors), ``D`` (the diameter), and ``Δ`` (the maximum
degree, the paper's a-priori in-degree bound).  The functions work on
both :class:`~repro.graphs.graph.Graph` and ``DiGraph`` (for digraphs,
distances follow edge direction, which matches message flow).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Hashable

from repro.errors import GraphError, NodeNotFound
from repro.graphs.graph import DiGraph, Graph

__all__ = [
    "distances_from",
    "bfs_layers",
    "eccentricity",
    "diameter",
    "is_connected",
    "max_degree",
    "degree_histogram",
]

Node = Hashable
INFINITE = float("inf")


def _successors(g: Graph, node: Node) -> frozenset[Node]:
    """Nodes reachable in one hop following message flow."""
    if isinstance(g, DiGraph):
        return g.neighbors_out(node)
    return g.neighbors(node)


def distances_from(g: Graph, source: Node) -> dict[Node, int]:
    """Hop distances from ``source`` to every reachable node (BFS)."""
    if not g.has_node(source):
        raise NodeNotFound(source)
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in _successors(g, node):
            if nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


def bfs_layers(g: Graph, source: Node) -> list[list[Node]]:
    """Nodes grouped by distance from ``source``; layer 0 is ``[source]``."""
    dist = distances_from(g, source)
    if not dist:
        return []
    layers: list[list[Node]] = [[] for _ in range(max(dist.values()) + 1)]
    for node, d in dist.items():
        layers[d].append(node)
    return layers


def eccentricity(g: Graph, source: Node) -> int:
    """Max distance from ``source`` to any node; raises if some node is unreachable."""
    dist = distances_from(g, source)
    if len(dist) != g.num_nodes():
        raise GraphError(f"graph is not connected from {source!r}")
    return max(dist.values())


def diameter(g: Graph) -> int:
    """Largest hop distance between any node pair (all-sources BFS)."""
    if g.num_nodes() == 0:
        raise GraphError("diameter of the empty graph is undefined")
    return max(eccentricity(g, node) for node in g.nodes)


def is_connected(g: Graph) -> bool:
    """True iff every node is reachable from every other.

    For :class:`DiGraph` this checks *strong* connectivity in the sense
    relevant to broadcast: from an arbitrary root, every node must be
    reachable following edges forward.  (The paper's directed remark
    only needs reachability from the source; callers who care use
    :func:`distances_from` directly.)
    """
    if g.num_nodes() == 0:
        return True
    nodes = g.nodes
    if isinstance(g, DiGraph):
        return all(len(distances_from(g, root)) == g.num_nodes() for root in nodes)
    return len(distances_from(g, nodes[0])) == g.num_nodes()


def max_degree(g: Graph) -> int:
    """The paper's ``Δ``: the maximum in-degree over all nodes.

    For undirected graphs this is just the maximum degree.  For
    digraphs it is the maximum *in*-degree, since Decay's parameter
    bounds the number of competing transmitters a receiver hears.
    """
    if g.num_nodes() == 0:
        raise GraphError("max_degree of the empty graph is undefined")
    if isinstance(g, DiGraph):
        return max(g.in_degree(node) for node in g.nodes)
    return max(g.degree(node) for node in g.nodes)


def degree_histogram(g: Graph) -> dict[int, int]:
    """Map ``degree -> number of nodes with that degree``."""
    if isinstance(g, DiGraph):
        counts = Counter(g.in_degree(node) for node in g.nodes)
    else:
        counts = Counter(g.degree(node) for node in g.nodes)
    return dict(sorted(counts.items()))
