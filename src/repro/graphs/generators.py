"""Topology generators.

The first two generators are the paper's lower-bound families:

* :func:`c_n` — the class ``C_n`` of Section 3.1: source ``0`` connected
  to a second layer ``1..n``, a subset ``S`` of which is connected to the
  sink ``n+1``.  Diameter 3 (for proper ``S``), ``n + 2`` nodes.
* :func:`c_star_n` — the class ``C*_n`` of Section 3.5 used to defeat
  spontaneous transmissions: second layer ``1..n``, sinks ``n+1..2n``,
  complete bipartite edges between ``S`` and ``R``.

The rest are standard families used as broadcast workloads: paths,
rings, grids, trees, cliques, stars, hypercubes, Erdős–Rényi graphs,
unit-disk graphs (the classic wireless model), layered random graphs
(controlled diameter *and* controlled conflict density), and barbells.

Random generators take a :class:`random.Random` so callers control
reproducibility (see :mod:`repro.rng`).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "c_n",
    "c_star_n",
    "line",
    "ring",
    "grid",
    "complete",
    "star",
    "hypercube",
    "random_gnp",
    "random_tree",
    "unit_disk",
    "watts_strogatz",
    "layered_random",
    "barbell",
]


def c_n(n: int, subset: Iterable[int]) -> Graph:
    """The paper's lower-bound network ``G_S`` from the class ``C_n``.

    Nodes are ``0`` (the source), ``1..n`` (the second layer) and
    ``n + 1`` (the sink).  Edge set is ``E1 ∪ E2`` with
    ``E1 = {(0, i) : 1 ≤ i ≤ n}`` and ``E2 = {(i, n+1) : i ∈ S}``.

    Parameters
    ----------
    n:
        Size of the second layer (the network has ``n + 2`` nodes).
    subset:
        The hidden set ``S`` — a non-empty subset of ``{1, .., n}``.
    """
    s = set(subset)
    if n < 1:
        raise GraphError("c_n requires n >= 1")
    if not s:
        raise GraphError("c_n requires a non-empty subset S")
    if not s <= set(range(1, n + 1)):
        raise GraphError(f"subset S must be within 1..{n}, got {sorted(s)!r}")
    g = Graph(nodes=range(n + 2))
    for i in range(1, n + 1):
        g.add_edge(0, i)
    sink = n + 1
    for i in s:
        g.add_edge(i, sink)
    return g


def c_star_n(n: int, subset_s: Iterable[int], subset_r: Iterable[int]) -> Graph:
    """The paper's spontaneous-wakeup-resistant network ``G_{S,R}`` (``C*_n``).

    Nodes ``0..2n``: source ``0``, second layer ``1..n``, sinks
    ``n+1..2n``.  Edges: ``0`` to every second-layer node, plus the
    complete bipartite graph between ``S ⊆ {1..n}`` and
    ``R ⊆ {n+1..2n}``.
    """
    s = set(subset_s)
    r = set(subset_r)
    if n < 1:
        raise GraphError("c_star_n requires n >= 1")
    if not s or not r:
        raise GraphError("c_star_n requires non-empty S and R")
    if not s <= set(range(1, n + 1)):
        raise GraphError(f"S must be within 1..{n}")
    if not r <= set(range(n + 1, 2 * n + 1)):
        raise GraphError(f"R must be within {n + 1}..{2 * n}")
    g = Graph(nodes=range(2 * n + 1))
    for i in range(1, n + 1):
        g.add_edge(0, i)
    for i in s:
        for j in r:
            g.add_edge(i, j)
    return g


def line(n: int) -> Graph:
    """A path on ``n`` nodes ``0..n-1`` (diameter ``n - 1``)."""
    if n < 1:
        raise GraphError("line requires n >= 1")
    g = Graph(nodes=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def ring(n: int) -> Graph:
    """A cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("ring requires n >= 3")
    g = line(n)
    g.add_edge(n - 1, 0)
    return g


def grid(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` 2-D mesh; node ``(r, c)`` is labelled ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid requires positive dimensions")
    g = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                g.add_edge(node, node + 1)
            if r + 1 < rows:
                g.add_edge(node, node + cols)
    return g


def complete(n: int) -> Graph:
    """The clique ``K_n`` — the single-hop radio channel of [A70]."""
    if n < 1:
        raise GraphError("complete requires n >= 1")
    g = Graph(nodes=range(n))
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def star(n_leaves: int) -> Graph:
    """A star: centre ``0`` with ``n_leaves`` leaves ``1..n_leaves``.

    This is the single-receiver Decay setting of Theorem 1: ``d``
    transmitting leaves compete for the centre's attention (or the
    centre broadcasts to the leaves).
    """
    if n_leaves < 1:
        raise GraphError("star requires at least one leaf")
    g = Graph(nodes=range(n_leaves + 1))
    for leaf in range(1, n_leaves + 1):
        g.add_edge(0, leaf)
    return g


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube on ``2**dim`` nodes."""
    if dim < 1:
        raise GraphError("hypercube requires dim >= 1")
    n = 1 << dim
    g = Graph(nodes=range(n))
    for node in range(n):
        for bit in range(dim):
            other = node ^ (1 << bit)
            if node < other:
                g.add_edge(node, other)
    return g


def random_gnp(n: int, p: float, rng: random.Random, *, connect: bool = True) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` graph.

    With ``connect=True`` (the default) any disconnected components are
    stitched to the giant structure with single random edges, so the
    result is always connected — broadcast is only defined on connected
    graphs.
    """
    if n < 1:
        raise GraphError("random_gnp requires n >= 1")
    if not 0.0 <= p <= 1.0:
        raise GraphError("edge probability must be in [0, 1]")
    g = Graph(nodes=range(n))
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < p:
            g.add_edge(u, v)
    if connect:
        _stitch_components(g, rng)
    return g


def random_tree(n: int, rng: random.Random) -> Graph:
    """A uniform random recursive tree on ``n`` nodes (root 0)."""
    if n < 1:
        raise GraphError("random_tree requires n >= 1")
    g = Graph(nodes=range(n))
    for node in range(1, n):
        g.add_edge(node, rng.randrange(node))
    return g


def unit_disk(
    n: int,
    radius: float,
    rng: random.Random,
    *,
    area: float = 1.0,
    connect: bool = True,
) -> Graph:
    """A unit-disk graph: ``n`` points uniform in an ``area x area`` square,
    edges between points at Euclidean distance ``<= radius``.

    This is the canonical geometric model of an ad-hoc radio network.
    Positions are stored on the returned graph as the ``positions``
    attribute (``dict[node, (x, y)]``) for visualisation and for
    mobility experiments.
    """
    if n < 1:
        raise GraphError("unit_disk requires n >= 1")
    if radius <= 0:
        raise GraphError("radius must be positive")
    points = {i: (rng.uniform(0, area), rng.uniform(0, area)) for i in range(n)}
    g = Graph(nodes=range(n))
    r2 = radius * radius
    for u, v in itertools.combinations(range(n), 2):
        dx = points[u][0] - points[v][0]
        dy = points[u][1] - points[v][1]
        if dx * dx + dy * dy <= r2:
            g.add_edge(u, v)
    if connect:
        _stitch_components(g, rng)
    g.positions = points  # type: ignore[attr-defined]
    return g


def layered_random(
    layer_sizes: Sequence[int],
    p: float,
    rng: random.Random,
) -> Graph:
    """A layered random graph with guaranteed diameter control.

    Layer ``i`` nodes connect to layer ``i + 1`` nodes independently with
    probability ``p``; every node is additionally wired to one uniformly
    random node of the next layer so consecutive layers are always
    connected.  This family lets experiments sweep the diameter
    (``len(layer_sizes) - 1``) and the conflict density (``p``, which
    controls in-degrees) independently — exactly the two terms of the
    paper's ``O((D + log n/ε) · log n)`` bound.
    """
    if not layer_sizes or any(size < 1 for size in layer_sizes):
        raise GraphError("layer_sizes must be non-empty positive ints")
    if not 0.0 <= p <= 1.0:
        raise GraphError("edge probability must be in [0, 1]")
    offsets = [0]
    for size in layer_sizes:
        offsets.append(offsets[-1] + size)
    g = Graph(nodes=range(offsets[-1]))
    for layer in range(len(layer_sizes) - 1):
        current = list(range(offsets[layer], offsets[layer + 1]))
        nxt = list(range(offsets[layer + 1], offsets[layer + 2]))
        for u in current:
            g.add_edge(u, rng.choice(nxt))
            for v in nxt:
                if rng.random() < p:
                    g.add_edge(u, v)
        # Symmetric guarantee: every next-layer node also has at least
        # one edge back, so no node is ever orphaned (relevant for the
        # last layer, whose nodes otherwise rely on being chosen).
        current_set = set(current)
        for v in nxt:
            if not (g.neighbors(v) & current_set):
                g.add_edge(v, rng.choice(current))
    return g


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    rng: random.Random,
) -> Graph:
    """A Watts–Strogatz small-world graph.

    Start from a ring lattice where each node links to its ``k``
    nearest neighbours (``k`` even), then rewire each edge's far
    endpoint with probability ``beta`` to a uniform random node.  Sweeping
    ``beta`` trades a large-diameter lattice (β = 0) for a
    logarithmic-diameter random graph (β → 1) at roughly constant
    degree — a convenient one-knob workload for the
    ``O((D + log n/ε)·log Δ)`` bound's two regimes.

    Rewiring keeps the original lattice edge when the proposed new
    endpoint would create a self-loop or duplicate, so the graph always
    stays connected for ``k ≥ 2``.
    """
    if n < 3:
        raise GraphError("watts_strogatz requires n >= 3")
    if k < 2 or k % 2 != 0 or k >= n:
        raise GraphError("k must be even with 2 <= k < n")
    if not 0.0 <= beta <= 1.0:
        raise GraphError("beta must be in [0, 1]")
    g = Graph(nodes=range(n))
    # Ring lattice.
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(node, (node + offset) % n)
    if beta == 0.0:
        return g
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbor = (node + offset) % n
            if rng.random() >= beta:
                continue
            candidate = rng.randrange(n)
            if candidate == node or g.has_edge(node, candidate):
                continue
            # Keep connectivity: never remove a node's last edge.
            if g.degree(neighbor) <= 1 or not g.has_edge(node, neighbor):
                continue
            g.remove_edge(node, neighbor)
            g.add_edge(node, candidate)
    _stitch_components(g, rng)  # beta-heavy rewiring can rarely disconnect
    return g


def barbell(clique_size: int, path_length: int) -> Graph:
    """Two ``K_m`` cliques joined by a path of ``path_length`` edges.

    A classic stress topology: dense conflict zones at both ends, a long
    thin bridge dominating the diameter.
    """
    if clique_size < 2:
        raise GraphError("barbell requires clique_size >= 2")
    if path_length < 1:
        raise GraphError("barbell requires path_length >= 1")
    m = clique_size
    g = Graph(nodes=range(2 * m + path_length - 1))
    for u, v in itertools.combinations(range(m), 2):
        g.add_edge(u, v)
    # Path from node m-1 through fresh nodes to the second clique.
    path_nodes = [m - 1] + list(range(2 * m, 2 * m + path_length - 1)) + [m]
    for u, v in zip(path_nodes, path_nodes[1:]):
        g.add_edge(u, v)
    for u, v in itertools.combinations(range(m, 2 * m), 2):
        g.add_edge(u, v)
    return g


def _components(g: Graph) -> list[set]:
    """Connected components via iterative DFS (no recursion limits)."""
    seen: set = set()
    comps: list[set] = []
    for start in g.nodes:
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in g.neighbors(node):
                if nbr not in comp:
                    comp.add(nbr)
                    stack.append(nbr)
        seen |= comp
        comps.append(comp)
    return comps


def _stitch_components(g: Graph, rng: random.Random) -> None:
    """Connect a possibly-disconnected graph with one random edge per gap."""
    comps = _components(g)
    base = comps[0]
    for comp in comps[1:]:
        u = rng.choice(sorted(base, key=_sort_key))
        v = rng.choice(sorted(comp, key=_sort_key))
        g.add_edge(u, v)
        base |= comp


def _sort_key(node: object) -> str:
    """Stable ordering for heterogeneous node labels."""
    return f"{type(node).__name__}:{node!r}"
