"""Dense adjacency-matrix export for the vectorized backend.

:func:`adjacency_matrix` flattens a :class:`~repro.graphs.graph.Graph`
(or :class:`~repro.graphs.graph.DiGraph`) into the array form the NumPy
backend resolves slots with: a stable node ordering, its inverse index,
and a float32 matrix ``hears`` with ``hears[t, r] == 1`` iff a
transmission by ``t`` is audible at ``r`` — so a batch of transmit
vectors ``X`` (trials x nodes) turns into audible-transmitter counts in
one matmul, ``X @ hears``.

The export is cached on the graph instance keyed by its
:attr:`~repro.graphs.graph.Graph.version` counter, so repeated batch
runs over an unchanged topology reuse the same arrays and any mutation
(edge faults included) invalidates the cache for free.

NumPy is imported lazily, at call time: merely importing this module —
e.g. via ``repro.graphs`` consumers — must keep working without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.graphs.graph import DiGraph, Graph

__all__ = ["AdjacencyExport", "adjacency_matrix"]

Node = Hashable

_CACHE_ATTR = "_dense_adjacency_cache"


@dataclass
class AdjacencyExport:
    """A graph flattened to arrays (see module docs for conventions)."""

    #: node labels in the graph's insertion order
    nodes: list[Node]
    #: label -> position in :attr:`nodes`
    index: dict[Node, int]
    #: ``(n, n)`` float32; ``hears[t, r] == 1`` iff ``r`` hears ``t``
    hears: Any

    def __len__(self) -> int:
        return len(self.nodes)


def adjacency_matrix(graph: Graph) -> AdjacencyExport:
    """The dense-array form of ``graph``, cached per graph version."""
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    import numpy as np

    nodes = graph.nodes
    index = {node: position for position, node in enumerate(nodes)}
    hears = np.zeros((len(nodes), len(nodes)), dtype=np.float32)
    if isinstance(graph, DiGraph):
        for u, v in graph.edges:  # directed: u's transmissions reach v
            hears[index[u], index[v]] = 1.0
    else:
        for u, v in graph.edges:
            hears[index[u], index[v]] = 1.0
            hears[index[v], index[u]] = 1.0
    export = AdjacencyExport(nodes=nodes, index=index, hears=hears)
    setattr(graph, _CACHE_ATTR, (graph.version, export))
    return export
