"""Lightweight graph data structures.

The simulator's inner loop touches neighbour sets once per node per
time-slot, so the structures here are thin wrappers over
``dict[node, set[node]]`` with the validation the rest of the library
relies on (no self-loops, explicit errors for missing nodes/edges).

Two classes are provided:

* :class:`Graph` — undirected; the model of Section 1 of the paper.
* :class:`DiGraph` — directed; the asymmetric-link model the paper's
  Section 2.2 remark allows ("*v can transmit to u does not imply that
  u can transmit to v*").  ``neighbors_out(v)`` are the nodes that hear
  ``v``; ``neighbors_in(v)`` are the nodes ``v`` hears.

Both support edge addition/removal at any time, which is what the
dynamic-topology experiments (paper property 3) exercise mid-run.

Nodes may be any hashable object; the library conventionally uses
integers 0..n-1 (and the paper's ``C_n`` uses 0..n+1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import EdgeNotFound, GraphError, NodeNotFound

__all__ = ["Graph", "DiGraph"]

Node = Hashable


class Graph:
    """A simple undirected graph (no self-loops, no parallel edges).

    Neighbour sets are handed out as cached ``frozenset`` snapshots:
    repeated :meth:`neighbors` calls for an unchanged node return the
    *same* object, so the simulator's per-slot queries cost a dict
    lookup instead of a fresh allocation.  Every mutation invalidates
    the affected entries and bumps :attr:`version`, which lets callers
    holding derived structures (e.g. the engine's audibility map)
    detect staleness cheaply.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._nbr_cache: dict[Node, frozenset[Node]] = {}
        self._version = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation (cache fencing)."""
        return self._version

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node``; adding an existing node is a no-op."""
        if node not in self._adj:
            self._adj[node] = set()
            self._version += 1

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loop at {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises :class:`EdgeNotFound` if absent."""
        if not self.has_edge(u, v):
            raise EdgeNotFound(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise NodeNotFound(node)
        for neighbor in self._adj.pop(node):
            self._adj[neighbor].discard(node)
            self._nbr_cache.pop(neighbor, None)
        self._nbr_cache.pop(node, None)
        self._version += 1

    # -- queries ------------------------------------------------------

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> frozenset[Node]:
        """The neighbour set of ``node`` (a snapshot, safe to hold)."""
        cached = self._nbr_cache.get(node)
        if cached is not None:
            return cached
        try:
            snapshot = frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFound(node) from None
        self._nbr_cache[node] = snapshot
        return snapshot

    def degree(self, node: Node) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFound(node) from None

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    @property
    def edges(self) -> list[tuple[Node, Node]]:
        """Each undirected edge exactly once."""
        seen: set[frozenset[Node]] = set()
        result: list[tuple[Node, Node]] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def num_nodes(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def copy(self) -> "Graph":
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``keep`` (missing nodes are ignored)."""
        keep_set = {node for node in keep if node in self._adj}
        sub = Graph(nodes=keep_set)
        for u in keep_set:
            for v in self._adj[u] & keep_set:
                sub.add_edge(u, v)
        return sub

    def relabeled(self, mapping: dict[Node, Node]) -> "Graph":
        """A copy with nodes renamed through ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping must be injective")
        relabel = lambda x: mapping.get(x, x)  # noqa: E731 - tiny local helper
        out = Graph(nodes=(relabel(n) for n in self._adj))
        for u, v in self.edges:
            out.add_edge(relabel(u), relabel(v))
        return out

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph) or isinstance(other, DiGraph) != isinstance(self, DiGraph):
            return NotImplemented
        return self._adjacency_view() == other._adjacency_view()

    def _adjacency_view(self) -> dict[Node, frozenset[Node]]:
        return {node: frozenset(nbrs) for node, nbrs in self._adj.items()}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(|V|={self.num_nodes()}, |E|={self.num_edges()})"

    # -- radio-medium interface ---------------------------------------
    # The simulator only needs "who hears a transmission from v" and
    # "whom does v hear".  For undirected graphs both are neighbors().

    def hearers(self, v: Node) -> frozenset[Node]:
        """Nodes that receive energy when ``v`` transmits."""
        return self.neighbors(v)

    def audible(self, v: Node) -> frozenset[Node]:
        """Nodes whose transmissions ``v`` can hear."""
        return self.neighbors(v)


class DiGraph(Graph):
    """A simple directed graph for asymmetric radio links.

    Edge ``(u, v)`` means *u's transmissions reach v*.  The undirected
    API (``neighbors``/``degree``) is reinterpreted: ``neighbors`` is
    the out-neighbourhood; use :meth:`neighbors_in` for the nodes a
    processor hears.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        self._pred: dict[Node, set[Node]] = {}
        self._pred_cache: dict[Node, frozenset[Node]] = {}
        super().__init__(nodes, edges)

    def add_node(self, node: Node) -> None:
        super().add_node(node)
        self._pred.setdefault(node, set())

    def add_edge(self, u: Node, v: Node) -> None:
        if u == v:
            raise GraphError(f"self-loop at {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._pred[v].add(u)
        self._nbr_cache.pop(u, None)
        self._pred_cache.pop(v, None)
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise EdgeNotFound(u, v)
        self._adj[u].discard(v)
        self._pred[v].discard(u)
        self._nbr_cache.pop(u, None)
        self._pred_cache.pop(v, None)
        self._version += 1

    def remove_node(self, node: Node) -> None:
        if node not in self._adj:
            raise NodeNotFound(node)
        for succ in self._adj.pop(node):
            self._pred[succ].discard(node)
            self._pred_cache.pop(succ, None)
        for pred in self._pred.pop(node):
            self._adj[pred].discard(node)
            self._nbr_cache.pop(pred, None)
        self._nbr_cache.pop(node, None)
        self._pred_cache.pop(node, None)
        self._version += 1

    def neighbors_out(self, node: Node) -> frozenset[Node]:
        return self.neighbors(node)

    def neighbors_in(self, node: Node) -> frozenset[Node]:
        cached = self._pred_cache.get(node)
        if cached is not None:
            return cached
        try:
            snapshot = frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None
        self._pred_cache[node] = snapshot
        return snapshot

    def in_degree(self, node: Node) -> int:
        return len(self.neighbors_in(node))

    def out_degree(self, node: Node) -> int:
        return self.degree(node)

    @property
    def edges(self) -> list[tuple[Node, Node]]:
        return [(u, v) for u, nbrs in self._adj.items() for v in nbrs]

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values())

    def copy(self) -> "DiGraph":
        clone = DiGraph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        clone._pred = {node: set(nbrs) for node, nbrs in self._pred.items()}
        return clone

    def hearers(self, v: Node) -> frozenset[Node]:
        return self.neighbors_out(v)

    def audible(self, v: Node) -> frozenset[Node]:
        return self.neighbors_in(v)
