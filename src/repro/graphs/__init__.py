"""Graph substrate: data structures, topology generators, and properties.

The simulator in :mod:`repro.sim` runs on :class:`~repro.graphs.graph.Graph`
(undirected) or :class:`~repro.graphs.graph.DiGraph` (directed, for the
paper's asymmetric-link remark in Section 2.2).  The generators module
provides the paper's lower-bound families ``C_n`` / ``C*_n`` plus standard
test topologies.
"""

from repro.graphs.graph import DiGraph, Graph
from repro.graphs.generators import (
    barbell,
    c_n,
    c_star_n,
    complete,
    grid,
    hypercube,
    layered_random,
    line,
    random_gnp,
    random_tree,
    ring,
    star,
    unit_disk,
    watts_strogatz,
)
from repro.graphs.properties import (
    bfs_layers,
    degree_histogram,
    diameter,
    distances_from,
    eccentricity,
    is_connected,
    max_degree,
)

__all__ = [
    "Graph",
    "DiGraph",
    "barbell",
    "c_n",
    "c_star_n",
    "complete",
    "grid",
    "hypercube",
    "layered_random",
    "line",
    "random_gnp",
    "random_tree",
    "ring",
    "star",
    "unit_disk",
    "watts_strogatz",
    "bfs_layers",
    "degree_histogram",
    "diameter",
    "distances_from",
    "eccentricity",
    "is_connected",
    "max_degree",
]
