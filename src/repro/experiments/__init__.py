"""One module per reproduced result of the paper (see DESIGN.md §3).

========  =====================================================
module    paper claim
========  =====================================================
exp_decay       E1 — Theorem 1 (Decay reception probabilities)
exp_broadcast   E2/E3 — Lemmas 2–3 and Theorem 4 (broadcast time)
exp_hitting     E4 — Lemmas 9–10, Prop. 11, Theorem 12 (adversary)
exp_gap         E5 — Corollary 13 (the exponential gap)
exp_bfs         E6 — Section 2.3 BFS
exp_messages    E7 — property 2 (message complexity)
exp_coin_bias   E8 — Hofri [H87] coin-bias ablation
exp_dynamic     E9 — property 3 (fault resilience)
exp_cd          E10 — Section 4 collision-detection remark
exp_dfs         E11 — Section 3.4 DFS upper bound
exp_spontaneous E12 — Section 3.5 spontaneous wakeup / C*_n
========  =====================================================

Every module exposes a ``run_*`` function returning an
:class:`~repro.analysis.tables.Table` (plus sometimes a summary dict);
the files in ``benchmarks/`` call them and print the tables, and
EXPERIMENTS.md records the measured numbers against the paper's.
"""

from repro.experiments.runner import ExperimentConfig, repeat_runs, sweep

__all__ = ["ExperimentConfig", "repeat_runs", "sweep"]
