"""E6 — Section 2.3: Decay-based BFS.

Claims reproduced:

* with probability ≥ 1 − ε, **every** node's computed label equals its
  true distance from the root (we compare against a classical BFS);
* the slot count is ``2·D·⌈log Δ⌉·⌈log(N/ε)⌉`` (we check the run never
  exceeds the bound — the protocol is time-driven, so this is
  structural — and report the measured slots).
"""

from __future__ import annotations

from repro.analysis.stats import wilson_interval
from repro.analysis.tables import Table
from repro.core.bounds import bfs_slot_bound
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import grid, random_gnp, random_tree
from repro.graphs.properties import diameter, distances_from, max_degree
from repro.protocols.decay_bfs import run_bfs
from repro.rng import spawn

__all__ = ["run_bfs_table"]


def _bfs_workloads(config: ExperimentConfig):
    rng = spawn(config.master_seed, "bfs-workloads")
    workloads = [
        ("grid-6x6", grid(6, 6)),
        ("tree-48", random_tree(48, rng)),
        ("gnp-64", random_gnp(64, 0.08, rng)),
    ]
    if not config.quick:
        workloads += [
            ("grid-10x10", grid(10, 10)),
            ("tree-128", random_tree(128, rng)),
            ("gnp-128", random_gnp(128, 0.05, rng)),
        ]
    return workloads


def run_bfs_table(
    config: ExperimentConfig | None = None,
    *,
    epsilon: float = 0.1,
) -> Table:
    """All-labels-correct rate and slot counts per workload."""
    config = config or ExperimentConfig(reps=30)
    table = Table(
        f"E6 / Section 2.3 — Decay BFS (epsilon={epsilon})",
        [
            "workload",
            "n",
            "D",
            "runs",
            "all_correct_rate",
            "rate_lo95",
            "mean_slots",
            "slot_bound",
            "claim_holds",
        ],
    )
    for name, g in _bfs_workloads(config):
        truth = distances_from(g, 0)
        d = diameter(g)
        delta = max_degree(g)
        bound = bfs_slot_bound(g.num_nodes(), d, delta, epsilon)
        correct = 0
        slot_counts = []
        seeds = config.seeds("bfs", name)
        for seed in seeds:
            result = run_bfs(g, 0, seed=seed, epsilon=epsilon)
            labels = result.node_results()
            if all(labels[v] == truth[v] for v in g.nodes):
                correct += 1
            slot_counts.append(result.slots)
        rate = correct / len(seeds)
        lo, _hi = wilson_interval(correct, len(seeds))
        table.add_row(
            name,
            g.num_nodes(),
            d,
            len(seeds),
            rate,
            lo,
            sum(slot_counts) / len(slot_counts),
            bound,
            rate >= 1 - epsilon - 0.05,  # small Monte-Carlo slack
        )
    return table
