"""E10 — Section 4: collision detection changes everything on ``C_n``.

Claims reproduced:

* with collision detection, broadcast on every ``G_S ∈ C_n`` finishes
  in **4 time-slots** (2 when ``|S| = 1``), independent of ``n`` — the
  linear lower bound evaporates;
* (related work [C79, H78, TM79]) tree splitting resolves ``m``
  contenders on a single-hop CD channel in ``O(m + m·log(n/m))``
  contention slots — measured here with the explicit-feedback variant
  (2 engine slots per contention slot).
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import c_n, star
from repro.protocols.cd_protocols import (
    make_four_slot_cn_programs,
    make_tree_splitting_programs,
)
from repro.rng import spawn
from repro.sim.engine import Engine
from repro.sim.medium import CollisionDetectingMedium

__all__ = ["run_cd_cn_table", "run_tree_splitting_table"]


def run_cd_cn_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (4, 16, 64, 256, 1024),
) -> Table:
    """4-slot CD broadcast on ``C_n``, worst case over sampled S."""
    config = config or ExperimentConfig()
    if config.quick:
        sizes = sizes[:3]
    table = Table(
        "E10 / Section 4 — CD broadcast on C_n completes in <= 4 slots",
        ["n", "hidden_sets_tried", "worst_slots", "all_informed_always", "claim_holds"],
    )
    for n in sizes:
        rng = spawn(config.master_seed, "cd-hidden", n)
        hidden_sets = [frozenset({1}), frozenset({n}), frozenset(range(1, n + 1))]
        for _ in range(7):
            size = rng.randint(1, n)
            hidden_sets.append(frozenset(rng.sample(range(1, n + 1), size)))
        worst = 0
        always = True
        for s in hidden_sets:
            g = c_n(n, s)
            programs = make_four_slot_cn_programs(g, n)
            engine = Engine(
                g,
                programs,
                medium=CollisionDetectingMedium(),
                initiators={0},
                enforce_no_spontaneous=False,
            )
            result = engine.run(8)
            sink_informed = result.programs[n + 1].message is not None
            always = always and sink_informed
            completion = result.broadcast_completion_slot(source=0)
            worst = max(worst, (completion + 1) if completion is not None else 8)
        table.add_row(n, len(hidden_sets), worst, always, always and worst <= 4)
    return table


def run_tree_splitting_table(
    config: ExperimentConfig | None = None,
    *,
    n_leaves: int = 64,
    contender_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> Table:
    """Tree-splitting slots vs number of contenders on a CD star."""
    config = config or ExperimentConfig()
    if config.quick:
        contender_counts = (1, 4, 16)
    g = star(n_leaves)
    table = Table(
        f"E10b / related work — tree splitting on a CD star ({n_leaves} leaves)",
        ["contenders", "engine_slots", "contention_slots", "all_resolved"],
    )
    for m in contender_counts:
        rng = spawn(config.master_seed, "splitting", m)
        chosen = rng.sample(range(1, n_leaves + 1), m)
        contenders = {i: f"msg-{i}" for i in chosen}
        programs = make_tree_splitting_programs(g, 0, contenders)
        engine = Engine(
            g,
            programs,
            medium=CollisionDetectingMedium(),
            initiators=set(g.nodes),
            enforce_no_spontaneous=False,
        )
        result = engine.run(20 * n_leaves)
        resolved = sorted(result.programs[0].received_messages)
        table.add_row(
            m,
            result.slots,
            result.slots // 2,
            resolved == sorted(contenders.values()),
        )
    return table
