"""E11 — Section 3.4: the deterministic ``2n`` upper bound.

Claim: DFS token traversal broadcasts within ``2n`` time-slots on any
connected network (each DFS-tree edge traversed at most twice).  We
measure the completion slot on assorted topologies — including the
lower-bound family ``C_n`` itself, where DFS pins the gap from above:
``n/8 ≤ T(n) ≤ 2n``.

A companion table compares DFS with round-robin and a centralized
greedy schedule (the [CW87]-style construction of
:mod:`repro.core.schedule`) — the three deterministic regimes the
paper discusses: topology-oblivious token passing (Θ(n)), TDMA
(Θ(n·D)), and topology-*aware* scheduling (O(D·log²n), but requiring
central knowledge the radio model does not grant).
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.core.schedule import greedy_layer_schedule, sequential_tree_schedule
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import c_n, grid, line, random_gnp, random_tree
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter
from repro.protocols.base import run_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs
from repro.protocols.scheduled import make_scheduled_programs
from repro.rng import spawn

__all__ = ["run_dfs_table", "run_deterministic_comparison_table"]


def _dfs_workloads(config: ExperimentConfig) -> list[tuple[str, Graph]]:
    rng = spawn(config.master_seed, "dfs-workloads")
    workloads = [
        ("line-32", line(32)),
        ("grid-6x6", grid(6, 6)),
        ("tree-48", random_tree(48, rng)),
        ("gnp-64", random_gnp(64, 0.08, rng)),
        ("c_n-32", c_n(32, set(range(9, 20)))),
    ]
    if not config.quick:
        workloads += [
            ("grid-12x12", grid(12, 12)),
            ("gnp-200", random_gnp(200, 0.03, rng)),
            ("c_n-128", c_n(128, set(range(40, 90)))),
        ]
    return workloads


def run_dfs_table(config: ExperimentConfig | None = None) -> Table:
    """DFS completion slots vs the ``2n`` bound."""
    config = config or ExperimentConfig()
    table = Table(
        "E11 / Section 3.4 — DFS token broadcast completes within 2n slots",
        ["workload", "n", "completion_slot", "bound_2n", "claim_holds"],
    )
    for name, g in _dfs_workloads(config):
        n = g.num_nodes()
        programs = make_dfs_programs(g, 0)
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=4 * n, stop="informed"
        )
        slot = result.broadcast_completion_slot(source=0)
        table.add_row(
            name,
            n,
            slot if slot is not None else -1,
            2 * n,
            slot is not None and slot <= 2 * n,
        )
    return table


def run_deterministic_comparison_table(
    config: ExperimentConfig | None = None,
) -> Table:
    """Three deterministic regimes side by side (completion slots)."""
    config = config or ExperimentConfig()
    table = Table(
        "E11b — deterministic regimes: DFS vs TDMA vs centralized greedy schedule",
        ["workload", "n", "D", "dfs", "round_robin", "greedy_schedule", "tree_schedule"],
    )
    for name, g in _dfs_workloads(config):
        if not all(isinstance(node, int) for node in g.nodes):
            continue
        n = g.num_nodes()
        d = diameter(g)
        dfs_programs = make_dfs_programs(g, 0)
        dfs = run_broadcast(
            g, dfs_programs, initiators={0}, max_slots=4 * n, stop="informed"
        ).broadcast_completion_slot(source=0)
        frame = max(g.nodes) + 1
        rr_programs = make_round_robin_programs(g, 0, frame_size=frame)
        rr = run_broadcast(
            g, rr_programs, initiators={0}, max_slots=frame * (d + 2), stop="informed"
        ).broadcast_completion_slot(source=0)
        rng = spawn(config.master_seed, "greedy", name)
        greedy = greedy_layer_schedule(g, 0, rng=rng)
        greedy_programs = make_scheduled_programs(g, 0, greedy)
        greedy_slot = run_broadcast(
            g, greedy_programs, initiators={0}, max_slots=len(greedy) + 1, stop="informed"
        ).broadcast_completion_slot(source=0)
        tree_len = len(sequential_tree_schedule(g, 0))
        table.add_row(
            name,
            n,
            d,
            dfs if dfs is not None else -1,
            rr if rr is not None else -1,
            greedy_slot if greedy_slot is not None else -1,
            tree_len,
        )
    return table
