"""E4d — Theorem 12 verified exhaustively on the real engine.

Unlike E4 (which works in the abstract game model), this experiment
enumerates *every* hidden set ``S`` at small ``n`` and runs the
library's deterministic protocols on the actual radio engine over every
``G_S ∈ C_n``, reporting the exact worst case — no sampling, no
reduction.  Theorem 12 predicts worst ≥ n/8 slots; the randomized
column shows Decay's mean over seeds on the deterministic protocols'
worst instances.
"""

from __future__ import annotations

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import c_n
from repro.lowerbound.bruteforce import exhaustive_cn_worst_case
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs

__all__ = ["run_exhaustive_table"]


def run_exhaustive_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (6, 8, 10, 12),
    epsilon: float = 0.1,
) -> Table:
    """Exhaustive worst cases over all ``2^n − 1`` hidden sets."""
    config = config or ExperimentConfig(reps=10)
    if config.quick:
        sizes = sizes[:2]
    table = Table(
        "E4d / Theorem 12, exhaustively — worst case over ALL hidden sets S",
        [
            "protocol",
            "n",
            "instances",
            "worst_slots",
            "worst_set_size",
            "n_over_8",
            "thm12_holds",
            "rand_mean_on_worst_set",
        ],
    )
    protocols = {
        "dfs": lambda g: make_dfs_programs(g, 0),
        "round-robin": lambda g, n=0: make_round_robin_programs(
            g, 0, frame_size=g.num_nodes()
        ),
    }
    for name, factory in protocols.items():
        for n in sizes:
            wc = exhaustive_cn_worst_case(factory, n)
            g = c_n(n, wc.worst_set)
            rand = []
            for seed in config.seeds("exhaustive", name, n):
                result = run_decay_broadcast(g, source=0, seed=seed, epsilon=epsilon)
                slot = result.broadcast_completion_slot(source=0)
                if slot is not None:
                    rand.append(slot)
            table.add_row(
                name,
                n,
                wc.instances,
                wc.worst_slots,
                len(wc.worst_set),
                n / 8,
                wc.satisfies_theorem12(),
                mean(rand) if rand else float("nan"),
            )
    return table
