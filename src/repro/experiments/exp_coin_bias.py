"""E8 — ablation: the Decay coin bias (Hofri [H87]).

The paper sets the per-slot continue probability to 1/2 and notes that
"an analysis of the merits of using other probabilities was carried out
by Hofri".  This experiment sweeps the bias and reports

* the single-receiver reception probability ``P(k, d)`` (exact DP) at
  the paper's window ``k = 2⌈log d⌉`` — the quantity Hofri optimises;
* end-to-end broadcast completion slots with the biased Decay.

Expected shape: a broad optimum around p ≈ 0.5–0.6 for moderate ``d``;
extremes degrade sharply (p → 0: everyone drops out after one slot and
collides in it; p → 1: flooding — everyone keeps colliding for the
whole window).  The ``align_phases`` ablation (design decision 2 in
DESIGN.md) rides along in :func:`run_alignment_table`.
"""

from __future__ import annotations

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.core.bounds import decay_phase_length, p_exact
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import random_gnp
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import spawn

__all__ = ["run_coin_bias_table", "run_alignment_table"]

DEFAULT_BIASES = (0.1, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9)


def run_coin_bias_table(
    config: ExperimentConfig | None = None,
    *,
    biases: tuple[float, ...] = DEFAULT_BIASES,
    d: int = 16,
    n: int = 96,
    epsilon: float = 0.1,
) -> Table:
    """P(k, d) and broadcast time as a function of the coin bias."""
    config = config or ExperimentConfig(reps=15)
    if config.quick:
        biases = (0.3, 0.5, 0.7)
    k = decay_phase_length(d)
    rng = spawn(config.master_seed, "bias-topology", n)
    g = random_gnp(n, min(1.0, 8.0 / n), rng)
    table = Table(
        f"E8 / [H87] — coin bias ablation (d={d}, k={k}, n={g.num_nodes()})",
        ["p_continue", "P_k_d", "bcast_mean_slots", "bcast_success_rate"],
    )
    for p in biases:
        reception = p_exact(k, d, p_continue=p)
        slots = []
        successes = 0
        seeds = config.seeds("bias", p)
        for seed in seeds:
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, p_continue=p
            )
            slot = result.broadcast_completion_slot(source=0)
            if slot is not None:
                successes += 1
                slots.append(slot)
        table.add_row(
            p,
            reception,
            mean(slots) if slots else float("nan"),
            successes / len(seeds),
        )
    return table


def run_alignment_table(
    config: ExperimentConfig | None = None,
    *,
    n: int = 96,
    epsilon: float = 0.1,
) -> Table:
    """Ablation of design decision 2: phase-aligned vs free-running Decay."""
    config = config or ExperimentConfig(reps=20)
    rng = spawn(config.master_seed, "align-topology", n)
    g = random_gnp(n, min(1.0, 8.0 / n), rng)
    table = Table(
        f"E8b — Decay phase alignment ablation (n={g.num_nodes()})",
        ["variant", "mean_slots", "success_rate"],
    )
    for variant, aligned in (("aligned (paper)", True), ("free-running", False)):
        slots = []
        successes = 0
        seeds = config.seeds("align", variant)
        for seed in seeds:
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, align_phases=aligned
            )
            slot = result.broadcast_completion_slot(source=0)
            if slot is not None:
                successes += 1
                slots.append(slot)
        table.add_row(
            variant,
            mean(slots) if slots else float("nan"),
            successes / len(seeds),
        )
    return table
