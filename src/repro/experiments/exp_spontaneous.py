"""E12 — Section 3.5: spontaneous transmissions and ``C*_n``.

Two sides of the paper's extension:

1. **The 3-round trick on C_n.**  If spontaneous transmissions are
   allowed, ``C_n`` is easy deterministically: round 0 the source
   transmits; round 1 the sink spontaneously transmits the smallest ID
   among its neighbours; round 2 that processor transmits and the sink
   receives.  We implement and verify it (3 slots, every ``S``).

2. **``C*_n`` restores the lower bound.**  On ``G_{S,R}`` the sinks'
   identities are themselves unknown, so the trick dies: the E12 table
   shows the deterministic baselines are back to Θ(n) on ``C*_n``
   (worst case over sampled ``S, R``) while randomized Decay broadcast
   stays polylogarithmic — the gap is robust to the spontaneity
   relaxation exactly as Section 3.5 argues.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import c_n, c_star_n
from repro.protocols.base import run_broadcast
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.protocols.round_robin import make_round_robin_programs
from repro.rng import spawn
from repro.sim.engine import Engine
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["ThreeRoundCnProgram", "run_three_round_table", "run_c_star_table"]

Node = Hashable


class ThreeRoundCnProgram(NodeProgram):
    """The Section 3.5 three-round protocol on ``C_n`` (needs spontaneity).

    Roles as in :mod:`repro.protocols.cd_protocols`; slot 1's sink
    transmission is *spontaneous* (the sink has received nothing yet),
    which is exactly what rule 5 forbids — the point of the paper's
    extension.
    """

    def __init__(self, role: str, *, message: Any = "m") -> None:
        self.role = role
        self.message: Any = message if role == "source" else None
        self._designated: Node | None = None

    def act(self, ctx: Context) -> Intent:
        slot = ctx.slot
        if self.role == "source":
            return Transmit(self.message) if slot == 0 else Idle()
        if self.role == "sink":
            if slot == 1:
                return Transmit(("designate", min(ctx.neighbor_ids)))
            return Receive() if slot in (0, 2) else Idle()
        # second layer
        if slot == 0:
            return Receive()
        if slot == 1:
            return Receive()
        if slot == 2 and self._designated == ctx.node and self.message is not None:
            return Transmit(self.message)
        return Idle()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if isinstance(heard, tuple) and heard and heard[0] == "designate":
            self._designated = heard[1]
            return
        if self.message is None:
            self.message = heard

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= 3

    def result(self) -> dict[str, Any]:
        return {"informed": self.message is not None}


def run_three_round_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (4, 16, 64, 256),
) -> Table:
    """Verify the 3-slot spontaneous protocol on ``C_n`` for sampled S."""
    config = config or ExperimentConfig()
    if config.quick:
        sizes = sizes[:2]
    table = Table(
        "E12a / Section 3.5 — 3-slot spontaneous broadcast on C_n",
        ["n", "hidden_sets", "worst_slots", "always_informed"],
    )
    for n in sizes:
        rng = spawn(config.master_seed, "threeround", n)
        hidden_sets = [frozenset({1}), frozenset(range(1, n + 1))]
        for _ in range(6):
            size = rng.randint(1, n)
            hidden_sets.append(frozenset(rng.sample(range(1, n + 1), size)))
        worst = 0
        always = True
        for s in hidden_sets:
            g = c_n(n, s)
            sink = n + 1
            programs: dict[Node, ThreeRoundCnProgram] = {}
            for node in g.nodes:
                role = "source" if node == 0 else "sink" if node == sink else "layer"
                programs[node] = ThreeRoundCnProgram(role)
            engine = Engine(
                g,
                programs,
                initiators={0, sink},
                enforce_no_spontaneous=False,
            )
            result = engine.run(6)
            informed = result.programs[sink].message is not None
            always = always and informed
            completion = result.broadcast_completion_slot(source=0)
            worst = max(worst, (completion + 1) if completion is not None else 6)
        table.add_row(n, len(hidden_sets), worst, always)
    return table


def _reachable_targets(g) -> list:
    """The broadcast targets of a ``C*_n`` instance: every non-source
    node with at least one link.  Sinks outside ``R`` are isolated by
    construction (the paper only requires reaching the *connected*
    sinks — "broadcast is completed once a message is received through
    any of the links in E2"; we measure the stricter all-connected-
    sinks time)."""
    return [v for v in g.nodes if v != 0 and g.degree(v) > 0]


def _c_star_completion(result, g) -> int | None:
    """Completion slot over the reachable targets only."""
    times = []
    for node in _reachable_targets(g):
        if node not in result.metrics.first_reception:
            return None
        times.append(result.metrics.first_reception[node])
    return max(times) if times else 0


def _sinks_reached(engine, g) -> bool:
    return all(
        node in engine.metrics.first_reception for node in _reachable_targets(g)
    )


def run_c_star_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    epsilon: float = 0.1,
) -> Table:
    """On ``C*_n`` the deterministic cost is linear again; Decay is not."""
    config = config or ExperimentConfig(reps=10)
    if config.quick:
        sizes = sizes[:2]
    table = Table(
        f"E12b / Section 3.5 — C*_n: TDMA worst case vs Decay (epsilon={epsilon})",
        ["n", "nodes", "det_round_robin_worst", "rand_mean", "gap"],
    )
    for n in sizes:
        rng = spawn(config.master_seed, "cstar", n)
        # The worst case lives at late-slot singletons (the TDMA frame
        # must sweep all the way to min(S)); sample those plus random.
        instances = [
            (frozenset({n}), frozenset({2 * n})),
            (frozenset({n}), frozenset(range(n + 1, 2 * n + 1))),
        ]
        for _ in range(4):
            s = frozenset(rng.sample(range(1, n + 1), rng.randint(1, n)))
            r = frozenset(rng.sample(range(n + 1, 2 * n + 1), rng.randint(1, n)))
            instances.append((s, r))
        frame = 2 * n + 1
        det_worst = 0
        for s, r in instances:
            g = c_star_n(n, s, r)
            programs = make_round_robin_programs(g, 0, frame_size=frame)
            result = run_broadcast(
                g,
                programs,
                initiators={0},
                max_slots=frame * 8,
                extra_stop=lambda engine, g=g: _sinks_reached(engine, g),
                stop="informed",
            )
            slot = _c_star_completion(result, g)
            det_worst = max(det_worst, slot if slot is not None else frame * 8)
        rand_slots = []
        for i, seed in enumerate(config.seeds("cstar-rand", n)):
            s, r = instances[i % len(instances)]
            g = c_star_n(n, s, r)
            result = run_decay_broadcast(g, source=0, seed=seed, epsilon=epsilon)
            slot = _c_star_completion(result, g)
            if slot is not None:
                rand_slots.append(slot)
        rand_mean = mean(rand_slots) if rand_slots else float("nan")
        table.add_row(
            n,
            2 * n + 1,
            det_worst,
            rand_mean,
            det_worst / rand_mean if rand_slots else float("nan"),
        )
    return table
