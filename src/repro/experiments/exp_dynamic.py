"""E9 — paper property 3: adaptiveness to topology changes.

Claim: "*edges may be added or deleted at any time, provided that the
network of unchanged edges remains connected*" — i.e. the protocol is
resilient to fail/stop edge faults because it never relies on IDs,
neighbour counts, or acknowledged links.

Setup: a G(n, p) graph with a protected random spanning tree (found by
BFS); every non-tree edge is killed at a random slot during the run
with probability ``kill_fraction``.  We measure the broadcast success
rate with and without the fault schedule — the claim is that the rate
stays ≥ 1 − ε − (Monte-Carlo slack) under faults.

A control arm kills *tree* edges too (violating the proviso), which is
expected to break broadcast — showing the proviso is load-bearing,
not decorative.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.core.bounds import theorem4_slot_bound
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import random_gnp
from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_layers, diameter, max_degree
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import spawn
from repro.sim.faults import (
    CrashFault,
    EdgeFault,
    FaultSchedule,
    JamFault,
    LinkLossFault,
    random_edge_kill_schedule,
)

__all__ = [
    "run_dynamic_table",
    "run_mobility_table",
    "run_transient_fault_table",
    "spanning_tree",
]


def spanning_tree(g: Graph, root) -> Graph:
    """A BFS spanning tree of ``g`` rooted at ``root``."""
    tree = Graph(nodes=g.nodes)
    layers = bfs_layers(g, root)
    placed = {root}
    for layer in layers[1:]:
        for node in layer:
            parent = next(p for p in g.neighbors(node) if p in placed)
            tree.add_edge(node, parent)
            placed.add(node)
    return tree


def run_dynamic_table(
    config: ExperimentConfig | None = None,
    *,
    n: int = 96,
    epsilon: float = 0.1,
    kill_fractions: tuple[float, ...] = (0.0, 0.3, 0.7, 1.0),
) -> Table:
    """Success rate under fail/stop edge faults."""
    config = config or ExperimentConfig(reps=30)
    if config.quick:
        kill_fractions = (0.0, 0.7)
    rng = spawn(config.master_seed, "dynamic-topology", n)
    g = random_gnp(n, min(1.0, 10.0 / n), rng)
    tree = spanning_tree(g, 0)
    d = diameter(g)
    delta = max_degree(g)
    horizon = theorem4_slot_bound(n, d, delta, epsilon)
    table = Table(
        f"E9 / property 3 — broadcast under edge faults (n={g.num_nodes()}, epsilon={epsilon})",
        ["arm", "kill_fraction", "runs", "success_rate", "claim_holds"],
    )
    for frac in kill_fractions:
        successes = 0
        seeds = config.seeds("dynamic", frac)
        for seed in seeds:
            fault_rng = spawn(seed, "faults")
            schedule = random_edge_kill_schedule(g, tree, frac, horizon, fault_rng)
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, faults=schedule
            )
            if result.broadcast_succeeded(source=0):
                successes += 1
        rate = successes / len(seeds)
        table.add_row("protected-tree", frac, len(seeds), rate, rate >= 1 - epsilon - 0.1)
    # Control: violate the proviso by killing tree edges early on.
    successes = 0
    seeds = config.seeds("dynamic-control")
    for seed in seeds:
        fault_rng = spawn(seed, "faults-control")
        cut = [
            EdgeFault(slot=1, u=u, v=v)
            for u, v in tree.edges
            if fault_rng.random() < 0.5
        ]
        result = run_decay_broadcast(
            g,
            source=0,
            seed=seed,
            epsilon=epsilon,
            faults=FaultSchedule(edge_faults=cut + _all_nontree_cuts(g, tree)),
        )
        if result.broadcast_succeeded(source=0):
            successes += 1
    rate = successes / len(seeds)
    # Expected to fail: record that the proviso matters.
    table.add_row("cut-tree (control)", "~0.5 of tree", len(seeds), rate, rate < 0.5)
    return table


def run_mobility_table(
    config: ExperimentConfig | None = None,
    *,
    n: int = 48,
    radius: float = 0.42,
    epsilon: float = 0.05,
    speeds: tuple[float, ...] = (0.0, 0.005, 0.02, 0.05),
) -> Table:
    """E9b — node mobility as the source of topology churn.

    Unit-disk sensors move under random waypoints; link churn is
    compiled into an edge-fault schedule (``repro.sim.mobility``).  A
    spanning tree of the initial graph is kept protected, realising the
    paper's connectivity proviso; the claim is that broadcast success
    is speed-independent under the proviso.
    """
    from repro.graphs.generators import unit_disk
    from repro.sim.mobility import RandomWaypointModel, mobility_fault_schedule

    config = config or ExperimentConfig(reps=20)
    if config.quick:
        speeds = speeds[:3]
    table = Table(
        f"E9b / property 3 — broadcast over mobile unit-disk networks (n={n})",
        ["speed_per_slot", "runs", "success_rate", "mean_edge_events", "claim_holds"],
    )
    for speed in speeds:
        successes = 0
        event_counts = []
        seeds = config.seeds("mobility", speed)
        for seed in seeds:
            g = unit_disk(n, radius, spawn(seed, "field"))
            tree = spanning_tree(g, 0)
            protected = {frozenset(e) for e in tree.edges}
            if speed > 0:
                model = RandomWaypointModel(
                    dict(g.positions), spawn(seed, "waypoints"), speed=speed
                )
                schedule = mobility_fault_schedule(
                    model, radius, horizon=600, resample_every=8, protected=protected
                )
            else:
                schedule = None
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, faults=schedule
            )
            if result.broadcast_succeeded(source=0):
                successes += 1
            event_counts.append(
                len(schedule.edge_faults) if schedule is not None else 0
            )
        rate = successes / len(seeds)
        table.add_row(
            speed,
            len(seeds),
            rate,
            sum(event_counts) / len(event_counts),
            rate >= 1 - epsilon - 0.1,
        )
    return table


def run_transient_fault_table(
    config: ExperimentConfig | None = None,
    *,
    n: int = 64,
    epsilon: float = 0.1,
) -> Table:
    """E9c — beyond the paper's fault model: crash–recover, loss, jamming.

    Property 3 only promises resilience to edge changes; real radio
    deployments also see nodes reboot (transient crash–recover), lossy
    receptions, and hostile interference.  Each arm applies one fault
    family (then all at once) and measures the broadcast success rate;
    the Decay protocol's redundancy — every informed node re-offers the
    message for ``t`` phases — is what absorbs the extra adversity, so
    success under mild non-proviso faults is an *empirical* robustness
    observation, not a theorem.  The :mod:`repro.chaos` harness runs
    the same fault families as randomized campaigns.
    """
    config = config or ExperimentConfig(reps=30)
    rng = spawn(config.master_seed, "transient-topology", n)
    g = random_gnp(n, min(1.0, 10.0 / n), rng)
    d = diameter(g)
    delta = max_degree(g)
    horizon = theorem4_slot_bound(n, d, delta, epsilon)
    phase_length = 2 * max(1, (delta - 1).bit_length())
    arms: list[tuple[str, str]] = [
        ("none (baseline)", "none"),
        ("crash-recover 15% of nodes", "crash"),
        ("5% per-reception loss", "loss"),
        ("one jammer, 2 phases", "jam"),
        ("all of the above", "all"),
    ]
    if config.quick:
        arms = [arms[0], arms[-1]]
    table = Table(
        f"E9c — broadcast under transient node/link faults (n={g.num_nodes()}, "
        f"epsilon={epsilon})",
        ["faults", "runs", "success_rate", "mean_slots", "claim_holds"],
    )
    for label, kind in arms:
        successes = 0
        slots = []
        seeds = config.seeds("transient", kind)
        for seed in seeds:
            schedule = _transient_schedule(
                g, kind, seed, horizon=horizon, phase_length=phase_length
            )
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, faults=schedule
            )
            if result.broadcast_succeeded(source=0):
                successes += 1
            slots.append(result.slots)
        rate = successes / len(seeds)
        table.add_row(
            label,
            len(seeds),
            rate,
            sum(slots) / len(slots),
            rate >= 1 - epsilon - 0.1,
        )
    return table


def _transient_schedule(
    g: Graph, kind: str, seed: int, *, horizon: int, phase_length: int
) -> FaultSchedule:
    rng = spawn(seed, "transient-faults", kind)
    schedule = FaultSchedule()
    nodes = sorted(node for node in g.nodes if node != 0)
    if kind in ("crash", "all"):
        outage = 2 * phase_length
        for node in rng.sample(nodes, max(1, round(0.15 * len(nodes)))):
            start = rng.randrange(1, max(2, horizon // 2))
            schedule.crash_faults.append(
                CrashFault(slot=start, node=node, until=start + outage)
            )
    if kind in ("loss", "all"):
        schedule.link_loss_faults.append(LinkLossFault(p=0.05))
    if kind in ("jam", "all"):
        jammer = rng.choice(nodes)
        start = rng.randrange(0, max(1, horizon // 2))
        schedule.jam_faults.append(
            JamFault(node=jammer, start=start, end=start + 2 * phase_length)
        )
    return schedule


def _all_nontree_cuts(g: Graph, tree: Graph) -> list[EdgeFault]:
    protected = {frozenset(e) for e in tree.edges}
    return [
        EdgeFault(slot=1, u=u, v=v)
        for u, v in g.edges
        if frozenset((u, v)) not in protected
    ]
