"""E1 — Theorem 1: the Decay reception probabilities.

Paper claims, for ``d ≥ 2`` contenders and the shared receiver:

(i)  ``lim_{k→∞} P(k, d) ≥ 2/3``;
(ii) ``P(k, d) > 1/2`` for ``k ≥ 2 log d`` (equality at d = 2).

Three independent estimates are compared per ``d``:

* the exact dynamic program :func:`repro.core.bounds.p_exact`;
* Monte-Carlo over the fast Markov simulation
  (:func:`repro.core.decay.simulate_decay_game`);
* Monte-Carlo over the *full engine*: ``d`` leaf transmitters of a
  star graph running real :class:`~repro.core.decay.DecayProcess`
  machines toward the hub — this validates that the engine's medium
  semantics and the analysis talk about the same protocol.

The limit claim (i) is checked against :func:`p_infinity`'s recurrence
and a long-horizon ``p_exact``.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.stats import wilson_interval
from repro.analysis.tables import Table
from repro.core.bounds import decay_phase_length, p_exact, p_infinity
from repro.core.decay import DecayProcess, simulate_decay_game
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import star
from repro.parallel import parallel_map
from repro.rng import spawn
from repro.sim.engine import Engine
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit

__all__ = ["run_theorem1_table", "engine_decay_game", "DEFAULT_DS"]

DEFAULT_DS = (2, 3, 4, 6, 8, 16, 32, 64, 128, 256)
QUICK_DS = (2, 4, 8, 32)


class _DecayLeaf(NodeProgram):
    """A star leaf running one Decay(k) execution from slot 0."""

    def __init__(self, k: int, p_continue: float = 0.5) -> None:
        self.k = k
        self.p_continue = p_continue
        self._decay: DecayProcess | None = None

    def act(self, ctx: Context) -> Intent:
        if ctx.slot >= self.k:
            return Idle()
        if self._decay is None:
            self._decay = DecayProcess(self.k, "m", ctx.rng, p_continue=self.p_continue)
        return Transmit("m") if self._decay.wants_transmit() else Idle()

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= self.k


class _Hub(NodeProgram):
    """The star hub: listens for the whole window."""

    def __init__(self, k: int) -> None:
        self.k = k

    def act(self, ctx: Context) -> Intent:
        return Receive() if ctx.slot < self.k else Idle()

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= self.k


def _markov_decay_hit(d: int, k: int, seed: int) -> bool:
    """One fast-Markov Theorem-1 game; True iff some slot had a sole
    transmitter.  Module-level (picklable) so repetitions can fan out
    to the process pool."""
    rng = spawn(seed, "decay-game")
    return simulate_decay_game(d, k, rng) is not None


def engine_decay_game(d: int, k: int, seed: int, *, p_continue: float = 0.5) -> bool:
    """One full-engine Theorem-1 game; True iff the hub received."""
    g = star(d)
    programs: dict = {0: _Hub(k)}
    for leaf in range(1, d + 1):
        programs[leaf] = _DecayLeaf(k, p_continue)
    engine = Engine(
        g,
        programs,
        seed=seed,
        initiators=frozenset(range(1, d + 1)),  # contenders already hold a message
    )
    result = engine.run(k)
    return 0 in result.metrics.first_reception


def run_theorem1_table(config: ExperimentConfig | None = None) -> Table:
    """Reproduce Theorem 1 as a table over ``d``."""
    config = config or ExperimentConfig(reps=400)
    ds = QUICK_DS if config.quick else DEFAULT_DS
    table = Table(
        "E1 / Theorem 1 — P(k, d) at k = 2*ceil(log d)",
        [
            "d",
            "k",
            "P_exact",
            "mc_markov",
            "mc_engine",
            "mc_lo",
            "mc_hi",
            "P_inf_exact",
            "claim_ii_holds",
            "claim_i_holds",
        ],
    )
    jobs = config.effective_jobs()
    for d in ds:
        k = decay_phase_length(d)
        exact = p_exact(k, d)
        markov_hits = sum(
            parallel_map(
                partial(_markov_decay_hit, d, k), config.seeds("markov", d), jobs=jobs
            )
        )
        engine_reps = max(60, config.reps // 2)  # engine runs are pricier but need signal
        engine_seeds = config.seeds("engine", d)[:engine_reps]
        engine_hits = sum(
            parallel_map(partial(engine_decay_game, d, k), engine_seeds, jobs=jobs)
        )
        lo, hi = wilson_interval(markov_hits, config.reps)
        p_inf = p_infinity(d)
        table.add_row(
            d,
            k,
            exact,
            markov_hits / config.reps,
            engine_hits / len(engine_seeds),
            lo,
            hi,
            p_inf,
            exact >= 0.5 - 1e-12,
            p_inf >= 2 / 3 - 1e-12,
        )
    return table
