"""Assemble a reproduction report from saved benchmark results.

``REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only`` writes
every experiment's rendered table under ``benchmarks/results/``;
:func:`build_report` stitches them into one markdown document (with the
experiment-to-claim mapping from DESIGN.md §3), and
``python -m repro report`` prints or writes it.  This keeps
EXPERIMENTS.md's raw-number appendix regenerable from scratch.
"""

from __future__ import annotations

import logging
import pathlib
from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["ReportSection", "discover_results", "build_report"]

logger = logging.getLogger("repro.experiments.report")

#: Display order and one-line claim per result file stem.
CLAIMS: dict[str, str] = {
    "e1_decay": "Theorem 1 — Decay reception probabilities",
    "e2_broadcast_time": "Theorem 4 — broadcast completion vs the slot bound",
    "e2b_diameter_scaling": "Theorem 4 — time linear in D at fixed conflict density",
    "e2c_upper_bound_sensitivity": "Sec. 1.1 — polynomial upper bound N costs only a constant",
    "e3_success_rate": "Lemma 2 — success probability >= 1 - eps",
    "e4_adversary": "Lemmas 9-10 / Prop. 11 — find_set stalls every strategy n/2 moves",
    "e4b_protocol_lower_bound": "Theorem 12 via Lemma 7 — protocols stalled >= n/4 rounds",
    "e4c_upper_bounds": "Sec. 3.4 — matching O(n) upper bounds",
    "e4d_exhaustive": "Theorem 12 — exhaustive over all hidden sets (engine level)",
    "e5_gap": "Corollary 13 — the exponential gap (headline)",
    "e6_bfs": "Sec. 2.3 — Decay BFS labels correct w.p. >= 1 - eps",
    "e7_messages": "Property 2 — expected transmissions <= 2n * phases",
    "e8_coin_bias": "[H87] — coin-bias ablation",
    "e8b_alignment": "Design decision 2 — phase alignment ablation",
    "e9_dynamic": "Property 3 — resilience to fail/stop edge faults",
    "e9b_mobility": "Property 3 — resilience under random-waypoint mobility",
    "e10_cd_cn": "Sec. 4 — 4-slot C_n broadcast with collision detection",
    "e10b_tree_splitting": "Related work — tree splitting on a CD channel",
    "e11_dfs": "Sec. 3.4 — DFS token broadcast within 2n slots",
    "e11b_deterministic_comparison": "Deterministic regimes: DFS vs TDMA vs schedules",
    "e12a_three_round": "Sec. 3.5 — 3-slot spontaneous protocol on C_n",
    "e12b_c_star": "Sec. 3.5 — C*_n restores the linear bound",
    "ext_leader_election": "Extension — Decay leader election ([BGI89])",
    "ext_multi_broadcast": "Extension — pipelined multi-message broadcast ([BII89])",
    "ext_routing": "Extension — point-to-point routing ([BII89])",
    "ext_emulation": "Extension — single-hop-CD emulation ([BGI89])",
    "ext_schedule_quality": "Extension — centralized schedule quality ([CW87])",
    "bench_parallel": "Harness — process-pool backend: serial-identical, speedup",
}


@dataclass(frozen=True)
class ReportSection:
    """One experiment's contribution to the report."""

    name: str
    claim: str
    body: str


def discover_results(results_dir: pathlib.Path | str) -> list[ReportSection]:
    """Load every known result file present in ``results_dir``, in
    canonical order; unknown files are appended alphabetically."""
    directory = pathlib.Path(results_dir)
    if not directory.is_dir():
        raise ExperimentError(f"no results directory at {directory}")
    present = {p.stem: p for p in sorted(directory.glob("*.txt"))}
    sections: list[ReportSection] = []
    for stem, claim in CLAIMS.items():
        if stem in present:
            sections.append(
                ReportSection(stem, claim, present.pop(stem).read_text().rstrip())
            )
    for stem, path in sorted(present.items()):
        logger.warning("result file %s has no claim mapping; appending as-is", path.name)
        sections.append(ReportSection(stem, "(unmapped result)", path.read_text().rstrip()))
    logger.info("discovered %d result tables in %s", len(sections), directory)
    return sections


def build_report(results_dir: pathlib.Path | str, *, title: str | None = None) -> str:
    """The full markdown report as a string."""
    sections = discover_results(results_dir)
    if not sections:
        raise ExperimentError("no result tables found; run the benchmarks first")
    lines = [
        title or "# Reproduction report — BGI (PODC 1987)",
        "",
        f"{len(sections)} experiment tables collected from `benchmarks/results/`.",
        "Regenerate with `REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for section in sections:
        lines.append(f"## {section.name} — {section.claim}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
