"""E2/E3 — Lemmas 2–3 and Theorem 4: randomized broadcast time.

Claims reproduced:

* **Lemma 2 / E3** — executing Broadcast_scheme with parameter ε, all
  nodes receive the message with probability ≥ 1 − ε (we measure the
  failure rate and compare to ε).
* **Theorem 4 / E2** — with probability ≥ 1 − 2ε, completion happens
  within ``2⌈log Δ⌉·T(ε)`` slots, and overall the protocol is
  ``O((D + log n/ε)·log n)``: we record completion-slot statistics on
  families with controlled diameter and check (a) the bound is
  respected at the stated probability and (b) growth is linear in D
  and logarithmic in n (shape, not constants).

Workloads: line graphs (diameter-dominated), layered random graphs
(depth and conflict density controlled separately), G(n, p) (small
diameter, conflict-dominated) and unit-disk graphs (the wireless
motivation from the paper's introduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial

from repro.analysis.stats import summarize, wilson_interval
from repro.analysis.tables import Table
from repro.core.bounds import theorem4_slot_bound
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import layered_random, line, random_gnp, unit_disk
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter, max_degree
from repro.parallel import parallel_map
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import spawn

__all__ = [
    "run_broadcast_time_table",
    "run_success_rate_table",
    "run_diameter_scaling_table",
    "run_upper_bound_sensitivity_table",
    "broadcast_family",
]


@dataclass(frozen=True)
class _Workload:
    name: str
    graph: Graph
    diameter: int
    max_degree: int


def broadcast_family(name: str, n: int, seed: int) -> Graph:
    """One graph of the named family at size ``n`` (seeded)."""
    rng = spawn(seed, "topology", name, n)
    if name == "line":
        return line(n)
    if name == "gnp":
        return random_gnp(n, min(1.0, 4.0 / n * max(1, n.bit_length() / 2)), rng)
    if name == "udg":
        import math

        radius = 1.8 * math.sqrt(math.log(max(2, n)) / n)
        return unit_disk(n, radius, rng)
    if name == "layered":
        width = max(2, n // 8)
        depth = max(2, n // width)
        sizes = [width] * depth
        return layered_random(sizes, 0.5, rng)
    if name == "smallworld":
        from repro.graphs.generators import watts_strogatz

        return watts_strogatz(max(5, n), 4, 0.2, rng)
    raise ValueError(f"unknown family {name!r}")


def _completion_once(
    g: Graph, epsilon: float, max_slots: int | None, seed: int
) -> int | None:
    """One seeded broadcast; completion slot or None.  Module-level so
    a ``partial`` over the (picklable) graph can cross process
    boundaries; only the small slot number travels back."""
    result = run_decay_broadcast(
        g, source=0, seed=seed, epsilon=epsilon, max_slots=max_slots
    )
    return result.broadcast_completion_slot(source=0)


def _measure(
    g: Graph, epsilon: float, seeds: list[int], *, jobs: int | None = None
) -> tuple[list[int], int, int, int]:
    """Run broadcast per seed; return (completion slots, failures, D, Δ)."""
    d = diameter(g)
    delta = max_degree(g)
    bound = theorem4_slot_bound(g.num_nodes(), d, delta, epsilon)
    slots = parallel_map(
        partial(_completion_once, g, epsilon, bound * 8), seeds, jobs=jobs
    )
    completions = [slot for slot in slots if slot is not None]
    failures = sum(1 for slot in slots if slot is None)
    return completions, failures, d, delta


def run_broadcast_time_table(
    config: ExperimentConfig | None = None,
    *,
    families: tuple[str, ...] = ("line", "gnp", "udg", "layered", "smallworld"),
    sizes: tuple[int, ...] = (32, 64, 128, 256),
    epsilon: float = 0.1,
) -> Table:
    """E2: completion-slot statistics vs the Theorem 4 bound."""
    config = config or ExperimentConfig(reps=25)
    if config.quick:
        families = families[:2]
        sizes = sizes[:2]
    table = Table(
        f"E2 / Theorem 4 — broadcast completion slots (epsilon={epsilon})",
        [
            "family",
            "n",
            "D",
            "Delta",
            "mean_slots",
            "p90_slots",
            "max_slots",
            "thm4_bound",
            "within_bound_frac",
            "required_frac",
        ],
    )
    for family in families:
        for n in sizes:
            g = broadcast_family(family, n, config.master_seed)
            seeds = config.seeds("bcast", family, n)
            completions, failures, d, delta = _measure(
                g, epsilon, seeds, jobs=config.effective_jobs()
            )
            bound = theorem4_slot_bound(g.num_nodes(), d, delta, epsilon)
            total = len(seeds)
            within = sum(1 for s in completions if s <= bound)
            stats = summarize(completions) if completions else None
            table.add_row(
                family,
                g.num_nodes(),
                d,
                delta,
                stats.mean if stats else float("nan"),
                stats.p90 if stats else float("nan"),
                stats.maximum if stats else float("nan"),
                bound,
                within / total,
                1 - 2 * epsilon,
            )
    return table


def run_success_rate_table(
    config: ExperimentConfig | None = None,
    *,
    epsilons: tuple[float, ...] = (0.3, 0.1, 0.03),
    n: int = 96,
    family: str = "gnp",
) -> Table:
    """E3: measured broadcast failure rate vs the Lemma 2 guarantee ε."""
    config = config or ExperimentConfig(reps=200)
    if config.quick:
        epsilons = epsilons[:2]
    g = broadcast_family(family, n, config.master_seed)
    table = Table(
        f"E3 / Lemma 2 — failure rate on {family}(n={g.num_nodes()})",
        ["epsilon", "runs", "failures", "failure_rate", "rate_hi95", "claim_holds"],
    )
    for epsilon in epsilons:
        seeds = config.seeds("success", family, n, epsilon)
        _, failures, _, _ = _measure(g, epsilon, seeds, jobs=config.effective_jobs())
        rate = failures / len(seeds)
        _lo, hi = wilson_interval(failures, len(seeds))
        table.add_row(epsilon, len(seeds), failures, rate, hi, rate <= epsilon)
    return table


def _nbound_once(g: Graph, epsilon: float, big_n: int, seed: int) -> int | None:
    """One broadcast with the paper's upper bound N = ``big_n``."""
    result = run_decay_broadcast(
        g, source=0, seed=seed, epsilon=epsilon, upper_bound_n=big_n
    )
    return result.broadcast_completion_slot(source=0)


def run_upper_bound_sensitivity_table(
    config: ExperimentConfig | None = None,
    *,
    n: int = 96,
    epsilon: float = 0.1,
) -> Table:
    """E2c — design decision 4: the protocol takes ``N ≥ n``, not ``n``.

    Paper, Section 1.1: "*An upper bound polynomial in n yields the
    same time-complexity, up to a constant factor (since complexity is
    logarithmic in N)*".  We run with N = n, N = n², N = n⁴ and check
    the slowdown is a small constant (phases scale with log N) while
    success never degrades.
    """
    config = config or ExperimentConfig(reps=25)
    g = broadcast_family("gnp", n, config.master_seed)
    true_n = g.num_nodes()
    bounds = [true_n, true_n**2] if config.quick else [true_n, true_n**2, true_n**4]
    table = Table(
        f"E2c — sensitivity to the upper bound N (true n={true_n}, epsilon={epsilon})",
        ["N", "log_ratio", "mean_slots", "slowdown", "success_rate"],
    )
    baseline_mean: float | None = None
    for big_n in bounds:
        outcomes = parallel_map(
            partial(_nbound_once, g, epsilon, big_n),
            config.seeds("nbound", big_n),
            jobs=config.effective_jobs(),
        )
        slots = [slot for slot in outcomes if slot is not None]
        failures = sum(1 for slot in outcomes if slot is None)
        mean_slots = sum(slots) / len(slots) if slots else float("nan")
        if baseline_mean is None:
            baseline_mean = mean_slots
        table.add_row(
            big_n,
            round(math.log(big_n) / math.log(true_n), 2),
            mean_slots,
            mean_slots / baseline_mean,
            1 - failures / config.reps,
        )
    return table


def run_diameter_scaling_table(
    config: ExperimentConfig | None = None,
    *,
    depths: tuple[int, ...] = (4, 8, 16, 32),
    width: int = 8,
    epsilon: float = 0.1,
) -> Table:
    """E2 shape check: completion time linear in D at fixed width.

    Layered graphs of fixed layer width and varying depth isolate the
    ``D`` term of the ``O((D + log n/ε) log n)`` bound.
    """
    config = config or ExperimentConfig(reps=25)
    if config.quick:
        depths = depths[:3]
    table = Table(
        f"E2b — diameter scaling, layered graphs (width={width}, epsilon={epsilon})",
        ["depth", "n", "D", "mean_slots", "slots_per_D"],
    )
    for depth in depths:
        rng = spawn(config.master_seed, "layered-scaling", depth)
        g = layered_random([width] * depth, 0.5, rng)
        seeds = config.seeds("depth", depth)
        completions, _failures, d, _delta = _measure(
            g, epsilon, seeds, jobs=config.effective_jobs()
        )
        mean_slots = sum(completions) / len(completions) if completions else float("nan")
        table.add_row(depth, g.num_nodes(), d, mean_slots, mean_slots / max(1, d))
    return table
