"""E5 — Corollary 13: the exponential gap, measured.

On the paper's lower-bound family ``C_n`` (diameter 3), we measure:

* the **randomized** Decay Broadcast_scheme's completion slots
  (mean / p90 over seeds and over random hidden sets ``S``) — the
  paper predicts ``O(log n · log(n/ε))`` = polylogarithmic;
* two **deterministic** protocols' worst-case completion slots over
  sampled hidden sets ``S`` — round-robin TDMA and DFS token traversal
  — the paper proves *any* deterministic protocol needs ``≥ n/8`` and
  these take Θ(n).

The table reports the raw numbers plus the gap ratio; the companion
fit summary classifies growth (randomized ≈ a + b·log²n, deterministic
≈ a + b·n).  The *shape* to look for: the deterministic curves grow
linearly while the randomized one barely moves — crossing somewhere
below n ≈ 32 and exceeding an order of magnitude by n ≈ 1024.
"""

from __future__ import annotations

import math

from repro.analysis.stats import mean, quantile
from repro.analysis.tables import Table
from repro.analysis.theory import fit_linear
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import c_n
from repro.graphs.graph import Graph
from repro.parallel import resilient_map
from repro.protocols.base import run_broadcast
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs
from repro.rng import spawn
from repro.sim.backends import resolve_backend

__all__ = ["run_gap_table", "gap_growth_fits", "sample_hidden_sets"]

DEFAULT_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)
QUICK_SIZES = (8, 16, 32, 64)


def sample_hidden_sets(n: int, count: int, seed: int) -> list[frozenset[int]]:
    """Hidden sets to evaluate protocols on: adversarial-ish extremes
    (a far-away singleton, the second half, everything) plus random."""
    rng = spawn(seed, "gap-hidden", n)
    samples = [
        frozenset({n}),
        frozenset(range(n // 2 + 1, n + 1)),
        frozenset(range(1, n + 1)),
    ]
    while len(samples) < count:
        size = rng.randint(1, n)
        samples.append(frozenset(rng.sample(range(1, n + 1), size)))
    return samples[:count]


def _rand_run(task: tuple[int, frozenset[int], int, float]) -> int | None:
    """One randomized repetition (reference backend): completion slot."""
    n, hidden_set, seed, epsilon = task
    g = c_n(n, hidden_set)
    result = run_decay_broadcast(g, source=0, seed=seed, epsilon=epsilon)
    return result.broadcast_completion_slot(source=0)


def _rand_run_batch(
    tasks: list[tuple[int, frozenset[int], int, float]],
) -> list[int | None]:
    """A chunk of randomized repetitions on the vectorized backend.

    Seed-for-seed equivalent to mapping :func:`_rand_run` (the parity
    the backend suite guarantees); trials sharing a hidden set — and
    therefore a topology — advance together in one batch.
    """
    from repro.sim.vectorized import run_decay_broadcast_batch

    grouped: dict[tuple[int, frozenset[int], float], list[int]] = {}
    for position, (n, hidden_set, _seed, epsilon) in enumerate(tasks):
        grouped.setdefault((n, hidden_set, epsilon), []).append(position)
    slots: list[int | None] = [None] * len(tasks)
    for (n, hidden_set, epsilon), positions in grouped.items():
        g = c_n(n, hidden_set)
        results = run_decay_broadcast_batch(
            g, 0, [tasks[p][2] for p in positions], epsilon=epsilon
        )
        for position, result in zip(positions, results):
            slots[position] = result.broadcast_completion_slot(source=0)
    return slots


def _deterministic_worst_case(
    make_programs,
    n: int,
    hidden_sets: list[frozenset[int]],
    max_slots: int,
) -> int:
    """Worst completion slot of a deterministic protocol over hidden sets."""
    worst = 0
    for s in hidden_sets:
        g: Graph = c_n(n, s)
        programs = make_programs(g)
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=max_slots, stop="informed"
        )
        slot = result.broadcast_completion_slot(source=0)
        if slot is None:
            slot = max_slots  # did not finish within the budget
        worst = max(worst, slot)
    return worst


def run_gap_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    epsilon: float = 0.1,
    hidden_set_count: int = 8,
) -> Table:
    """The headline exponential-gap table on the ``C_n`` family."""
    config = config or ExperimentConfig(reps=15)
    if config.quick:
        sizes = QUICK_SIZES
    table = Table(
        f"E5 / Corollary 13 — randomized vs deterministic broadcast on C_n (epsilon={epsilon})",
        [
            "n",
            "nodes",
            "rand_mean",
            "rand_p90",
            "det_round_robin",
            "det_dfs",
            "gap_rr_over_rand",
            "gap_dfs_over_rand",
        ],
    )
    backend = resolve_backend(config.backend)
    for n in sizes:
        hidden_sets = sample_hidden_sets(n, hidden_set_count, config.master_seed)
        # Randomized: over seeds AND hidden sets (its behaviour is S-independent
        # by design — it never reads IDs — but we vary S anyway for fairness).
        tasks = [
            (n, hidden_sets[i % len(hidden_sets)], seed, epsilon)
            for i, seed in enumerate(config.seeds("gap-rand", n))
        ]
        slots = resilient_map(
            _rand_run,
            tasks,
            jobs=config.effective_jobs(),
            task_timeout=config.task_timeout,
            batch_fn=_rand_run_batch if backend == "numpy" else None,
        )
        rand_slots: list[float] = [slot for slot in slots if slot is not None]
        frame = n + 2  # IDs 0..n+1
        rr_worst = _deterministic_worst_case(
            lambda g: make_round_robin_programs(g, 0, frame_size=frame),
            n,
            hidden_sets,
            max_slots=frame * 8,
        )
        dfs_worst = _deterministic_worst_case(
            lambda g: make_dfs_programs(g, 0),
            n,
            hidden_sets,
            max_slots=4 * (n + 2),
        )
        rand_mean = mean(rand_slots) if rand_slots else float("nan")
        rand_p90 = quantile(rand_slots, 0.9) if rand_slots else float("nan")
        table.add_row(
            n,
            n + 2,
            rand_mean,
            rand_p90,
            rr_worst,
            dfs_worst,
            rr_worst / rand_mean if rand_slots else float("nan"),
            dfs_worst / rand_mean if rand_slots else float("nan"),
        )
    return table


def gap_growth_fits(table: Table) -> dict[str, dict[str, float]]:
    """Classify each curve's growth from a :func:`run_gap_table` result.

    Fits randomized means against ``log₂²(n)`` and the deterministic
    worst cases against ``n``; returns slopes and R² so callers (and
    EXPERIMENTS.md) can verify the polylog-vs-linear separation.
    """
    ns = [float(v) for v in table.column("n")]
    rand = [float(v) for v in table.column("rand_mean")]
    rr = [float(v) for v in table.column("det_round_robin")]
    dfs = [float(v) for v in table.column("det_dfs")]
    log2sq = [math.log2(x) ** 2 for x in ns]
    rand_fit = fit_linear(log2sq, rand)
    rand_linear_fit = fit_linear(ns, rand)
    rr_fit = fit_linear(ns, rr)
    dfs_fit = fit_linear(ns, dfs)
    return {
        "randomized_vs_log2sq": {
            "slope": rand_fit.slope,
            "r_squared": rand_fit.r_squared,
        },
        "randomized_vs_n": {
            "slope": rand_linear_fit.slope,
            "r_squared": rand_linear_fit.r_squared,
        },
        "round_robin_vs_n": {"slope": rr_fit.slope, "r_squared": rr_fit.r_squared},
        "dfs_vs_n": {"slope": dfs_fit.slope, "r_squared": dfs_fit.r_squared},
    }
