"""E4 — the deterministic lower bound machinery (Section 3).

Reproduced claims:

* **Lemma 9** — ``find_set``'s output is consistent: no move has a
  singleton intersection with S, and a singleton complement-
  intersection occurs only for singleton moves (checked per strategy).
* **Lemma 10 / Proposition 11** — for every strategy run for
  ``t = ⌊n/2⌋`` induced moves, ``find_set`` returns a non-empty S; the
  replayed game never hits: ``G(n) > n/2``.
* **Theorem 12 via Lemma 7** — compiling deterministic abstract
  broadcast protocols into explorers, the same adversary stalls the
  *protocols* for ``≥ n/4`` rounds, while the DFS-style sweep shows
  the matching O(n) upper bound.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.tables import Table
from repro.experiments.runner import ExperimentConfig
from repro.lowerbound.adversary import foil_strategy
from repro.lowerbound.hitting_game import play_game
from repro.lowerbound.reduction import (
    BinarySplitAbstractProtocol,
    ProtocolStrategy,
    RoundRobinAbstractProtocol,
    run_abstract_protocol,
)
from repro.lowerbound.strategies import (
    BinarySplittingStrategy,
    DoublingStrategy,
    ExplorerStrategy,
    RandomStrategy,
    SingletonSweepStrategy,
)

__all__ = [
    "strategy_suite",
    "run_adversary_table",
    "run_protocol_lower_bound_table",
    "run_upper_bound_table",
]


def strategy_suite(seed: int = 11) -> dict[str, Callable[[], ExplorerStrategy]]:
    """Fresh-instance factories for the explorer strategies under test."""
    return {
        "singleton-sweep": SingletonSweepStrategy,
        "doubling": DoublingStrategy,
        "binary-splitting": BinarySplittingStrategy,
        "random-half": lambda: RandomStrategy(seed, density=0.5),
        "protocol:round-robin": lambda: ProtocolStrategy(RoundRobinAbstractProtocol),
        "protocol:binary-split": lambda: ProtocolStrategy(BinarySplitAbstractProtocol),
    }


def run_adversary_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (8, 16, 32, 64, 128, 256),
) -> Table:
    """E4: the ``find_set`` adversary vs every strategy, at t = n/2 moves."""
    config = config or ExperimentConfig()
    if config.quick:
        sizes = sizes[:3]
    table = Table(
        "E4 / Lemmas 9-10, Prop. 11 — find_set survives n/2 moves of every strategy",
        [
            "strategy",
            "n",
            "moves_allowed",
            "S_size",
            "S_nonempty",
            "survived_all",
            "replay_consistent",
        ],
    )
    for name, factory in strategy_suite(config.master_seed).items():
        for n in sizes:
            t = n // 2
            result = foil_strategy(factory(), n, t)
            table.add_row(
                name,
                n,
                t,
                len(result.hidden_set),
                bool(result.hidden_set),
                result.survived_moves >= t,
                result.consistent,
            )
    return table


def run_protocol_lower_bound_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (16, 32, 64, 128),
) -> Table:
    """Theorem 12 end-to-end: adversarial S stalls abstract protocols ≥ n/4 rounds."""
    config = config or ExperimentConfig()
    if config.quick:
        sizes = sizes[:2]
    protocols = {
        "round-robin": RoundRobinAbstractProtocol,
        "binary-split": BinarySplitAbstractProtocol,
    }
    table = Table(
        "E4b / Theorem 12 — rounds an adversarial S forces on abstract protocols",
        ["protocol", "n", "adversarial_S_size", "rounds_survived", "n_over_4", "claim_holds"],
    )
    for name, proto_factory in protocols.items():
        for n in sizes:
            strategy = ProtocolStrategy(proto_factory)
            moves_budget = n // 2
            foil = foil_strategy(strategy, n, moves_budget)
            rounds = None
            if foil.hidden_set:
                rounds = run_abstract_protocol(
                    proto_factory(n), foil.hidden_set, max_rounds=4 * n
                )
            survived = (rounds if rounds is not None else 4 * n) - 1
            table.add_row(
                name,
                n,
                len(foil.hidden_set),
                survived,
                n // 4,
                survived >= n // 4,
            )
    return table


def run_upper_bound_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
) -> Table:
    """The matching upper bounds: sweeps win the game in ≤ n moves and
    round-robin completes abstract broadcast in ≤ n rounds, worst-case
    over a spread of hidden sets."""
    config = config or ExperimentConfig()
    if config.quick:
        sizes = sizes[:3]
    table = Table(
        "E4c — matching O(n) upper bounds (worst case over sampled hidden sets)",
        ["n", "worst_sweep_moves", "sweep_le_n", "worst_rr_rounds", "rr_le_n"],
    )
    for n in sizes:
        hidden_sets = _hidden_set_samples(n, config)
        worst_game = 0
        worst_rounds = 0
        for s in hidden_sets:
            outcome = play_game(SingletonSweepStrategy(), n, s, max_moves=2 * n)
            assert outcome.won
            worst_game = max(worst_game, outcome.moves_used)
            rounds = run_abstract_protocol(RoundRobinAbstractProtocol(n), s, 2 * n)
            assert rounds is not None
            worst_rounds = max(worst_rounds, rounds)
        table.add_row(n, worst_game, worst_game <= n, worst_rounds, worst_rounds <= n)
    return table


def _hidden_set_samples(n: int, config: ExperimentConfig) -> list[frozenset[int]]:
    """A spread of hidden sets: extremes plus random ones."""
    from repro.rng import spawn

    rng = spawn(config.master_seed, "hidden-sets", n)
    samples = [
        frozenset({n}),
        frozenset({1}),
        frozenset(range(1, n + 1)),
        frozenset(range(n // 2 + 1, n + 1)),
    ]
    for _ in range(min(10, config.reps)):
        size = rng.randint(1, n)
        samples.append(frozenset(rng.sample(range(1, n + 1), size)))
    return samples
