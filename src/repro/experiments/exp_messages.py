"""E7 — paper property 2: message complexity.

Claim: each processor is active for ``⌈log(N/ε)⌉`` consecutive phases
(with the pseudocode's factor-2 margin, ``⌈2·log(N/ε)⌉``), transmitting
on average ≤ 2 times per phase, so the expected total number of
transmissions is bounded by ``2n⌈log(N/ε)⌉`` (×2 with the margin).

We run broadcast to full termination (``stop="terminated"``) so every
node exhausts its phases, count transmissions via the metrics, and
compare with the bound for the *same* phase count the protocol used.
"""

from __future__ import annotations

from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import random_gnp
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import spawn

__all__ = ["run_message_complexity_table"]


def run_message_complexity_table(
    config: ExperimentConfig | None = None,
    *,
    sizes: tuple[int, ...] = (32, 64, 128, 256),
    epsilon: float = 0.1,
) -> Table:
    """Measured transmissions vs the property-2 bound."""
    config = config or ExperimentConfig(reps=20)
    if config.quick:
        sizes = sizes[:2]
    table = Table(
        f"E7 / property 2 — total transmissions (epsilon={epsilon})",
        [
            "n",
            "phases_per_node",
            "mean_tx",
            "max_tx",
            "bound_2n_phases",
            "mean_within_bound",
            "mean_tx_per_node_phase",
        ],
    )
    for n in sizes:
        rng = spawn(config.master_seed, "msg-topology", n)
        g = random_gnp(n, min(1.0, 8.0 / n), rng)
        totals = []
        phases = None
        for seed in config.seeds("messages", n):
            result = run_decay_broadcast(
                g, source=0, seed=seed, epsilon=epsilon, stop="terminated"
            )
            totals.append(result.metrics.transmissions)
            if phases is None:
                # All programs share the phase parameter; read it off one.
                any_program = next(iter(result.programs.values()))
                phases = any_program.phases
        stats = summarize(totals)
        assert phases is not None
        bound = 2 * g.num_nodes() * phases
        # Property 2 bounds the *expectation*; compare the sample mean
        # against the bound with a 3-standard-error allowance so the
        # check is about the claim, not Monte-Carlo noise.
        sem = stats.stddev / max(1, len(totals)) ** 0.5
        table.add_row(
            g.num_nodes(),
            phases,
            stats.mean,
            stats.maximum,
            bound,
            stats.mean <= bound + 3 * sem + 1e-9,
            stats.mean / (g.num_nodes() * phases),
        )
    return table
