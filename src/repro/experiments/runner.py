"""The experiment harness: seeded repetition and parameter sweeps.

Disciplines enforced here so individual experiments stay honest:

* every repetition gets an independent child seed derived from the
  experiment's master seed and the sweep point's tag (see
  :mod:`repro.rng`) — re-ordering sweep points never changes any run;
* the graph for a sweep point is generated from a seed independent of
  the protocol's coin flips, so all protocols at a sweep point face
  the *same* topologies (paired comparison, as the gap experiment
  needs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro import rng as rng_mod
from repro.errors import ExperimentError

__all__ = ["ExperimentConfig", "repeat_runs", "sweep"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``reps`` is the Monte-Carlo repetition count; ``master_seed`` the
    root of the whole experiment's randomness; ``quick`` asks the
    experiment for a reduced parameter grid (used by the CI-speed
    benchmarks; full grids reproduce the EXPERIMENTS.md numbers).
    """

    reps: int = 30
    master_seed: int = 20260706
    quick: bool = False
    extra: dict[str, Any] = field(default_factory=dict)

    def seeds(self, *tags: object) -> list[int]:
        """Independent per-repetition seeds for one sweep point."""
        return list(rng_mod.seed_sequence(self.master_seed, self.reps, *tags))


def repeat_runs(
    config: ExperimentConfig,
    tag: Sequence[object],
    run_once: Callable[[int], Any],
) -> list[Any]:
    """Run ``run_once(seed)`` for each derived repetition seed."""
    if config.reps < 1:
        raise ExperimentError("reps must be >= 1")
    return [run_once(seed) for seed in config.seeds(*tag)]


def sweep(
    config: ExperimentConfig,
    points: Iterable[Any],
    run_point: Callable[[Any, list[int]], Any],
) -> list[Any]:
    """Evaluate ``run_point(point, seeds)`` at every sweep point."""
    results = []
    for point in points:
        seeds = config.seeds("sweep", point)
        results.append(run_point(point, seeds))
    return results
