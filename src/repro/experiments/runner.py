"""The experiment harness: seeded repetition and parameter sweeps.

Disciplines enforced here so individual experiments stay honest:

* every repetition gets an independent child seed derived from the
  experiment's master seed and the sweep point's tag (see
  :mod:`repro.rng`) — re-ordering sweep points never changes any run;
* the graph for a sweep point is generated from a seed independent of
  the protocol's coin flips, so all protocols at a sweep point face
  the *same* topologies (paired comparison, as the gap experiment
  needs);
* repetition results never depend on execution order, so
  :func:`repeat_runs` and :func:`sweep` may fan work out to a process
  pool (``ExperimentConfig(jobs=N)`` or the ``REPRO_JOBS`` environment
  variable — see :mod:`repro.parallel`) and still return exactly what
  the serial loop would.

Repetitions are dispatched through :func:`repro.parallel.resilient_map`,
so a worker that crashes mid-campaign is retried with exponential
backoff (exact, because chunk inputs are re-derived seeds) and a
``task_timeout`` turns a hung worker into a retry instead of a stuck
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro import rng as rng_mod
from repro.errors import ExperimentError
from repro.parallel import resilient_map, resilient_starmap, resolve_jobs

__all__ = ["ExperimentConfig", "repeat_runs", "sweep"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``reps`` is the Monte-Carlo repetition count; ``master_seed`` the
    root of the whole experiment's randomness; ``quick`` asks the
    experiment for a reduced parameter grid (used by the CI-speed
    benchmarks; full grids reproduce the EXPERIMENTS.md numbers).
    ``jobs`` selects the execution backend for repetitions: ``None``
    defers to the ``REPRO_JOBS`` environment variable, ``1`` runs
    serially, ``N > 1`` uses a pool of N worker processes and ``0``
    uses every CPU.  Because per-repetition seeds are derived (not
    drawn from a shared stream), the result tables are identical for
    every ``jobs`` value.  ``task_timeout`` (seconds per repetition,
    ``None`` = unbounded) bounds how long a pooled repetition may run
    before its worker is presumed hung and the chunk is retried.

    ``backend`` selects the engine backend for experiments that support
    batched execution (see :mod:`repro.sim.backends`): ``None`` defers
    to ``$REPRO_BACKEND``, ``"auto"`` picks the vectorized NumPy
    backend when installed.  Backends are seed-for-seed identical, so
    result tables do not depend on the choice.
    """

    reps: int = 30
    master_seed: int = 20260706
    quick: bool = False
    jobs: int | None = None
    task_timeout: float | None = None
    backend: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def seeds(self, *tags: object) -> list[int]:
        """Independent per-repetition seeds for one sweep point."""
        return list(rng_mod.seed_sequence(self.master_seed, self.reps, *tags))

    def effective_jobs(self) -> int:
        """The concrete worker count (resolves ``REPRO_JOBS``/CPUs)."""
        return resolve_jobs(self.jobs)


def repeat_runs(
    config: ExperimentConfig,
    tag: Sequence[object],
    run_once: Callable[[int], Any],
) -> list[Any]:
    """Run ``run_once(seed)`` for each derived repetition seed.

    With ``config.jobs > 1`` (or ``REPRO_JOBS`` set) and a picklable
    ``run_once``, repetitions execute on a resilient process pool
    (worker-death retry, optional per-task timeout); the returned list
    is element-for-element identical to the serial result either way.
    """
    if config.reps < 1:
        raise ExperimentError("reps must be >= 1")
    return resilient_map(
        run_once,
        config.seeds(*tag),
        jobs=config.effective_jobs(),
        task_timeout=config.task_timeout,
    )


def sweep(
    config: ExperimentConfig,
    points: Iterable[Any],
    run_point: Callable[[Any, list[int]], Any],
) -> list[Any]:
    """Evaluate ``run_point(point, seeds)`` at every sweep point.

    Sweep points are independent by the seeding discipline, so they are
    dispatched through the same resilient process-pool backend as
    :func:`repeat_runs`; results come back in point order regardless.
    """
    tasks = [(point, config.seeds("sweep", point)) for point in points]
    return resilient_starmap(
        run_point,
        tasks,
        jobs=config.effective_jobs(),
        task_timeout=config.task_timeout,
    )
