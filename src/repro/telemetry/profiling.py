"""cProfile hooks: wrap any call and report its top hotspots.

Backs the CLI's ``--profile`` flag: the wrapped command runs under
:mod:`cProfile`, the top-N hotspots are rendered as a table, and — if
a telemetry recorder is active — a machine-readable ``profile`` event
is appended to the stream so hotspot history rides along with the rest
of the campaign record.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, TypeVar

from repro.telemetry import core as _core

__all__ = ["profile_call", "hotspots"]

R = TypeVar("R")


#: ``sort`` choices -> index into pstats' ``(cc, nc, tt, ct, callers)``
#: tuples.  pstats aliases accepted by ``sort_stats`` map here too.
_SORT_INDEX = {
    "cumulative": 3,
    "cumtime": 3,
    "tottime": 2,
    "time": 2,
}


def hotspots(
    stats: pstats.Stats, top: int = 15, *, sort: str = "cumulative"
) -> list[dict[str, Any]]:
    """The ``top`` entries ordered by ``sort``, machine-readable.

    ``sort`` accepts the same cumulative/tottime spellings as
    ``pstats.Stats.sort_stats`` (unknown keys fall back to cumulative),
    so the emitted ``profile`` event ranks the same way as the rendered
    table.
    """
    rows: list[dict[str, Any]] = []
    index = _SORT_INDEX.get(sort, 3)
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][index], reverse=True  # type: ignore[attr-defined]
    )
    for (filename, line, name), (cc, nc, tt, ct, _callers) in entries[:top]:
        rows.append(
            {
                "func": f"{filename}:{line}({name})",
                "calls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def profile_call(
    fn: Callable[..., R],
    *args: Any,
    top: int = 15,
    sort: str = "cumulative",
    **kwargs: Any,
) -> tuple[R, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the rendered
    top-``top`` hotspot listing.  If a telemetry recorder is active, a
    ``profile`` event with the hotspot rows is emitted as a side
    effect.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
    recorder = _core.get_active()
    if recorder is not None:
        recorder.emit("profile", top=hotspots(stats, top, sort=sort), sort=sort)
    return result, buffer.getvalue()
