"""cProfile hooks: wrap any call and report its top hotspots.

Backs the CLI's ``--profile`` flag: the wrapped command runs under
:mod:`cProfile`, the top-N hotspots are rendered as a table, and — if
a telemetry recorder is active — a machine-readable ``profile`` event
is appended to the stream so hotspot history rides along with the rest
of the campaign record.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, TypeVar

from repro.telemetry import core as _core

__all__ = ["profile_call", "hotspots"]

R = TypeVar("R")


def hotspots(stats: pstats.Stats, top: int = 15) -> list[dict[str, Any]]:
    """The ``top`` entries by cumulative time, machine-readable."""
    rows: list[dict[str, Any]] = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True  # type: ignore[attr-defined]
    )
    for (filename, line, name), (cc, nc, tt, ct, _callers) in entries[:top]:
        rows.append(
            {
                "func": f"{filename}:{line}({name})",
                "calls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def profile_call(
    fn: Callable[..., R],
    *args: Any,
    top: int = 15,
    sort: str = "cumulative",
    **kwargs: Any,
) -> tuple[R, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the rendered
    top-``top`` hotspot listing.  If a telemetry recorder is active, a
    ``profile`` event with the hotspot rows is emitted as a side
    effect.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
    recorder = _core.get_active()
    if recorder is not None:
        recorder.emit("profile", top=hotspots(stats, top), sort=sort)
    return result, buffer.getvalue()
