"""The telemetry event schema, and validation against it.

One JSON object per line; every record carries ``kind`` (one of
:data:`KINDS`) and ``ts`` (seconds since the epoch).  Records inside a
run scope additionally carry ``run``.  The per-kind required fields
below are the *contract* the summarizer, the tests, and the CI smoke
job validate emitted logs against; emitters may add extra fields
freely (the schema is open — only missing fields are errors).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "KINDS",
    "validate_record",
    "validate_line",
    "validate_log_lines",
]

SCHEMA = "repro-telemetry/1"
SCHEMA_VERSION = 1

#: kind -> fields that must be present (beyond ``kind`` and ``ts``).
KINDS: dict[str, frozenset[str]] = {
    # identity of the whole campaign/log
    "manifest": frozenset(
        {"schema", "version", "created", "host", "python", "package_version"}
    ),
    # engine layer
    "run_begin": frozenset({"run", "nodes", "edges", "seed"}),
    "run_end": frozenset(
        {"run", "slots", "wall_s", "transmissions", "collisions", "deliveries"}
    ),
    "slot_batch": frozenset({"run", "slot", "slots", "dur_s", "slots_per_sec"}),
    "fault": frozenset({"slot"}),
    # protocol layer
    "phase": frozenset({"proto", "node", "index", "slot"}),
    # causal slot provenance (opt-in; see repro.sim.provenance)
    "prov": frozenset({"slot", "node", "outcome"}),
    # generic metrics
    "counter": frozenset({"name", "value"}),
    "gauge": frozenset({"name", "value"}),
    "span": frozenset({"name", "dur_s"}),
    # parallel-pool layer
    "campaign_begin": frozenset({"items", "chunks", "chunksize", "jobs"}),
    "campaign_end": frozenset({"wall_s", "chunks"}),
    "chunk": frozenset({"index", "size", "wall_s"}),
    "progress": frozenset({"done", "total", "elapsed_s"}),
    # chaos layer: one record per adversarial trial (arm, verdict)
    "chaos_trial": frozenset({"arm", "seed", "success"}),
    # fabric layer (repro.fabric): multi-process campaign lifecycle
    "fabric_begin": frozenset({"spec", "workers", "chunks"}),
    "fabric_end": frozenset({"chunks", "wall_s"}),
    # worker lifecycle transition (start/exit/fault) in the fabric
    "worker": frozenset({"worker", "event"}),
    # lease-store event (claim/takeover/commit/fence_reject)
    "lease": frozenset({"event", "index"}),
    # conformance monitor (repro.monitor): a theorem-bound SLO fired
    "alert": frozenset({"rule", "severity", "message"}),
    # fleet metrics registry snapshot (repro.fleet.metrics)
    "metrics": frozenset({"snapshot"}),
    # profiling hook
    "profile": frozenset({"top"}),
    # sampling profiler (repro.perf): folded-stack capture + per-span cost
    "perf_profile": frozenset({"samples", "hz", "dur_s", "stacks"}),
    "perf_span": frozenset({"label", "samples", "secs"}),
}

#: Fields that, when present, must be numbers.
_NUMERIC = frozenset(
    {
        "ts",
        "slot",
        "slots",
        "dur_s",
        "wall_s",
        "queue_s",
        "slots_per_sec",
        "index",
        "size",
        "done",
        "total",
        "elapsed_s",
        "eta_s",
        "nodes",
        "edges",
        "transmissions",
        "collisions",
        "deliveries",
        "items",
        "chunks",
        "chunksize",
        "jobs",
        "retries",
        "timeouts",
        "last_reception_slot",
        "violations",
        "informed",
        "epsilon",
        "fence",
        "workers",
        "takeovers",
        "fence_rejects",
        "samples",
        "hz",
        "secs",
        "mem_peak_kb",
        "mem_net_kb",
        "stacks_dropped",
    }
)


def validate_record(record: Any) -> list[str]:
    """Schema errors of one decoded record (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected an object"]
    errors: list[str] = []
    kind = record.get("kind")
    if kind is None:
        errors.append("missing field 'kind'")
    elif kind not in KINDS:
        errors.append(f"unknown kind {kind!r}")
    if "ts" not in record:
        errors.append("missing field 'ts'")
    if kind in KINDS:
        missing = KINDS[kind] - record.keys()
        if missing:
            errors.append(f"{kind}: missing field(s) {sorted(missing)}")
    for field in _NUMERIC & record.keys():
        value = record[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"field {field!r} must be a number, got {value!r}")
    return errors


def validate_line(line: str) -> list[str]:
    """Schema errors of one raw JSON line."""
    stripped = line.strip()
    if not stripped:
        return []
    try:
        record = json.loads(stripped)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_record(record)


def validate_log_lines(lines: Iterable[str]) -> list[str]:
    """Validate a whole event log; errors are prefixed with line numbers."""
    errors: list[str] = []
    for number, line in enumerate(lines, start=1):
        for error in validate_line(line):
            errors.append(f"line {number}: {error}")
    return errors
