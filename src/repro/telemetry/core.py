"""The telemetry recorder and the ambient active-recorder registry.

Design constraints (see the module docs in ``repro/telemetry/__init__.py``):

* **Strict no-op when disabled.**  Instrumented code never constructs
  records, formats strings, or takes locks unless a recorder is
  active.  The gate is one module-global load plus a ``None`` check
  (:func:`get_active` / the fast helpers below), so the PR-1 hot-path
  numbers survive with telemetry off.
* **Streamed, append-only.**  Every record is one JSON line, flushed
  as it is written, so a crashed campaign leaves a readable log and
  ``tail -f`` works while a campaign runs.
* **Fork-safe.**  A recorder remembers the PID that created it and
  silently drops records emitted from forked children — worker
  processes instead buffer into their own in-memory recorder and ship
  records back to the parent (see :mod:`repro.parallel`), which merges
  them into the stream with :meth:`Telemetry.write_record`.
* **Subscriber bus.**  In-process consumers (the live conformance
  monitor, the status board — see :mod:`repro.monitor`) can
  :meth:`~Telemetry.subscribe` a callback and observe every record as
  it is written, including worker records merged via
  :meth:`~Telemetry.write_record`.  With no subscriber attached the
  cost is one falsy-tuple check per record, and with telemetry
  disabled nothing changes at all — the strict no-op guarantee above
  is untouched (the bench harness guards this:
  ``benchmarks/bench_engine.py --bus-check``).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

from repro._version import __version__
from repro.perf import core as _perf_core
from repro.telemetry.schema import SCHEMA, SCHEMA_VERSION

__all__ = [
    "Telemetry",
    "get_active",
    "set_active",
    "activate",
    "phase",
    "counter",
    "gauge",
    "event",
    "config_fingerprint",
    "git_sha",
]

#: Default slot interval between engine ``slot_batch`` records.
DEFAULT_SLOT_BATCH = 256

#: The ambient recorder; ``None`` means telemetry is disabled and every
#: fast helper below is a no-op.
_ACTIVE: "Telemetry | None" = None


class Telemetry:
    """A hierarchical event/metric recorder writing JSON-lines records.

    Construct with :meth:`to_path` (file-backed, streaming) or
    :meth:`buffered` (in-memory, used by pool workers whose records are
    shipped back to the parent).  All emission methods are cheap and
    never raise on serialisation trouble: values that are not JSON
    types are encoded via ``repr``.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        path: str | os.PathLike[str] | None = None,
        slot_batch: int = DEFAULT_SLOT_BATCH,
    ) -> None:
        if slot_batch < 1:
            raise ValueError("slot_batch must be >= 1")
        self._stream = stream
        self._owns_stream = False
        self._path = Path(path) if path is not None else None
        self._records: list[dict[str, Any]] | None = None if stream else []
        self.slot_batch = slot_batch
        self._pid = os.getpid()
        self._run_seq = 0
        self._current_run: str | None = None
        self._closed = False
        # Subscriber bus: an immutable tuple so dispatch never races a
        # subscribe/unsubscribe, and the no-subscriber fast path is one
        # falsy check.  Depth-guarded so a subscriber that emits records
        # of its own (the monitor writing `alert` events) cannot recurse
        # unboundedly.
        self._subscribers: tuple[Callable[[dict[str, Any]], None], ...] = ()
        self._dispatch_depth = 0
        # Distributed trace context (repro.fleet.tracectx): when set,
        # every record is stamped with trace/span/parent identity.
        # None = no stamping, no cost.
        self._trace: Any = None
        # Serializes writes + subscriber dispatch: worker ship-back can
        # merge records from multiple threads (resilient_map callbacks,
        # fabric event forwarding), and interleaved JSON lines would
        # tear the log.  Reentrant because a subscriber may emit back
        # into this recorder (the monitor writing `alert` records).
        self._write_lock = threading.RLock()

    # -- constructors ---------------------------------------------------

    @classmethod
    def to_path(
        cls, path: str | os.PathLike[str], *, slot_batch: int = DEFAULT_SLOT_BATCH
    ) -> "Telemetry":
        """A recorder streaming to ``path`` (parents created, truncated)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        stream = target.open("w", encoding="utf-8")
        recorder = cls(stream, path=target, slot_batch=slot_batch)
        recorder._owns_stream = True
        return recorder

    @classmethod
    def buffered(cls, *, slot_batch: int = DEFAULT_SLOT_BATCH) -> "Telemetry":
        """An in-memory recorder; read its records back with :meth:`drain`."""
        return cls(None, slot_batch=slot_batch)

    # -- properties -----------------------------------------------------

    @property
    def path(self) -> Path | None:
        return self._path

    @property
    def current_run(self) -> str | None:
        """The run id events are being attributed to (engine-managed)."""
        return self._current_run

    @property
    def trace(self) -> Any:
        """The installed trace context, or ``None`` (no stamping)."""
        return self._trace

    def set_trace(self, context: Any) -> Any:
        """Install (or clear, with ``None``) a distributed trace context.

        While installed, every record written — emitted locally or
        merged via :meth:`write_record` — is stamped with the context's
        ``trace``/``span``/``parent`` identity (see
        :class:`repro.fleet.tracectx.TraceContext`; pre-stamped worker
        records keep their own span fields).  Returns the previous
        context.
        """
        previous = self._trace
        self._trace = context
        return previous

    # -- low-level emission ---------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one record of ``kind`` with the given fields.

        Records emitted while a run is open (between :meth:`begin_run`
        and :meth:`end_run`) are tagged with the run id automatically.
        """
        if self._closed or os.getpid() != self._pid:
            return
        record: dict[str, Any] = {"kind": kind, "ts": time.time()}
        if self._current_run is not None and "run" not in fields:
            record["run"] = self._current_run
        record.update(fields)
        self._write(record)

    def write_record(self, record: dict[str, Any]) -> None:
        """Merge a pre-formed record (e.g. shipped from a pool worker)."""
        if self._closed or os.getpid() != self._pid:
            return
        self._write(record)

    def _write(self, record: dict[str, Any]) -> None:
        if self._trace is not None:
            self._trace.stamp(record)
        with self._write_lock:
            if self._records is not None:
                self._records.append(record)
            else:
                assert self._stream is not None
                self._stream.write(json.dumps(record, default=repr) + "\n")
                self._stream.flush()
            if self._subscribers:
                self._dispatch(record)

    # -- subscriber bus -------------------------------------------------

    def subscribe(
        self, callback: Callable[[dict[str, Any]], None]
    ) -> Callable[[], None]:
        """Observe every record written to this recorder.

        ``callback(record)`` runs synchronously after each record is
        written (streamed or buffered), including pre-formed worker
        records merged via :meth:`write_record`.  Exceptions raised by
        a subscriber are logged and swallowed — a broken consumer must
        never corrupt the recording.  Returns an unsubscribe callable.
        """
        self._subscribers = (*self._subscribers, callback)
        return lambda: self.unsubscribe(callback)

    def unsubscribe(self, callback: Callable[[dict[str, Any]], None]) -> None:
        """Detach a subscriber (no-op when it is not attached)."""
        self._subscribers = tuple(
            existing for existing in self._subscribers if existing is not callback
        )

    def _dispatch(self, record: dict[str, Any]) -> None:
        if self._dispatch_depth >= 4:  # runaway subscriber-emission guard
            return
        self._dispatch_depth += 1
        try:
            for callback in self._subscribers:
                try:
                    callback(record)
                except Exception:  # noqa: BLE001 - isolate consumers
                    logging.getLogger("repro.telemetry").exception(
                        "telemetry subscriber %r failed; record dropped "
                        "for that subscriber only",
                        callback,
                    )
        finally:
            self._dispatch_depth -= 1

    # -- manifest -------------------------------------------------------

    def write_manifest(
        self,
        *,
        command: str | None = None,
        seed: int | None = None,
        config: dict[str, Any] | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Emit the run manifest (and a ``<log>.manifest.json`` sidecar).

        The manifest pins everything needed to reproduce the campaign:
        seed, a fingerprint of the configuration, the git commit, host
        and interpreter, and the package version.
        """
        manifest: dict[str, Any] = {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "created": time.time(),
            "host": platform.node() or "unknown",
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "package_version": __version__,
            "git_sha": git_sha(),
            "pid": self._pid,
            "argv": list(sys.argv),
        }
        if command is not None:
            manifest["command"] = command
        if seed is not None:
            manifest["seed"] = seed
        if config is not None:
            manifest["config"] = config
            manifest["config_fingerprint"] = config_fingerprint(config)
        manifest.update(extra)
        self.emit("manifest", **manifest)
        if self._path is not None:
            sidecar = self._path.with_name(self._path.name + ".manifest.json")
            with contextlib.suppress(OSError):
                sidecar.write_text(
                    json.dumps(manifest, indent=2, sort_keys=True, default=repr) + "\n",
                    encoding="utf-8",
                )
        return manifest

    # -- runs -----------------------------------------------------------

    def begin_run(self, **fields: Any) -> str:
        """Open a run scope; subsequent records carry its id."""
        with self._write_lock:
            self._run_seq += 1
            run_id = f"r{self._run_seq}"
        self._current_run = run_id
        self.emit("run_begin", run=run_id, **fields)
        return run_id

    def end_run(self, **fields: Any) -> None:
        """Close the current run scope."""
        run_id = self._current_run or f"r{self._run_seq}"
        self.emit("run_end", run=run_id, **fields)
        self._current_run = None

    def open_run(self, **fields: Any) -> str:
        """Allocate a run id and emit its ``run_begin`` without making
        it *the* current run.

        The batched backend interleaves many runs inside one slot loop,
        so no single run can own the ambient scope; events for such runs
        carry an explicit ``run=`` field instead.  Interleaves safely
        with engine-managed :meth:`begin_run`/:meth:`end_run` scopes.
        """
        # Seq allocation shares the write lock: concurrent open_run
        # calls (fabric event forwarding vs an in-process engine) must
        # never mint the same run id.
        with self._write_lock:
            self._run_seq += 1
            run_id = f"r{self._run_seq}"
        self.emit("run_begin", run=run_id, **fields)
        return run_id

    def close_run(self, run_id: str, **fields: Any) -> None:
        """Emit ``run_end`` for a run opened with :meth:`open_run`."""
        self.emit("run_end", run=run_id, **fields)

    # -- metrics --------------------------------------------------------

    def counter(self, name: str, value: int | float = 1, **fields: Any) -> None:
        self.emit("counter", name=name, value=value, **fields)

    def gauge(self, name: str, value: int | float, **fields: Any) -> None:
        self.emit("gauge", name=name, value=value, **fields)

    def phase(self, proto: str, *, node: Any, index: int, slot: int, **fields: Any) -> None:
        """A protocol phase marker (Decay call, Broadcast phase, BFS layer)."""
        self.emit("phase", proto=proto, node=node, index=index, slot=slot, **fields)

    @contextlib.contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a block; emits one ``span`` record with its duration.

        When a perf session is active (:mod:`repro.perf`), the block is
        also pushed as a perf span, so sampled wall time and traced
        memory are attributed to ``name`` — telemetry spans double as
        perf attribution points.  With perf off this is one global load
        plus a ``None`` check.
        """
        perf_session = _perf_core.get_active()
        if perf_session is not None:
            perf_session.span_push(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            if perf_session is not None:
                perf_session.span_pop()
            self.emit("span", name=name, dur_s=time.perf_counter() - start, **fields)

    # -- lifecycle ------------------------------------------------------

    def drain(self) -> list[dict[str, Any]]:
        """Return and clear the buffered records (buffered recorders only)."""
        if self._records is None:
            return []
        records, self._records = self._records, []
        return records

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_stream and self._stream is not None:
            with contextlib.suppress(OSError):
                self._stream.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- ambient registry ----------------------------------------------------


def get_active() -> Telemetry | None:
    """The ambient recorder, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def set_active(recorder: Telemetry | None) -> Telemetry | None:
    """Install (or clear, with ``None``) the ambient recorder; returns
    the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


@contextlib.contextmanager
def activate(recorder: Telemetry) -> Iterator[Telemetry]:
    """Make ``recorder`` ambient for the duration of the block."""
    previous = set_active(recorder)
    try:
        yield recorder
    finally:
        set_active(previous)


# -- fast helpers (one global load + None check when disabled) ------------


def phase(proto: str, *, node: Any, index: int, slot: int, **fields: Any) -> None:
    recorder = _ACTIVE
    if recorder is not None:
        recorder.phase(proto, node=node, index=index, slot=slot, **fields)


def counter(name: str, value: int | float = 1, **fields: Any) -> None:
    recorder = _ACTIVE
    if recorder is not None:
        recorder.counter(name, value, **fields)


def gauge(name: str, value: int | float, **fields: Any) -> None:
    recorder = _ACTIVE
    if recorder is not None:
        recorder.gauge(name, value, **fields)


def event(kind: str, **fields: Any) -> None:
    recorder = _ACTIVE
    if recorder is not None:
        recorder.emit(kind, **fields)


# -- manifest ingredients -------------------------------------------------


def config_fingerprint(config: dict[str, Any]) -> str:
    """A short stable digest of a configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_sha(repo_root: str | os.PathLike[str] | None = None) -> str | None:
    """The checked-out commit, read from ``.git`` without subprocesses.

    Best-effort: returns ``None`` outside a git checkout (e.g. an
    installed wheel) rather than raising.
    """
    try:
        start = Path(repo_root) if repo_root is not None else Path(__file__).resolve()
        for candidate in [start, *start.parents]:
            git_dir = candidate / ".git"
            if not git_dir.exists():
                continue
            if git_dir.is_file():  # worktree: "gitdir: <path>"
                pointer = git_dir.read_text(encoding="utf-8").strip()
                if not pointer.startswith("gitdir:"):
                    return None
                git_dir = (candidate / pointer.split(":", 1)[1].strip()).resolve()
            head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.split(":", 1)[1].strip()
            ref_file = git_dir / ref
            if ref_file.exists():
                return ref_file.read_text(encoding="utf-8").strip() or None
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text(encoding="utf-8").splitlines():
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0]
            return None
    except OSError:
        return None
    return None
