"""Aggregate a telemetry event log into tables or JSON.

``python -m repro telemetry <log>`` renders the output of
:func:`summarize`; tests and the CI smoke job use :func:`validate_log`
to hold emitted logs to the schema contract.

The summarizer is deliberately tolerant: unknown kinds and extra
fields are ignored, so logs from newer emitters still summarize (the
schema is open — see :mod:`repro.telemetry.schema`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.telemetry.schema import validate_line, validate_record

__all__ = [
    "read_records",
    "validate_log",
    "summarize",
    "summary_tables",
    "render_summary",
    "summary_json",
]


def read_records(
    path: str | os.PathLike[str], *, strict: bool = False
) -> list[dict[str, Any]]:
    """Decode every JSON line of an event log.

    With ``strict=True`` any schema violation raises
    :class:`ExperimentError`; otherwise invalid lines are skipped (a
    torn trailing line from a killed campaign is normal).

    A final line with no terminating newline is a record the writer is
    still mid-flush on (every writer emits ``<json>\\n`` and a reader
    may race the flush): it is treated as *incomplete* rather than
    invalid, in strict mode too.  :class:`repro.monitor.tail.TailReader`
    is the live counterpart that buffers such a tail until its newline
    arrives.
    """
    log = Path(path)
    if not log.exists():
        raise ExperimentError(f"no telemetry log at {log}")
    records: list[dict[str, Any]] = []
    # errors="replace": undecodable bytes (a torn binary tail, a disk
    # hiccup) become U+FFFD and fail JSON decoding per-line, so one bad
    # region never aborts the whole read.
    with log.open("r", encoding="utf-8", errors="replace") as stream:
        for number, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            if not line.endswith("\n"):
                break  # partially-written final line: writer mid-flush
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ExperimentError(f"{log}: line {number}: {exc}") from exc
                continue
            errors = validate_record(record)
            if errors and strict:
                raise ExperimentError(f"{log}: line {number}: {'; '.join(errors)}")
            if not errors:
                records.append(record)
    return records


def validate_log(path: str | os.PathLike[str]) -> list[str]:
    """Every schema violation in the log, prefixed with line numbers.

    The whole file is checked: a line that is not valid UTF-8 (or not
    valid JSON) is reported with its line number and validation moves
    on to the next line, instead of aborting at the first bad byte.  A
    final line with no terminating newline is a record the writer is
    still mid-flush on (a live campaign being validated while it runs)
    and is skipped, not reported — the monitor's tail reader buffers
    exactly such lines until the newline lands.
    """
    log = Path(path)
    if not log.exists():
        raise ExperimentError(f"no telemetry log at {log}")
    errors: list[str] = []
    with log.open("rb") as stream:
        for number, raw in enumerate(stream, start=1):
            if not raw.endswith(b"\n") and raw.strip():
                break  # partially-written final line: writer mid-flush
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                errors.append(f"line {number}: not valid UTF-8 ({exc})")
                continue
            for error in validate_line(line):
                errors.append(f"line {number}: {error}")
    return errors


# -- aggregation ----------------------------------------------------------


def _stats(values: list[float]) -> dict[str, float]:
    return {
        "count": len(values),
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def summarize(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll an event stream up into one machine-readable summary."""
    from repro.sim.metrics import RunMetrics

    manifests = [r for r in records if r["kind"] == "manifest"]
    run_ends = [r for r in records if r["kind"] == "run_end"]
    total = RunMetrics.merge_all(
        RunMetrics(
            slots=r["slots"],
            transmissions=r["transmissions"],
            collisions=r["collisions"],
            deliveries=r["deliveries"],
            jam_transmissions=r.get("jam_transmissions", 0),
        )
        for r in run_ends
    )
    wall = sum(r["wall_s"] for r in run_ends)
    runs = {
        "count": len(run_ends),
        "slots": total.slots,
        "transmissions": total.transmissions,
        "collisions": total.collisions,
        "deliveries": total.deliveries,
        "jam_transmissions": total.jam_transmissions,
        "wall_s": wall,
        "slots_per_sec": (total.slots / wall) if wall > 0 else 0.0,
    }

    # Phase markers, grouped by protocol layer and phase index.  The
    # slot of each marker is the phase's *last* slot; ``start_slot``
    # (when the emitter provides it) gives slots-per-phase directly.
    phases: dict[str, dict[int, dict[str, Any]]] = {}
    for record in records:
        if record["kind"] != "phase":
            continue
        proto = str(record["proto"])
        index = int(record["index"])
        bucket = phases.setdefault(proto, {}).setdefault(
            index, {"count": 0, "slots": [], "lengths": []}
        )
        bucket["count"] += 1
        bucket["slots"].append(record["slot"])
        if "start_slot" in record:
            bucket["lengths"].append(record["slot"] - record["start_slot"] + 1)
    phase_summary: dict[str, list[dict[str, Any]]] = {}
    for proto, buckets in sorted(phases.items()):
        rows = []
        for index in sorted(buckets):
            bucket = buckets[index]
            row: dict[str, Any] = {"index": index, "count": bucket["count"]}
            row.update(
                {f"slot_{k}": v for k, v in _stats(bucket["slots"]).items() if k != "count"}
            )
            if bucket["lengths"]:
                row["mean_length"] = sum(bucket["lengths"]) / len(bucket["lengths"])
            rows.append(row)
        phase_summary[proto] = rows

    chunks = [r for r in records if r["kind"] == "chunk"]
    chunk_summary: dict[str, Any] = {"count": len(chunks)}
    if chunks:
        chunk_summary.update(
            {
                "items": sum(c["size"] for c in chunks),
                "wall_s": _stats([c["wall_s"] for c in chunks]),
                "retries": sum(c.get("retries", 0) for c in chunks),
                "timeouts": sum(c.get("timeouts", 0) for c in chunks),
                "workers": len({c["pid"] for c in chunks if "pid" in c}),
            }
        )
        queue_waits = [c["queue_s"] for c in chunks if "queue_s" in c]
        if queue_waits:
            chunk_summary["queue_s"] = _stats(queue_waits)

    counters: dict[str, dict[str, float]] = {}
    for record in records:
        if record["kind"] != "counter":
            continue
        entry = counters.setdefault(str(record["name"]), {"events": 0, "total": 0})
        entry["events"] += 1
        entry["total"] += record["value"]
    gauges: dict[str, dict[str, float]] = {}
    for record in records:
        if record["kind"] != "gauge":
            continue
        name = str(record["name"])
        value = record["value"]
        entry = gauges.setdefault(
            name, {"events": 0, "last": value, "min": value, "max": value}
        )
        entry["events"] += 1
        entry["last"] = value
        entry["min"] = min(entry["min"], value)
        entry["max"] = max(entry["max"], value)

    spans: dict[str, dict[str, float]] = {}
    for record in records:
        if record["kind"] != "span":
            continue
        entry = spans.setdefault(str(record["name"]), {"count": 0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += record["dur_s"]

    campaign_ends = [r for r in records if r["kind"] == "campaign_end"]
    progress = [r for r in records if r["kind"] == "progress"]

    # Fleet rollup (PR 5/7 record kinds): the fabric's lease audit
    # trail, worker lifecycle, alert and chaos volumes, plus the last
    # metrics-registry snapshot, reduced to label-summed totals.
    lease_events: dict[str, int] = {}
    fleet_workers: set[str] = set()
    for record in records:
        kind = record["kind"]
        if kind == "lease":
            event = str(record["event"])
            lease_events[event] = lease_events.get(event, 0) + 1
            worker = record.get("worker")
            if isinstance(worker, str) and worker:
                fleet_workers.add(worker)
        elif kind == "worker":
            fleet_workers.add(str(record["worker"]))
    fabric_ends = [r for r in records if r["kind"] == "fabric_end"]
    metrics_snapshots = [r for r in records if r["kind"] == "metrics"]
    metrics_totals: dict[str, float] = {}
    if metrics_snapshots:
        from repro.fleet.metrics import snapshot_totals

        snapshot = metrics_snapshots[-1].get("snapshot")
        if isinstance(snapshot, dict):
            metrics_totals = snapshot_totals(snapshot)
    fleet = {
        "lease_events": dict(sorted(lease_events.items())),
        "workers": sorted(fleet_workers),
        "takeovers": lease_events.get("takeover", 0),
        "fence_rejects": lease_events.get("fence_reject", 0),
        "fabric_runs": len(fabric_ends),
        "fabric_wall_s": sum(r["wall_s"] for r in fabric_ends),
        "fabric_chunks": sum(r["chunks"] for r in fabric_ends),
        "alerts": sum(1 for r in records if r["kind"] == "alert"),
        "chaos_trials": sum(1 for r in records if r["kind"] == "chaos_trial"),
        "metrics_snapshots": len(metrics_snapshots),
        "metrics_totals": dict(sorted(metrics_totals.items())),
    }

    # Performance plane (repro.perf + the cProfile hook): sampled
    # folded-stack captures, span-attributed cost, and cProfile hotspot
    # rows, merged across the log (worker captures ship back as extra
    # perf_profile/perf_span records and sum here).
    perf_profiles = [r for r in records if r["kind"] == "perf_profile"]
    perf_stacks: dict[str, int] = {}
    for record in perf_profiles:
        stacks = record.get("stacks")
        if not isinstance(stacks, dict):
            continue
        for stack, count in stacks.items():
            if isinstance(count, (int, float)) and count > 0:
                perf_stacks[str(stack)] = perf_stacks.get(str(stack), 0) + int(count)
    perf_spans: dict[str, dict[str, float]] = {}
    for record in records:
        if record["kind"] != "perf_span":
            continue
        entry = perf_spans.setdefault(
            str(record["label"]),
            {"count": 0, "secs": 0.0, "samples": 0, "mem_peak_kb": 0.0,
             "mem_net_kb": 0.0},
        )
        entry["count"] += record.get("count", 1)
        entry["secs"] += record["secs"]
        entry["samples"] += record["samples"]
        entry["mem_peak_kb"] = max(entry["mem_peak_kb"], record.get("mem_peak_kb", 0.0))
        entry["mem_net_kb"] += record.get("mem_net_kb", 0.0)
    profile_events = [r for r in records if r["kind"] == "profile"]
    hotspot_rows: list[dict[str, Any]] = []
    for record in profile_events:
        rows = record.get("top")
        if isinstance(rows, list):
            for row in rows:
                if isinstance(row, dict) and "func" in row:
                    hotspot_rows.append(row)
    perf = {
        "profiles": len(perf_profiles),
        "samples": sum(r["samples"] for r in perf_profiles),
        "sample_wall_s": sum(r["dur_s"] for r in perf_profiles),
        "hz": perf_profiles[-1]["hz"] if perf_profiles else None,
        "stacks": dict(sorted(perf_stacks.items())),
        "spans": dict(sorted(perf_spans.items())),
        "hotspots": hotspot_rows,
    }

    return {
        "records": len(records),
        "manifests": manifests,
        "runs": runs,
        "phases": phase_summary,
        "chunks": chunk_summary,
        "faults": sum(1 for r in records if r["kind"] == "fault"),
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
        "campaigns": {
            "count": len(campaign_ends),
            "wall_s": sum(c["wall_s"] for c in campaign_ends),
            "retries": sum(c.get("retries", 0) for c in campaign_ends),
            "timeouts": sum(c.get("timeouts", 0) for c in campaign_ends),
        },
        "fleet": fleet,
        "perf": perf,
        "last_progress": progress[-1] if progress else None,
    }


# -- rendering ------------------------------------------------------------


def summary_tables(summary: dict[str, Any]) -> list[Table]:
    """Render a :func:`summarize` result as fixed-width tables."""
    tables: list[Table] = []

    overview = Table(
        "Telemetry log overview",
        ["records", "manifests", "runs", "phase_protos", "chunks", "faults"],
    )
    overview.add_row(
        summary["records"],
        len(summary["manifests"]),
        summary["runs"]["count"],
        len(summary["phases"]),
        summary["chunks"]["count"],
        summary["faults"],
    )
    tables.append(overview)

    if summary["manifests"]:
        manifest_table = Table(
            "Run manifest(s)",
            ["command", "seed", "git_sha", "host", "package_version", "config_fingerprint"],
        )
        for manifest in summary["manifests"]:
            manifest_table.add_row(
                manifest.get("command", "-"),
                manifest.get("seed", "-"),
                (manifest.get("git_sha") or "-")[:12],
                manifest.get("host", "-"),
                manifest.get("package_version", "-"),
                manifest.get("config_fingerprint", "-"),
            )
        tables.append(manifest_table)

    runs = summary["runs"]
    if runs["count"]:
        run_table = Table(
            "Engine runs (merged RunMetrics)",
            ["runs", "slots", "transmissions", "collisions", "deliveries",
             "wall_s", "slots_per_sec"],
        )
        run_table.add_row(
            runs["count"], runs["slots"], runs["transmissions"], runs["collisions"],
            runs["deliveries"], runs["wall_s"], runs["slots_per_sec"],
        )
        tables.append(run_table)

    for proto, rows in summary["phases"].items():
        phase_table = Table(
            f"Phase markers — {proto} (slot of phase completion per index)",
            ["index", "count", "slot_min", "slot_mean", "slot_max", "mean_length"],
        )
        for row in rows:
            phase_table.add_row(
                row["index"], row["count"], row["slot_min"], row["slot_mean"],
                row["slot_max"], row.get("mean_length", "-"),
            )
        tables.append(phase_table)

    chunks = summary["chunks"]
    if chunks["count"]:
        chunk_table = Table(
            "Parallel chunks (per-chunk worker telemetry)",
            ["chunks", "items", "workers", "wall_mean_s", "wall_max_s",
             "queue_mean_s", "retries", "timeouts"],
        )
        chunk_table.add_row(
            chunks["count"],
            chunks.get("items", 0),
            chunks.get("workers", 0),
            chunks["wall_s"]["mean"],
            chunks["wall_s"]["max"],
            chunks.get("queue_s", {}).get("mean", "-"),
            chunks.get("retries", 0),
            chunks.get("timeouts", 0),
        )
        tables.append(chunk_table)

    if summary["counters"] or summary["gauges"]:
        metric_table = Table(
            "Counters and gauges", ["metric", "kind", "events", "total_or_last"]
        )
        for name, entry in sorted(summary["counters"].items()):
            metric_table.add_row(name, "counter", entry["events"], entry["total"])
        for name, entry in sorted(summary["gauges"].items()):
            metric_table.add_row(name, "gauge", entry["events"], entry["last"])
        tables.append(metric_table)

    if summary["spans"]:
        span_table = Table("Spans", ["name", "count", "total_s"])
        for name, entry in sorted(summary["spans"].items()):
            span_table.add_row(name, entry["count"], entry["total_s"])
        tables.append(span_table)

    fleet = summary.get("fleet") or {}
    if fleet.get("lease_events") or fleet.get("fabric_runs"):
        fleet_table = Table(
            "Fleet (fabric lease audit + registry totals)",
            ["workers", "claims", "commits", "takeovers", "fence_rejects",
             "fabric_runs", "alerts", "chaos_trials"],
        )
        lease_events = fleet.get("lease_events", {})
        fleet_table.add_row(
            len(fleet.get("workers", [])),
            lease_events.get("claim", 0),
            lease_events.get("commit", 0),
            fleet.get("takeovers", 0),
            fleet.get("fence_rejects", 0),
            fleet.get("fabric_runs", 0),
            fleet.get("alerts", 0),
            fleet.get("chaos_trials", 0),
        )
        tables.append(fleet_table)
        totals = fleet.get("metrics_totals", {})
        if totals:
            totals_table = Table(
                "Fleet metrics (last registry snapshot, label-summed)",
                ["metric", "total"],
            )
            for name, value in sorted(totals.items()):
                totals_table.add_row(name, value)
            tables.append(totals_table)

    perf = summary.get("perf") or {}
    if perf.get("profiles") or perf.get("hotspots"):
        perf_table = Table(
            "Perf (sampling profiler)",
            ["profiles", "samples", "hz", "sample_wall_s", "distinct_stacks"],
        )
        perf_table.add_row(
            perf.get("profiles", 0),
            perf.get("samples", 0),
            perf.get("hz") or "-",
            perf.get("sample_wall_s", 0.0),
            len(perf.get("stacks", {})),
        )
        tables.append(perf_table)
        spans = perf.get("spans", {})
        if spans:
            perf_span_table = Table(
                "Perf spans (sampled time + traced memory per label)",
                ["label", "count", "secs", "samples", "mem_peak_kb"],
            )
            ranked = sorted(spans.items(), key=lambda kv: (-kv[1]["secs"], kv[0]))
            for label, entry in ranked:
                perf_span_table.add_row(
                    label, entry["count"], entry["secs"], entry["samples"],
                    entry["mem_peak_kb"],
                )
            tables.append(perf_span_table)
        hotspots = perf.get("hotspots", [])
        if hotspots:
            hot_table = Table(
                "cProfile hotspots", ["func", "calls", "tottime_s", "cumtime_s"]
            )
            for row in hotspots[:15]:
                hot_table.add_row(
                    row.get("func", "-"), row.get("calls", "-"),
                    row.get("tottime_s", "-"), row.get("cumtime_s", "-"),
                )
            tables.append(hot_table)

    return tables


def render_summary(summary: dict[str, Any]) -> str:
    return "\n\n".join(table.render() for table in summary_tables(summary))


def summary_json(summary: dict[str, Any]) -> str:
    return json.dumps(summary, indent=2, sort_keys=True, default=repr)
