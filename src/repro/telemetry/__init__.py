"""repro.telemetry — structured run events, timing, and profiling hooks.

The paper's claims are *time* claims (Theorem 1's O(log n) conflict
resolution, Theorem 4's O((D + log n/ε)·log n) broadcast), so the
measurement substrate matters as much as the protocols.  This package
is a hierarchical event/metric recorder that four layers feed:

* the **engine** emits ``run_begin``/``run_end`` spans, periodic
  ``slot_batch`` throughput records (a live slots-per-second gauge),
  and ``fault`` activation events;
* the **protocols** emit ``phase`` markers — the Decay call index of
  Broadcast (Theorem 1/4 granularity) and the BFS layer — so
  time-per-phase histograms can be checked against
  :mod:`repro.core.bounds`;
* the **parallel pool** emits per-chunk worker records (wall time,
  queue wait, retries, timeouts), merges events buffered inside
  workers back into the parent stream, and heartbeats campaign
  progress;
* the **CLI** writes the run manifest (seed, config fingerprint, git
  SHA, host, package version) and exposes ``--telemetry PATH``,
  ``--profile``, and ``python -m repro telemetry <log>``.

Telemetry is **off by default and a strict no-op when off**: the only
cost instrumented code pays is a module-global load plus a ``None``
check (enforced by the engine throughput bench guard).  Enable it by
activating a recorder::

    from repro.telemetry import Telemetry, activate
    from repro.protocols import run_decay_broadcast

    with Telemetry.to_path("events.jsonl") as recorder, activate(recorder):
        recorder.write_manifest(seed=7, config={"n": 64})
        run_decay_broadcast(graph, source=0, seed=7)

Every record is one JSON line, flushed as written; the log is
summarized with ``python -m repro telemetry events.jsonl`` and
validated against :mod:`repro.telemetry.schema`.
"""

from repro.telemetry.core import (
    Telemetry,
    activate,
    config_fingerprint,
    counter,
    event,
    gauge,
    get_active,
    git_sha,
    phase,
    set_active,
)
from repro.telemetry.schema import SCHEMA, SCHEMA_VERSION, validate_record

__all__ = [
    "Telemetry",
    "activate",
    "set_active",
    "get_active",
    "phase",
    "counter",
    "gauge",
    "event",
    "config_fingerprint",
    "git_sha",
    "SCHEMA",
    "SCHEMA_VERSION",
    "validate_record",
]
