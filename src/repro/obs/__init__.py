"""Cross-run observability: the run store, trends, and dashboards.

``repro.telemetry`` (PR 3) answers "what happened in *this* run" — a
streamed JSON-lines log per campaign.  This package is the other half
of observability: durable **history across runs**, so the paper's
quantitative trajectories (Theorem 4's slot bound, the engine's
slots/sec, collision rates under Decay) can be tracked, A/B-diffed and
regression-gated over time.

Layers (all stdlib, one SQLite file):

* :mod:`repro.obs.store` — the schema-versioned run store
  (:class:`RunStore`): runs, aggregate metrics, time series, phase
  tables, causal provenance, bench trajectory points.
* :mod:`repro.obs.ingest` — idempotent loaders for ``--telemetry``
  logs (+ manifest sidecars) and ``BENCH_*.json`` records.
* :mod:`repro.obs.query` — per-run aggregates, A/B comparison, trend
  series and the median-baseline regression detector the CI gate uses.
* :mod:`repro.obs.report` — terminal tables/sparklines and the
  self-contained inline-SVG HTML dashboards.

CLI: ``python -m repro obs ingest|compare|trend|report|explain``.
Runs launched with ``--telemetry PATH --obs-db DB`` auto-ingest on
completion, so the store grows as a side effect of normal work.
"""

from repro.obs.ingest import (
    IngestResult,
    fingerprint_of,
    ingest_bench_file,
    ingest_log,
    ingest_path,
)
from repro.obs.query import (
    DEFAULT_BASELINE_K,
    DEFAULT_THRESHOLD,
    TrendPoint,
    compare_runs,
    detect_regression,
    explain_from_store,
    metric_direction,
    perf_overview,
    trend_points,
)
from repro.obs.report import (
    render_run_html,
    render_trend_html,
    run_tables,
    sparkline,
    trend_table,
)
from repro.obs.store import SCHEMA_VERSION, RunStore

__all__ = [
    "RunStore",
    "SCHEMA_VERSION",
    "IngestResult",
    "fingerprint_of",
    "ingest_log",
    "ingest_bench_file",
    "ingest_path",
    "TrendPoint",
    "trend_points",
    "detect_regression",
    "compare_runs",
    "explain_from_store",
    "metric_direction",
    "perf_overview",
    "DEFAULT_THRESHOLD",
    "DEFAULT_BASELINE_K",
    "run_tables",
    "trend_table",
    "sparkline",
    "render_run_html",
    "render_trend_html",
]
