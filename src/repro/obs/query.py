"""Query layer: A/B run comparison, trend series, regression detection.

The regression detector implements the relative-threshold /
median-baseline policy the CI gate uses: the latest point is compared
against the **median of the last K prior points** (robust to one noisy
run), and flagged when it moved more than ``threshold`` (a fraction)
in the *bad* direction for that metric.  Directions default per metric
— throughput up is good, wall time / collisions / retries up is bad —
and can be overridden.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from typing import Any

from repro.errors import ExperimentError
from repro.obs.store import RunStore
from repro.sim.provenance import explain_entry, explain_missing

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_BASELINE_K",
    "metric_direction",
    "TrendPoint",
    "trend_points",
    "detect_regression",
    "compare_runs",
    "explain_from_store",
    "perf_overview",
]

#: Relative move (fraction of the baseline) that counts as a regression.
DEFAULT_THRESHOLD = 0.2

#: Baseline = median of the last K points before the latest.
DEFAULT_BASELINE_K = 3

#: Metrics where *larger* is better; everything else regresses upward.
_HIGHER_IS_BETTER = frozenset({"slots_per_sec", "deliveries", "combined_slots_per_sec"})


def metric_direction(metric: str) -> str:
    """``"up"`` when larger values are better, else ``"down"``."""
    return "up" if metric in _HIGHER_IS_BETTER else "down"


@dataclass
class TrendPoint:
    """One point of a trend series."""

    label: str  # short run fingerprint or bench git sha
    value: float
    run_id: int | None = None
    created: float | None = None


def trend_points(
    store: RunStore, metric: str, *, source: str = "runs"
) -> list[TrendPoint]:
    """The trend-ordered series of one metric.

    ``source="runs"`` reads ingested telemetry runs; ``source="bench"``
    reads the bench trajectory (metric ``combined_slots_per_sec`` or a
    per-topology ``<name>.slots_per_sec``).
    """
    if source == "runs":
        rows = store.metric_trend(metric)
        return [
            TrendPoint(
                label=str(row["fingerprint"])[:8],
                value=float(row["value"]),
                run_id=row["id"],
                created=row["created"],
            )
            for row in rows
            if row["value"] is not None
        ]
    if source == "bench":
        points = []
        for row in store.bench_points():
            if metric in ("combined_slots_per_sec", "slots_per_sec"):
                value = row["combined_slots_per_sec"]
            else:
                payload = json.loads(row["payload"])
                name, _, sub = metric.partition(".")
                entry = payload.get("topologies", {}).get(name)
                value = entry.get(sub or "slots_per_sec") if entry else None
            if value is None:
                continue
            points.append(
                TrendPoint(
                    label=(row["git_sha"] or f"b{row['id']}")[:8],
                    value=float(value),
                    run_id=row["id"],
                    created=row["recorded"],
                )
            )
        return points
    raise ExperimentError(f"unknown trend source {source!r} (use 'runs' or 'bench')")


def detect_regression(
    values: list[float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_k: int = DEFAULT_BASELINE_K,
    direction: str | None = None,
    metric: str = "slots_per_sec",
) -> dict[str, Any]:
    """Judge the latest point of a series against its recent baseline.

    Returns a verdict dict with ``regressed`` (bool), ``baseline``
    (median of the last ``baseline_k`` points before the latest),
    ``latest``, ``change`` (signed fraction vs baseline) and ``floor``
    /``ceiling`` (the tripwire value).  Series shorter than 2 points
    never regress (there is nothing to compare against).
    """
    if threshold <= 0:
        raise ExperimentError("threshold must be positive")
    if baseline_k < 1:
        raise ExperimentError("baseline_k must be >= 1")
    if direction is None:
        direction = metric_direction(metric)
    if direction not in ("up", "down"):
        raise ExperimentError(f"direction must be 'up' or 'down', not {direction!r}")
    verdict: dict[str, Any] = {
        "metric": metric,
        "direction": direction,
        "threshold": threshold,
        "baseline_k": baseline_k,
        "points": len(values),
        "regressed": False,
        "baseline": None,
        "latest": values[-1] if values else None,
        "change": None,
    }
    if len(values) < 2:
        return verdict
    window = values[:-1][-baseline_k:]
    baseline = statistics.median(window)
    latest = values[-1]
    verdict["baseline"] = baseline
    if baseline == 0:
        verdict["change"] = 0.0 if latest == 0 else float("inf")
        verdict["regressed"] = direction == "down" and latest > 0
        return verdict
    change = (latest - baseline) / abs(baseline)
    verdict["change"] = change
    if direction == "up":
        verdict["floor"] = baseline * (1.0 - threshold)
        verdict["regressed"] = latest < verdict["floor"]
    else:
        verdict["ceiling"] = baseline * (1.0 + threshold)
        verdict["regressed"] = latest > verdict["ceiling"]
    return verdict


def compare_runs(
    store: RunStore, a: str | int, b: str | int
) -> dict[str, Any]:
    """A/B diff of two runs' aggregate metrics.

    Returns the two run rows plus one diff row per metric present in
    either run: ``{"metric", "a", "b", "delta", "pct"}`` (``pct`` is
    relative to A, ``None`` when A is 0 or the metric is one-sided).
    """
    run_a = store.resolve_run(a)
    run_b = store.resolve_run(b)
    metrics_a = store.metrics_for(run_a["id"])
    metrics_b = store.metrics_for(run_b["id"])
    rows = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        va = metrics_a.get(name)
        vb = metrics_b.get(name)
        delta = (vb - va) if (va is not None and vb is not None) else None
        pct = (delta / abs(va) * 100.0) if (delta is not None and va) else None
        rows.append({"metric": name, "a": va, "b": vb, "delta": delta, "pct": pct})
    return {"a": run_a, "b": run_b, "diff": rows}


def perf_overview(store: RunStore, run: str | int = "latest") -> dict[str, Any]:
    """The performance plane of one run, grouped for display.

    Collects the ``perf.*`` aggregates ingest derives from sampling
    profiler records (``perf.span.<label>.*``) and routed ``--profile``
    cProfile events (``perf.hotspot.<func>.*``) into span rows and
    hotspot rows; raises when the run carries no perf metrics at all
    (the campaign ran without ``--perf``/``--profile``).
    """
    run_row = store.resolve_run(run)
    metrics = store.metrics_for(run_row["id"])
    perf = {name: value for name, value in metrics.items() if name.startswith("perf.")}
    if not perf:
        raise ExperimentError(
            f"run {run_row['id']} has no perf metrics; re-run with --perf "
            f"(sampling profiler) or --profile (cProfile) and re-ingest"
        )
    spans: dict[str, dict[str, float]] = {}
    hotspots: dict[str, dict[str, float]] = {}
    for name, value in perf.items():
        if name.startswith("perf.span."):
            label, _, field = name[len("perf.span."):].rpartition(".")
            if label:
                spans.setdefault(label, {})[field] = value
        elif name.startswith("perf.hotspot.") and name != "perf.hotspot.rows":
            func, _, field = name[len("perf.hotspot."):].rpartition(".")
            if func:
                hotspots.setdefault(func, {})[field] = value
    span_rows = [
        {"label": label, **fields}
        for label, fields in sorted(
            spans.items(), key=lambda kv: (-kv[1].get("secs", 0.0), kv[0])
        )
    ]
    hotspot_rows = [
        {"func": func, **fields}
        for func, fields in sorted(
            hotspots.items(), key=lambda kv: (-kv[1].get("cumtime_s", 0.0), kv[0])
        )
    ]
    return {
        "run": run_row,
        "samples": perf.get("perf.samples"),
        "sample_wall_s": perf.get("perf.sample_wall_s"),
        "spans": span_rows,
        "hotspots": hotspot_rows,
        "metrics": perf,
    }


def explain_from_store(
    store: RunStore,
    run: str | int,
    node: str,
    slot: int,
    engine_run: str | None = None,
) -> dict[str, Any]:
    """Answer "why didn't ``node`` receive in ``slot``?" from the store.

    Uses the same causal sentences as the live
    :class:`~repro.sim.provenance.ProvenanceRecorder`.  A campaign log
    holds many engine runs, so one (node, slot) may have several
    entries — pass ``engine_run`` (the run tag, e.g. ``r3``) to pick
    one; otherwise the first is explained and the rest are counted.
    A miss reports the node's nearest recorded slots instead.
    """
    run_row = store.resolve_run(run)
    run_id = run_row["id"]
    if store.provenance_count(run_id) == 0:
        raise ExperimentError(
            f"run {run_id} has no provenance rows; re-run with provenance "
            f"recording on (--provenance / REPRO_PROVENANCE=1) and re-ingest"
        )
    entries = store.provenance_at(run_id, str(node), int(slot), engine_run)
    if entries:
        entry = entries[0]
        transmitters = tuple(json.loads(entry["tx"] or "[]"))
        answer = explain_entry(
            entry["node"], entry["slot"], entry["outcome"], transmitters,
            entry["detail"],
        )
        if entry.get("engine_run"):
            answer += f" [engine run {entry['engine_run']}]"
        return {
            "run": run_row,
            "found": True,
            "entry": entry,
            "others": len(entries) - 1,
            "answer": answer,
        }
    history = store.provenance_for_node(run_id, str(node))
    nearby = sorted(history, key=lambda e: abs(e["slot"] - int(slot)))[:3]
    return {
        "run": run_row,
        "found": False,
        "entry": None,
        "others": 0,
        "answer": explain_missing(node, slot),
        "nearby": nearby,
    }
