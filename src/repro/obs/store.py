"""The SQLite run store behind ``python -m repro obs``.

One database file holds the cross-run history: ingested telemetry logs
(as run rows plus their aggregate metrics, time series, phase tables
and provenance entries) and bench trajectory points from
``BENCH_*.json``.  Everything is stdlib ``sqlite3`` — no external
dependencies, one self-contained file that can be committed, shipped
or uploaded as a CI artifact.

Schema versioning uses ``PRAGMA user_version``: a fresh database is
stamped with :data:`SCHEMA_VERSION`; opening a database written by a
*newer* schema fails loudly instead of corrupting it.

Ingest is idempotent: runs are keyed on a fingerprint of their
manifest (see :func:`repro.obs.ingest.fingerprint_of`), so re-ingesting
the same log replaces its rows instead of duplicating them, and bench
points are keyed on a digest of their payload.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ExperimentError

__all__ = ["SCHEMA_VERSION", "RunStore"]

#: Bumped whenever the table layout changes incompatibly.
SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL UNIQUE,
    command TEXT,
    seed INTEGER,
    created REAL,
    git_sha TEXT,
    host TEXT,
    package_version TEXT,
    config_fingerprint TEXT,
    config_json TEXT,
    source_path TEXT,
    records INTEGER,
    ingested_at REAL
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    value REAL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS series (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    seq INTEGER NOT NULL,
    x REAL,
    y REAL
);
CREATE INDEX IF NOT EXISTS series_run_name ON series(run_id, name, seq);
CREATE TABLE IF NOT EXISTS phases (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    proto TEXT NOT NULL,
    idx INTEGER NOT NULL,
    count INTEGER,
    slot_mean REAL,
    mean_length REAL
);
CREATE TABLE IF NOT EXISTS provenance (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    engine_run TEXT,
    slot INTEGER NOT NULL,
    node TEXT NOT NULL,
    outcome TEXT NOT NULL,
    tx TEXT,
    detail TEXT
);
CREATE INDEX IF NOT EXISTS provenance_lookup ON provenance(run_id, node, slot);
CREATE TABLE IF NOT EXISTS bench (
    id INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL UNIQUE,
    recorded REAL,
    git_sha TEXT,
    scale TEXT,
    combined_slots_per_sec REAL,
    payload TEXT
);
"""


def _row_to_dict(cursor: sqlite3.Cursor, row: tuple) -> dict[str, Any]:
    return {desc[0]: value for desc, value in zip(cursor.description, row)}


#: Default wait (ms) for a competing writer's transaction to finish.
DEFAULT_BUSY_TIMEOUT_MS = 5000


class RunStore:
    """Open (creating if needed) the run store at ``path``.

    The store is opened in WAL journal mode with a busy timeout so
    several processes can ingest concurrently (e.g. parallel CI legs or
    fabric workers sharing one database): WAL lets readers proceed
    under a writer, and the busy timeout makes competing writers queue
    instead of failing with ``database is locked``.  Ingest stays
    idempotent under that concurrency — ``upsert_run`` runs in one
    immediate transaction keyed on the manifest fingerprint.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.conn = sqlite3.connect(str(self.path))
        self.conn.row_factory = _row_to_dict
        self.conn.execute("PRAGMA foreign_keys = ON")
        # Best-effort: some filesystems refuse WAL; sqlite then keeps
        # the prior journal mode and everything still works, serially.
        self.conn.execute("PRAGMA journal_mode=WAL")
        self.conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        self._init_schema()

    def _init_schema(self) -> None:
        (row,) = self.conn.execute("PRAGMA user_version").fetchall()
        version = row["user_version"]
        if version > SCHEMA_VERSION:
            raise ExperimentError(
                f"{self.path} uses run-store schema v{version}, newer than this "
                f"build's v{SCHEMA_VERSION}; upgrade the package or use a new file"
            )
        self.conn.executescript(_TABLES)
        if version < SCHEMA_VERSION:
            self.conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self.conn.commit()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- run ingestion (used by repro.obs.ingest) -----------------------

    def upsert_run(self, fingerprint: str, info: dict[str, Any]) -> tuple[int, bool]:
        """Insert a run row, replacing any prior row with this fingerprint.

        Returns ``(run_id, replaced)``.  Child rows (metrics, series,
        phases, provenance) of a replaced run are dropped, so a
        re-ingested log lands exactly once however many times it is
        ingested.

        The check-then-write runs under an immediate (write-locked)
        transaction: two processes ingesting the same log concurrently
        serialize on the lock instead of racing the existence check —
        the loser sees the winner's row and takes the replace path, so
        exactly one run row survives either way.
        """
        columns = (
            "command", "seed", "created", "git_sha", "host", "package_version",
            "config_fingerprint", "config_json", "source_path", "records",
            "ingested_at",
        )
        values = [info.get(column) for column in columns]
        if not self.conn.in_transaction:
            self.conn.execute("BEGIN IMMEDIATE")
        existing = self.conn.execute(
            "SELECT id FROM runs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if existing is not None:
            # Same log again: keep the run id stable, drop the old child
            # rows, refresh the row (the log may have grown since).
            run_id = int(existing["id"])
            for table in ("metrics", "series", "phases", "provenance"):
                self.conn.execute(f"DELETE FROM {table} WHERE run_id = ?", (run_id,))
            assignments = ", ".join(f"{column} = ?" for column in columns)
            self.conn.execute(
                f"UPDATE runs SET {assignments} WHERE id = ?", (*values, run_id)
            )
            self.conn.commit()
            return run_id, True
        cursor = self.conn.execute(
            "INSERT INTO runs (fingerprint, "
            + ", ".join(columns)
            + ") VALUES (" + ", ".join("?" * (len(columns) + 1)) + ")",
            (fingerprint, *values),
        )
        self.conn.commit()
        return int(cursor.lastrowid), False

    def add_metrics(self, run_id: int, metrics: dict[str, float]) -> None:
        self.conn.executemany(
            "INSERT OR REPLACE INTO metrics (run_id, name, value) VALUES (?, ?, ?)",
            [(run_id, name, value) for name, value in metrics.items()],
        )
        self.conn.commit()

    def add_series(
        self, run_id: int, name: str, points: Iterable[tuple[float, float]]
    ) -> None:
        self.conn.executemany(
            "INSERT INTO series (run_id, name, seq, x, y) VALUES (?, ?, ?, ?, ?)",
            [(run_id, name, seq, x, y) for seq, (x, y) in enumerate(points)],
        )
        self.conn.commit()

    def add_phases(self, run_id: int, rows: Iterable[dict[str, Any]]) -> None:
        self.conn.executemany(
            "INSERT INTO phases (run_id, proto, idx, count, slot_mean, mean_length)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            [
                (run_id, r["proto"], r["idx"], r.get("count"),
                 r.get("slot_mean"), r.get("mean_length"))
                for r in rows
            ],
        )
        self.conn.commit()

    def add_provenance(self, run_id: int, rows: Iterable[dict[str, Any]]) -> None:
        self.conn.executemany(
            "INSERT INTO provenance"
            " (run_id, engine_run, slot, node, outcome, tx, detail)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (run_id, r.get("engine_run"), r["slot"], r["node"], r["outcome"],
                 json.dumps(r.get("tx", []), default=repr), r.get("detail"))
                for r in rows
            ],
        )
        self.conn.commit()

    # -- run queries ----------------------------------------------------

    def runs(self) -> list[dict[str, Any]]:
        """All runs, trend-ordered (manifest creation time, then id)."""
        return self.conn.execute(
            "SELECT * FROM runs ORDER BY created IS NULL, created, id"
        ).fetchall()

    def resolve_run(self, selector: str | int) -> dict[str, Any]:
        """A run row from ``latest``/``prev``, a numeric id, or a
        fingerprint prefix."""
        runs = self.runs()
        if not runs:
            raise ExperimentError(f"{self.path}: the run store is empty; ingest first")
        text = str(selector)
        if text == "latest":
            return runs[-1]
        if text == "prev":
            if len(runs) < 2:
                raise ExperimentError(f"{self.path}: no previous run (only 1 ingested)")
            return runs[-2]
        if text.isdigit():
            for run in runs:
                if run["id"] == int(text):
                    return run
            raise ExperimentError(f"{self.path}: no run with id {text}")
        matches = [r for r in runs if str(r["fingerprint"]).startswith(text)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExperimentError(f"{self.path}: no run fingerprint starts with {text!r}")
        raise ExperimentError(
            f"{self.path}: fingerprint prefix {text!r} is ambiguous "
            f"({len(matches)} matches)"
        )

    def metrics_for(self, run_id: int) -> dict[str, float]:
        rows = self.conn.execute(
            "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name", (run_id,)
        ).fetchall()
        return {r["name"]: r["value"] for r in rows}

    def series_for(self, run_id: int, name: str) -> list[tuple[float, float]]:
        rows = self.conn.execute(
            "SELECT x, y FROM series WHERE run_id = ? AND name = ? ORDER BY seq",
            (run_id, name),
        ).fetchall()
        return [(r["x"], r["y"]) for r in rows]

    def phases_for(self, run_id: int) -> list[dict[str, Any]]:
        return self.conn.execute(
            "SELECT proto, idx, count, slot_mean, mean_length FROM phases"
            " WHERE run_id = ? ORDER BY proto, idx",
            (run_id,),
        ).fetchall()

    def provenance_at(
        self, run_id: int, node: str, slot: int, engine_run: str | None = None
    ) -> list[dict[str, Any]]:
        """All (node, slot) entries — one per engine run within the log."""
        query = (
            "SELECT engine_run, slot, node, outcome, tx, detail FROM provenance"
            " WHERE run_id = ? AND node = ? AND slot = ?"
        )
        params: tuple[Any, ...] = (run_id, node, slot)
        if engine_run is not None:
            query += " AND engine_run = ?"
            params += (engine_run,)
        return self.conn.execute(query + " ORDER BY engine_run", params).fetchall()

    def provenance_for_node(self, run_id: int, node: str) -> list[dict[str, Any]]:
        return self.conn.execute(
            "SELECT engine_run, slot, node, outcome, tx, detail FROM provenance"
            " WHERE run_id = ? AND node = ? ORDER BY slot",
            (run_id, node),
        ).fetchall()

    def provenance_count(self, run_id: int) -> int:
        row = self.conn.execute(
            "SELECT COUNT(*) AS n FROM provenance WHERE run_id = ?", (run_id,)
        ).fetchone()
        return int(row["n"])

    def metric_trend(self, name: str) -> list[dict[str, Any]]:
        """``(run, value)`` pairs of one metric over trend-ordered runs."""
        return self.conn.execute(
            "SELECT runs.*, metrics.value AS value FROM runs"
            " JOIN metrics ON metrics.run_id = runs.id AND metrics.name = ?"
            " ORDER BY runs.created IS NULL, runs.created, runs.id",
            (name,),
        ).fetchall()

    # -- bench trajectory ----------------------------------------------

    def add_bench_point(self, fingerprint: str, payload: dict[str, Any]) -> bool:
        """Insert one bench point; returns False if already present."""
        cursor = self.conn.execute(
            "INSERT OR IGNORE INTO bench"
            " (fingerprint, recorded, git_sha, scale, combined_slots_per_sec, payload)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                payload.get("recorded"),
                payload.get("git_sha"),
                payload.get("scale"),
                payload.get("combined_slots_per_sec"),
                json.dumps(payload, sort_keys=True, default=repr),
            ),
        )
        self.conn.commit()
        return cursor.rowcount > 0

    def bench_points(self) -> list[dict[str, Any]]:
        """All bench points, trend-ordered (recording time, then id)."""
        return self.conn.execute(
            "SELECT * FROM bench ORDER BY recorded IS NULL, recorded, id"
        ).fetchall()
