"""Render the run store: terminal tables, sparklines, HTML dashboards.

Everything here is dependency-free.  Terminal output reuses the
experiment :class:`~repro.analysis.tables.Table` plus Unicode block
sparklines; the HTML dashboard is a single self-contained page — inline
CSS and inline SVG charts, no scripts, no external assets — so it can
be attached as a CI artifact and opened anywhere.
"""

from __future__ import annotations

import html as html_mod
import json
import time
from typing import Any

from repro.analysis.tables import Table
from repro.obs.query import TrendPoint
from repro.obs.store import RunStore

__all__ = [
    "sparkline",
    "run_tables",
    "trend_table",
    "render_run_html",
    "render_trend_html",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], *, width: int | None = None) -> str:
    """A Unicode block sparkline of ``values`` (min→max scaled)."""
    if not values:
        return ""
    if width is not None and len(values) > width > 0:
        # Bucket-average down to the requested width.
        step = len(values) / width
        values = [
            sum(bucket) / len(bucket)
            for i in range(width)
            if (bucket := values[int(i * step): max(int((i + 1) * step), int(i * step) + 1)])
        ]
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[3] * len(values)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int((v - lo) * scale)] for v in values)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return Table._format_cell(value)
    return str(value)


# -- terminal -------------------------------------------------------------


def run_tables(store: RunStore, run: dict[str, Any]) -> list[Table]:
    """The per-run report as fixed-width tables."""
    run_id = run["id"]
    tables: list[Table] = []

    ident = Table(
        f"Run {run_id} — {run.get('command') or 'unknown command'}",
        ["fingerprint", "seed", "git_sha", "host", "created", "records", "source"],
    )
    created = run.get("created")
    ident.add_row(
        str(run["fingerprint"])[:12],
        _fmt(run.get("seed")),
        (run.get("git_sha") or "-")[:12],
        run.get("host") or "-",
        time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(created)) if created else "-",
        _fmt(run.get("records")),
        run.get("source_path") or "-",
    )
    tables.append(ident)

    metrics = store.metrics_for(run_id)
    if metrics:
        metric_table = Table("Aggregates", ["metric", "value"])
        for name, value in sorted(metrics.items()):
            metric_table.add_row(name, _fmt(value))
        tables.append(metric_table)

    series = store.series_for(run_id, "slots_per_sec")
    if series:
        values = [y for _, y in series]
        spark_table = Table(
            "slots/sec over the run (slot_batch samples)",
            ["samples", "min", "mean", "max", "sparkline"],
        )
        spark_table.add_row(
            len(values), min(values), sum(values) / len(values), max(values),
            sparkline(values, width=48),
        )
        tables.append(spark_table)

    phases = store.phases_for(run_id)
    if phases:
        phase_table = Table(
            "Phase markers", ["proto", "index", "count", "slot_mean", "mean_length"]
        )
        for row in phases:
            phase_table.add_row(
                row["proto"], row["idx"], _fmt(row["count"]),
                _fmt(row["slot_mean"]), _fmt(row["mean_length"]),
            )
        tables.append(phase_table)

    prov_count = store.provenance_count(run_id)
    if prov_count:
        prov_table = Table("Causal provenance", ["rows", "query"])
        prov_table.add_row(
            prov_count,
            f"python -m repro obs explain {store.path} --run {run_id} "
            f"--node V --slot T",
        )
        tables.append(prov_table)
    return tables


def trend_table(
    metric: str, points: list[TrendPoint], verdict: dict[str, Any] | None = None
) -> Table:
    """The trend series as a table, one row per run/bench point."""
    table = Table(f"Trend — {metric} ({len(points)} points)",
                  ["#", "label", metric, "vs prev", "spark"])
    values = [p.value for p in points]
    spark = sparkline(values, width=max(len(values), 1))
    for i, point in enumerate(points):
        prev = values[i - 1] if i else None
        vs = f"{(point.value - prev) / abs(prev) * 100.0:+.1f}%" if prev else "-"
        table.add_row(i + 1, point.label, point.value, vs,
                      spark[: i + 1] if len(spark) >= len(values) else spark)
    if verdict is not None and verdict.get("baseline") is not None:
        table.add_row(
            "", "baseline", verdict["baseline"],
            f"thr {verdict['threshold']:.0%} {verdict['direction']}",
            "REGRESSED" if verdict["regressed"] else "ok",
        )
    return table


# -- HTML dashboard -------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1d23; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .75rem; }
.tile { border: 1px solid #d9dde3; border-radius: .5rem; padding: .6rem .9rem;
        min-width: 8rem; background: #f8f9fb; }
.tile .v { font-size: 1.25rem; font-weight: 600; }
.tile .k { font-size: .75rem; color: #5b6472; }
table { border-collapse: collapse; font-size: .85rem; }
th, td { border: 1px solid #d9dde3; padding: .3rem .6rem; text-align: right; }
th { background: #eef1f5; } td:first-child, th:first-child { text-align: left; }
.bad { color: #b3261e; font-weight: 600; } .ok { color: #1b6e3b; }
.meta { color: #5b6472; font-size: .8rem; }
svg { background: #fcfcfd; border: 1px solid #e3e6eb; border-radius: .4rem; }
"""


def _svg_line_chart(
    points: list[tuple[float, float]],
    *,
    width: int = 720,
    height: int = 220,
    stroke: str = "#3564c4",
    hline: tuple[float, str] | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A minimal inline-SVG line chart (polyline + dots + axis labels)."""
    if not points:
        return "<p class='meta'>no data</p>"
    pad = 42
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if hline is not None:
        ys = ys + [hline[0]]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    y_lo -= (y_hi - y_lo) * 0.08
    y_hi += (y_hi - y_lo) * 0.08

    def sx(x: float) -> float:
        return pad + (x - x_lo) / (x_hi - x_lo) * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_lo) / (y_hi - y_lo) * (height - 2 * pad)

    path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    dots = "".join(
        f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='2.6' fill='{stroke}'/>"
        for x, y in points
    )
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        f"role='img' xmlns='http://www.w3.org/2000/svg'>",
        f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
        f"y2='{height - pad}' stroke='#aab2bd'/>",
        f"<line x1='{pad}' y1='{pad}' x2='{pad}' y2='{height - pad}' "
        f"stroke='#aab2bd'/>",
        f"<text x='{pad}' y='{pad - 10}' font-size='11' fill='#5b6472'>"
        f"{html_mod.escape(y_label)} {Table._format_cell(max(p[1] for p in points))}"
        f"</text>",
        f"<text x='{width - pad}' y='{height - pad + 16}' font-size='11' "
        f"text-anchor='end' fill='#5b6472'>{html_mod.escape(x_label)}</text>",
    ]
    if hline is not None:
        y = sy(hline[0])
        parts.append(
            f"<line x1='{pad}' y1='{y:.1f}' x2='{width - pad}' y2='{y:.1f}' "
            f"stroke='#b3261e' stroke-dasharray='5 4'/>"
            f"<text x='{width - pad}' y='{y - 4:.1f}' font-size='10' "
            f"text-anchor='end' fill='#b3261e'>{html_mod.escape(hline[1])}</text>"
        )
    parts.append(
        f"<polyline points='{path}' fill='none' stroke='{stroke}' stroke-width='1.8'/>"
    )
    parts.append(dots)
    parts.append("</svg>")
    return "".join(parts)


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{html_mod.escape(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{html_mod.escape(title)}</h1>{body}"
        "<p class='meta'>generated by python -m repro obs report "
        "(self-contained, no external assets)</p></body></html>"
    )


def _tile(key: str, value: Any) -> str:
    return (
        f"<div class='tile'><div class='v'>{html_mod.escape(_fmt(value))}</div>"
        f"<div class='k'>{html_mod.escape(key)}</div></div>"
    )


_TILE_METRICS = [
    "engine_runs", "slots", "slots_per_sec", "transmissions", "collisions",
    "collisions_per_node", "deliveries", "wall_s", "faults",
]


def render_run_html(store: RunStore, run: dict[str, Any]) -> str:
    """One run as a self-contained HTML dashboard."""
    run_id = run["id"]
    metrics = store.metrics_for(run_id)
    body: list[str] = []
    created = run.get("created")
    body.append(
        "<p class='meta'>"
        + html_mod.escape(
            f"run {run_id} · {run.get('command') or 'unknown command'} · "
            f"seed {run.get('seed')} · fingerprint {str(run['fingerprint'])[:12]} · "
            f"git {(run.get('git_sha') or '-')[:12]} · "
            + (time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(created))
               if created else "-")
        )
        + "</p>"
    )
    body.append("<div class='tiles'>")
    for key in _TILE_METRICS:
        if key in metrics:
            body.append(_tile(key, metrics[key]))
    body.append("</div>")

    series = store.series_for(run_id, "slots_per_sec")
    if series:
        body.append("<h2>Engine throughput over the run</h2>")
        body.append(_svg_line_chart(series, x_label="slot", y_label="slots/sec"))

    progress = store.series_for(run_id, "progress")
    if progress:
        body.append("<h2>Campaign progress</h2>")
        body.append(_svg_line_chart(progress, stroke="#1b6e3b",
                                    x_label="elapsed s", y_label="items done"))

    phases = store.phases_for(run_id)
    if phases:
        body.append("<h2>Phase markers</h2><table><tr><th>proto</th><th>index</th>"
                    "<th>count</th><th>slot mean</th><th>mean length</th></tr>")
        for row in phases:
            body.append(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>"
                .format(*(html_mod.escape(_fmt(v)) for v in (
                    row["proto"], row["idx"], row["count"],
                    row["slot_mean"], row["mean_length"],
                )))
            )
        body.append("</table>")

    others = {k: v for k, v in sorted(metrics.items()) if k not in _TILE_METRICS}
    if others:
        body.append("<h2>All aggregates</h2><table>"
                    "<tr><th>metric</th><th>value</th></tr>")
        for name, value in others.items():
            body.append(f"<tr><td>{html_mod.escape(name)}</td>"
                        f"<td>{html_mod.escape(_fmt(value))}</td></tr>")
        body.append("</table>")

    prov_count = store.provenance_count(run_id)
    if prov_count:
        body.append(
            f"<h2>Causal provenance</h2><p class='meta'>{prov_count} "
            f"(node, slot) entries — query with <code>python -m repro obs explain "
            f"{html_mod.escape(str(store.path))} --run {run_id} --node V --slot T"
            f"</code></p>"
        )
    title = f"repro run {run_id} — {run.get('command') or 'telemetry log'}"
    return _page(title, "".join(body))


def render_trend_html(
    metric: str,
    points: list[TrendPoint],
    verdict: dict[str, Any] | None = None,
    *,
    source: str = "runs",
) -> str:
    """A trend series (runs or bench trajectory) as an HTML dashboard."""
    body: list[str] = []
    values = [p.value for p in points]
    body.append("<div class='tiles'>")
    body.append(_tile("points", len(points)))
    if values:
        body.append(_tile("latest", values[-1]))
        body.append(_tile("best", max(values)))
    if verdict is not None and verdict.get("baseline") is not None:
        body.append(_tile("baseline (median)", verdict["baseline"]))
        status = "REGRESSED" if verdict["regressed"] else "ok"
        cls = "bad" if verdict["regressed"] else "ok"
        body.append(
            f"<div class='tile'><div class='v {cls}'>{status}</div>"
            f"<div class='k'>vs threshold {verdict['threshold']:.0%} "
            f"({verdict['direction']})</div></div>"
        )
    body.append("</div>")

    hline = None
    if verdict is not None:
        tripwire = verdict.get("floor", verdict.get("ceiling"))
        if tripwire is not None:
            kind = "floor" if "floor" in verdict else "ceiling"
            hline = (tripwire, f"{kind} {Table._format_cell(tripwire)}")
    body.append(f"<h2>{html_mod.escape(metric)} over {source}</h2>")
    body.append(
        _svg_line_chart(
            [(float(i + 1), p.value) for i, p in enumerate(points)],
            hline=hline, x_label=f"{source} (ordered)", y_label=metric,
        )
    )

    body.append("<h2>Points</h2><table><tr><th>#</th><th>label</th>"
                f"<th>{html_mod.escape(metric)}</th><th>vs prev</th></tr>")
    for i, point in enumerate(points):
        prev = values[i - 1] if i else None
        vs = f"{(point.value - prev) / abs(prev) * 100.0:+.1f}%" if prev else "-"
        body.append(
            f"<tr><td>{i + 1}</td><td>{html_mod.escape(point.label)}</td>"
            f"<td>{html_mod.escape(_fmt(point.value))}</td><td>{vs}</td></tr>"
        )
    body.append("</table>")
    if verdict is not None:
        body.append(
            "<p class='meta'>verdict: "
            + html_mod.escape(json.dumps(
                {k: v for k, v in verdict.items() if k != "points"},
                sort_keys=True, default=repr))
            + "</p>"
        )
    return _page(f"repro trend — {metric} ({source})", "".join(body))
