"""Load telemetry logs and bench records into the run store.

Two source shapes are understood, auto-detected per file:

* **Telemetry JSON-lines logs** written by ``--telemetry`` (plus their
  ``<log>.manifest.json`` sidecar when present).  The log is rolled up
  with the PR-3 summarizer; the aggregates, the ``slot_batch`` /
  ``progress`` time series, the phase tables, and any ``prov``
  (causal provenance) events land in the store under one run row.
* **Bench records** — ``BENCH_engine.json`` (one measurement object)
  or the append-only ``bench_history.jsonl`` trajectory the bench
  harness maintains (one measurement per line).

Ingest is idempotent end to end: a run is keyed on a fingerprint of
its manifest, a bench point on a digest of its payload, so pointing
``obs ingest`` at the same files twice changes nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.obs.store import RunStore
from repro.telemetry.summary import read_records, summarize

__all__ = [
    "IngestResult",
    "fingerprint_of",
    "ingest_log",
    "ingest_bench_file",
    "ingest_path",
]


@dataclass
class IngestResult:
    """What one ``obs ingest`` call did."""

    path: str
    kind: str  # "log" | "bench"
    run_id: int | None = None
    replaced: bool = False
    records: int = 0
    provenance_rows: int = 0
    bench_points: int = 0
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.kind == "bench":
            return (
                f"{self.path}: bench file, {self.bench_points} new point(s)"
            )
        action = "re-ingested (replaced)" if self.replaced else "ingested"
        prov = f", {self.provenance_rows} provenance rows" if self.provenance_rows else ""
        return (
            f"{self.path}: {action} as run {self.run_id} "
            f"({self.records} records{prov})"
        )


def fingerprint_of(manifest: dict[str, Any] | None, path: Path) -> str:
    """The idempotency key of one log: a digest of its manifest.

    A manifest pins the campaign (seed, config fingerprint, creation
    time, host, pid), so the same log always maps to the same run row.
    Logs without a manifest fall back to a digest of the file content.
    """
    if manifest:
        canonical = json.dumps(manifest, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return hashlib.sha256(path.read_bytes()).hexdigest()[:16]


def _sidecar_manifest(path: Path) -> dict[str, Any] | None:
    sidecar = path.with_name(path.name + ".manifest.json")
    if not sidecar.exists():
        return None
    try:
        loaded = json.loads(sidecar.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _normalize_node(node: Any) -> str:
    """Stable text key for a node label (JSON round-trips tuples as lists)."""
    if isinstance(node, list):
        node = tuple(node)
    return str(node)


def _aggregate_metrics(summary: dict[str, Any]) -> dict[str, float]:
    """The scalar per-run aggregates the trend/compare layers work on."""
    runs = summary["runs"]
    metrics: dict[str, float] = {
        "engine_runs": runs["count"],
        "slots": runs["slots"],
        "transmissions": runs["transmissions"],
        "collisions": runs["collisions"],
        "deliveries": runs["deliveries"],
        "jam_transmissions": runs["jam_transmissions"],
        "wall_s": runs["wall_s"],
        "slots_per_sec": runs["slots_per_sec"],
        "faults": summary["faults"],
    }
    chunks = summary["chunks"]
    metrics["chunks"] = chunks["count"]
    if chunks["count"]:
        metrics["chunk_retries"] = chunks.get("retries", 0)
        metrics["chunk_timeouts"] = chunks.get("timeouts", 0)
    campaigns = summary["campaigns"]
    metrics["campaigns"] = campaigns["count"]
    if campaigns["count"]:
        metrics["campaign_wall_s"] = campaigns["wall_s"]
        metrics["campaign_retries"] = campaigns["retries"]
        metrics["campaign_timeouts"] = campaigns["timeouts"]
    for name, entry in summary["spans"].items():
        metrics[f"span.{name}.total_s"] = entry["total_s"]
    # Fleet aggregates (PR 5/7 record kinds): fabric lease audit,
    # worker fleet size, alert/chaos volume, last registry snapshot.
    fleet = summary.get("fleet") or {}
    if fleet.get("alerts"):
        metrics["alerts"] = fleet["alerts"]
    if fleet.get("chaos_trials"):
        metrics["chaos_trials"] = fleet["chaos_trials"]
    if fleet.get("fabric_runs"):
        metrics["fabric.runs"] = fleet["fabric_runs"]
        metrics["fabric.wall_s"] = fleet["fabric_wall_s"]
        metrics["fabric.chunks"] = fleet["fabric_chunks"]
    if fleet.get("lease_events"):
        metrics["fabric.workers"] = len(fleet.get("workers", []))
        metrics["fabric.takeovers"] = fleet.get("takeovers", 0)
        metrics["fabric.fence_rejects"] = fleet.get("fence_rejects", 0)
        for event, count in fleet["lease_events"].items():
            metrics[f"fabric.lease.{event}"] = count
    for name, total in fleet.get("metrics_totals", {}).items():
        metrics[f"fleet.{name}"] = total
    # Performance plane (repro.perf + the cProfile hook): sampled
    # volume, per-span attributed cost, and `perf.hotspot.*` rows from
    # `--profile` events (previously dropped on ingest).
    perf = summary.get("perf") or {}
    if perf.get("profiles"):
        metrics["perf.samples"] = perf["samples"]
        metrics["perf.sample_wall_s"] = perf["sample_wall_s"]
    for label, entry in perf.get("spans", {}).items():
        key = _metric_key(label)
        metrics[f"perf.span.{key}.secs"] = entry["secs"]
        metrics[f"perf.span.{key}.samples"] = entry["samples"]
        if entry.get("mem_peak_kb"):
            metrics[f"perf.span.{key}.mem_peak_kb"] = entry["mem_peak_kb"]
    hotspots = perf.get("hotspots") or []
    if hotspots:
        metrics["perf.hotspot.rows"] = len(hotspots)
        for row in hotspots[:_HOTSPOT_METRICS]:
            key = _metric_key(_short_func(str(row.get("func", "?"))))
            cumtime = row.get("cumtime_s")
            tottime = row.get("tottime_s")
            if isinstance(cumtime, (int, float)):
                metrics[f"perf.hotspot.{key}.cumtime_s"] = float(cumtime)
            if isinstance(tottime, (int, float)):
                metrics[f"perf.hotspot.{key}.tottime_s"] = float(tottime)
    return metrics


#: How many cProfile hotspot rows become per-run metrics; the rest
#: stay in the telemetry log (metric-name cardinality is kept bounded).
_HOTSPOT_METRICS = 5


def _short_func(func: str) -> str:
    """``/long/path/mod.py:42(name)`` -> ``mod.py:42(name)``."""
    head, _, tail = func.rpartition("(")
    if tail:
        head = head.rstrip()
    base = head.split("/")[-1].split("\\")[-1]
    return f"{base}({tail}" if tail else base


def _metric_key(text: str) -> str:
    """A metric-name-safe key: spaces and odd punctuation collapsed."""
    cleaned = [
        ch if (ch.isalnum() or ch in "._:()<>-") else "_" for ch in text.strip()
    ]
    return "".join(cleaned) or "_"


def ingest_log(store: RunStore, path: str | os.PathLike[str]) -> IngestResult:
    """Ingest one telemetry JSON-lines log as a run row (idempotent)."""
    log = Path(path)
    records = read_records(log)  # tolerant: skips torn/invalid lines
    manifest = _sidecar_manifest(log)
    if manifest is None:
        manifests = [r for r in records if r.get("kind") == "manifest"]
        manifest = manifests[0] if manifests else None
    fingerprint = fingerprint_of(manifest, log)

    summary = summarize(records)
    metrics = _aggregate_metrics(summary)

    # Per-run node totals come from run_begin records (the engine stamps
    # each run's topology size); they turn raw collision counts into the
    # per-node rate the paper's Lemma 2 accounting cares about.
    nodes_total = sum(r.get("nodes", 0) for r in records if r.get("kind") == "run_begin")
    if nodes_total:
        metrics["nodes_total"] = nodes_total
        metrics["collisions_per_node"] = metrics["collisions"] / nodes_total

    manifest = manifest or {}
    config = manifest.get("config")
    info = {
        "command": manifest.get("command"),
        "seed": manifest.get("seed"),
        "created": manifest.get("created"),
        "git_sha": manifest.get("git_sha"),
        "host": manifest.get("host"),
        "package_version": manifest.get("package_version"),
        "config_fingerprint": manifest.get("config_fingerprint"),
        "config_json": (
            json.dumps(config, sort_keys=True, default=repr)
            if isinstance(config, dict) else None
        ),
        "source_path": str(log),
        "records": len(records),
        "ingested_at": time.time(),
    }
    run_id, replaced = store.upsert_run(fingerprint, info)
    store.add_metrics(run_id, metrics)

    batches = [r for r in records if r.get("kind") == "slot_batch"]
    if batches:
        store.add_series(
            run_id, "slots_per_sec",
            [(r["slot"], r["slots_per_sec"]) for r in batches],
        )
    progress = [r for r in records if r.get("kind") == "progress"]
    if progress:
        store.add_series(
            run_id, "progress", [(r["elapsed_s"], r["done"]) for r in progress]
        )

    phase_rows = [
        {
            "proto": proto,
            "idx": row["index"],
            "count": row["count"],
            "slot_mean": row.get("slot_mean"),
            "mean_length": row.get("mean_length"),
        }
        for proto, rows in summary["phases"].items()
        for row in rows
    ]
    if phase_rows:
        store.add_phases(run_id, phase_rows)

    prov_rows = [
        {
            # Campaign logs hold many engine runs; keep each run's tag
            # (r1, r2, ... — chunk-prefixed for pool workers) so explain
            # can tell same-(node, slot) entries apart.
            "engine_run": r.get("run"),
            "slot": int(r["slot"]),
            "node": _normalize_node(r["node"]),
            "outcome": str(r["outcome"]),
            "tx": [_normalize_node(t) for t in r.get("tx", [])],
            "detail": r.get("detail"),
        }
        for r in records
        if r.get("kind") == "prov"
    ]
    if prov_rows:
        store.add_provenance(run_id, prov_rows)

    return IngestResult(
        path=str(log),
        kind="log",
        run_id=run_id,
        replaced=replaced,
        records=len(records),
        provenance_rows=len(prov_rows),
    )


# -- bench records --------------------------------------------------------

_BENCH_SCHEMA_PREFIX = "repro-bench-engine/"


def _bench_fingerprint(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _is_bench_payload(value: Any) -> bool:
    return (
        isinstance(value, dict)
        and str(value.get("schema", "")).startswith(_BENCH_SCHEMA_PREFIX)
    )


def ingest_bench_file(store: RunStore, path: str | os.PathLike[str]) -> IngestResult:
    """Ingest ``BENCH_engine.json`` or a ``bench_history.jsonl`` trajectory."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no bench file at {source}")
    text = source.read_text(encoding="utf-8")
    payloads: list[dict[str, Any]] = []
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if _is_bench_payload(whole):
        payloads.append(whole)
    elif whole is None:
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExperimentError(f"{source}: line {number}: {exc}") from exc
            if _is_bench_payload(record):
                payloads.append(record)
    if not payloads:
        raise ExperimentError(
            f"{source}: not a bench record (expected schema "
            f"'{_BENCH_SCHEMA_PREFIX}...' as an object or JSON lines)"
        )
    new = sum(
        1 for payload in payloads
        if store.add_bench_point(_bench_fingerprint(payload), payload)
    )
    return IngestResult(path=str(source), kind="bench", bench_points=new)


def ingest_path(store: RunStore, path: str | os.PathLike[str]) -> IngestResult:
    """Ingest one file, auto-detecting bench records vs telemetry logs."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no such file: {source}")
    head = ""
    try:
        with source.open("r", encoding="utf-8", errors="replace") as stream:
            head = stream.readline()
    except OSError as exc:
        raise ExperimentError(f"cannot read {source}: {exc}") from exc
    if _BENCH_SCHEMA_PREFIX in head or (
        head.strip().startswith("{") and _BENCH_SCHEMA_PREFIX in source.read_text(
            encoding="utf-8", errors="replace"
        )[:4096]
    ):
        try:
            return ingest_bench_file(store, source)
        except ExperimentError:
            pass  # looked bench-shaped but wasn't; fall through to log ingest
    return ingest_log(store, source)
