"""ASCII visualisation of simulation runs.

Terminal-friendly renderings used by the examples and handy when
debugging protocols:

* :func:`timeline` — a node × slot matrix of actions:
  ``T`` transmit, ``r`` receive-and-heard, ``.`` receive-but-silence,
  ``x`` receive-into-collision, `` `` idle.  Reading a Decay broadcast
  timeline makes the phase structure and the thinning of transmitter
  sets visible at a glance.
* :func:`reception_wave` — histogram of first receptions per slot
  (the broadcast wavefront).
* :func:`phase_ruler` — a header row marking phase boundaries.

All functions are pure: they take a recorded
:class:`~repro.sim.trace.Trace` (run the engine with
``record_trace=True``) and return strings.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.errors import ReproError
from repro.sim.trace import Trace

__all__ = ["timeline", "reception_wave", "phase_ruler"]

Node = Hashable


def timeline(
    trace: Trace,
    nodes: Sequence[Node],
    *,
    max_slots: int | None = None,
) -> str:
    """Render a node × slot action matrix (see module docs for glyphs)."""
    if not nodes:
        raise ReproError("timeline needs at least one node")
    records = trace.records if max_slots is None else trace.records[:max_slots]
    label_width = max(len(str(node)) for node in nodes)
    lines = []
    for node in nodes:
        cells = []
        for rec in records:
            if node in rec.transmitters:
                cells.append("T")
            elif node in rec.receivers:
                if node in rec.deliveries:
                    cells.append("r")
                elif rec.conflict_counts.get(node, 0) >= 2:
                    cells.append("x")
                else:
                    cells.append(".")
            else:
                cells.append(" ")
        lines.append(f"{str(node):>{label_width}} |{''.join(cells)}|")
    return "\n".join(lines)


def phase_ruler(num_slots: int, phase_len: int, *, label_width: int = 0) -> str:
    """A ruler row with ``|`` at each phase boundary (slot ≡ 0 mod k)."""
    if phase_len < 1:
        raise ReproError("phase_len must be >= 1")
    marks = "".join(
        "|" if slot % phase_len == 0 else "-" for slot in range(num_slots)
    )
    return f"{'':>{label_width}} |{marks}|"


def reception_wave(trace: Trace, *, width: int = 50) -> str:
    """Histogram of first receptions per slot (the broadcast wavefront)."""
    first: dict[Node, int] = {}
    for rec in trace:
        for node in rec.deliveries:
            first.setdefault(node, rec.slot)
    if not first:
        return "(no node ever received anything)"
    counts: dict[int, int] = {}
    for slot in first.values():
        counts[slot] = counts.get(slot, 0) + 1
    peak = max(counts.values())
    lines = []
    for slot in sorted(counts):
        bar = "#" * max(1, round(counts[slot] / peak * width))
        lines.append(f"slot {slot:>4} | {bar} {counts[slot]}")
    return "\n".join(lines)
