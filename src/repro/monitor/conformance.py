"""Streaming conformance checkers: the paper's bounds as runtime SLOs.

Each checker consumes the telemetry event stream record by record and
fires structured :class:`Alert`\\ s when a run drifts outside the
analytic envelope the paper proves:

* :class:`DecaySuccessChecker` — **Theorem 1 / Lemma 2**: each seeded
  broadcast run succeeds (every node informed) with probability at
  least ``1 − 2ε`` (Theorem 4's guarantee, built phase by phase from
  Theorem 1's Decay success probability).  The checker keeps a running
  Bernoulli tally over ``run_end`` records and fires only when the
  observed success count is *statistically incompatible* with the
  target: ``P[Binomial(T, 1−2ε) ≤ S]`` — bounded with the same
  Hoeffding tail the proof of Lemma 3 uses
  (:func:`repro.analysis.theory.hoeffding_lower_tail`) — must drop
  below ``alpha`` before the alert fires.  By construction the false-
  positive probability of each evaluation on a nominal campaign is at
  most ``alpha``.
* :class:`BroadcastBudgetChecker` — **Theorem 4**: completion must land
  within the ``2⌈log Δ⌉·T(ε)`` slot budget
  (:func:`repro.core.bounds.theorem4_slot_bound`).  A run *conforms*
  when it both succeeds and its ``last_reception_slot`` is inside the
  budget; the conforming fraction is held to ``1 − 2ε`` with the same
  Hoeffding gate.  ``D`` and ``Δ`` default to their sound worst case
  (``n − 1``) when the topology is not known to the monitor; pass
  ``diameter``/``max_degree`` to tighten the budget.
* :class:`OmegaFloorChecker` — **the Ω(n) hitting-game floor**: armed
  for deterministic protocols, where completing a broadcast in fewer
  than ``⌈n/2⌉`` slots would *beat* the paper's lower bound — which can
  only mean the simulation's accounting is broken.  A tripwire for the
  lower-bound machinery, not a performance SLO.
* :class:`AccountingChecker` — engine safety: every informed
  non-initiator was informed *by a delivery*, so
  ``informed − initiators ≤ deliveries`` in every run, however
  hostile the fault schedule.
* :class:`ChaosInvariantChecker` — **property 3** (the connectivity
  proviso), judged live from ``chaos_trial`` records: any safety
  violation fires immediately; the proviso arm's success rate is held
  to ``1 − ε − mc_slack``; a control-arm success (broadcast surviving
  a severed spanning-tree cut) fires because it means the proviso was
  not load-bearing — i.e. the fault injection itself regressed.

:class:`ConformanceMonitor` owns a set of checkers, feeds them the
stream, collects fired alerts, and hands each one to an ``on_alert``
callback (the live monitor emits them back into the telemetry stream
as validated ``alert`` records).  Decay/budget checkers disarm
automatically when the stream turns out to be a chaos campaign — its
control arm fails broadcasts *by design*, and the chaos checker judges
those with arm awareness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.analysis.theory import chernoff_binomial_upper_tail, hoeffding_lower_tail
from repro.core.bounds import theorem4_slot_bound

__all__ = [
    "Alert",
    "MonitorConfig",
    "RunIndex",
    "ConformanceChecker",
    "DecaySuccessChecker",
    "BroadcastBudgetChecker",
    "OmegaFloorChecker",
    "AccountingChecker",
    "ChaosInvariantChecker",
    "FleetLeaseChecker",
    "ConformanceMonitor",
    "default_checkers",
]

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

#: Default per-run failure budget when neither the CLI nor the log's
#: manifest pins epsilon (matches the chaos default).
DEFAULT_EPSILON = 0.1


@dataclass(frozen=True)
class Alert:
    """One fired SLO, ready to be emitted as an ``alert`` record."""

    rule: str
    severity: str
    message: str
    theorem: str | None = None
    value: float | None = None
    threshold: float | None = None
    run: str | None = None

    def record_fields(self) -> dict[str, Any]:
        """The fields of the schema's ``alert`` kind (None dropped)."""
        fields: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("theorem", "value", "threshold", "run"):
            value = getattr(self, key)
            if value is not None:
                fields[key] = value
        return fields

    def describe(self) -> str:
        theorem = f" [theorem {self.theorem}]" if self.theorem else ""
        return f"{self.severity.upper()} {self.rule}{theorem}: {self.message}"


@dataclass(frozen=True)
class MonitorConfig:
    """Shared checker knobs (CLI flags > manifest config > defaults)."""

    epsilon: float | None = None
    alpha: float = 1e-4
    min_runs: int = 8
    diameter: int | None = None
    max_degree: int | None = None
    deterministic_floor: bool = False

    @property
    def eps(self) -> float:
        return self.epsilon if self.epsilon is not None else DEFAULT_EPSILON

    @classmethod
    def from_manifest(
        cls, manifest: dict[str, Any] | None, **overrides: Any
    ) -> "MonitorConfig":
        """Resolve epsilon from a run manifest's config when not overridden."""
        if overrides.get("epsilon") is None and manifest:
            config = manifest.get("config")
            if isinstance(config, dict):
                epsilon = config.get("epsilon")
                if isinstance(epsilon, (int, float)) and not isinstance(epsilon, bool):
                    overrides["epsilon"] = float(epsilon)
        return cls(**{k: v for k, v in overrides.items() if v is not None})


class RunIndex:
    """``run_begin`` context, keyed so campaign logs resolve correctly.

    Pool workers ship their records back chunk-tagged, so the engine-run
    tag ``r1`` repeats across chunks; ``(chunk, run)`` is unique.
    """

    def __init__(self) -> None:
        self._begins: dict[tuple[Any, Any], dict[str, Any]] = {}

    @staticmethod
    def key(record: dict[str, Any]) -> tuple[Any, Any]:
        return (record.get("chunk"), record.get("run"))

    def note(self, record: dict[str, Any]) -> None:
        if record.get("kind") == "run_begin":
            self._begins[self.key(record)] = record

    def begin_for(self, record: dict[str, Any]) -> dict[str, Any] | None:
        return self._begins.get(self.key(record))


def _num(record: dict[str, Any], field_name: str) -> float | None:
    value = record.get(field_name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


class ConformanceChecker:
    """Base checker: feed records, yield alerts; finish() at stream end."""

    rule: str = "conformance"
    theorem: str | None = None
    #: Checkers judging plain broadcast runs are disarmed when the
    #: stream turns out to be a chaos campaign (its control arm fails
    #: broadcasts by design).
    chaos_incompatible: bool = False

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config or MonitorConfig()

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        raise NotImplementedError

    def finish(self) -> list[Alert]:
        return []


class _BernoulliSLO(ConformanceChecker):
    """Shared machinery: a latched Hoeffding gate over a success tally."""

    def __init__(self, config: MonitorConfig | None = None) -> None:
        super().__init__(config)
        self.trials = 0
        self.successes = 0
        self.fired = False

    @property
    def target(self) -> float:
        """The guaranteed per-trial success probability being enforced."""
        return max(0.0, 1.0 - 2.0 * self.config.eps)

    def observe(self, success: bool, run: str | None) -> list[Alert]:
        self.trials += 1
        if success:
            self.successes += 1
        if self.fired or self.trials < self.config.min_runs:
            return []
        target = self.target
        tail = hoeffding_lower_tail(self.trials, target, self.successes)
        if tail >= self.config.alpha:
            return []
        self.fired = True
        rate = self.successes / self.trials
        return [
            Alert(
                rule=self.rule,
                severity=SEVERITY_CRITICAL,
                message=self._message(rate, target, tail),
                theorem=self.theorem,
                value=rate,
                threshold=target,
                run=run,
            )
        ]

    def _message(self, rate: float, target: float, tail: float) -> str:
        raise NotImplementedError


class DecaySuccessChecker(_BernoulliSLO):
    """Theorem 1 / Lemma 2: per-run broadcast success stays ≥ 1 − 2ε."""

    rule = "theorem1-decay"
    theorem = "1"
    chaos_incompatible = True

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "run_end":
            return []
        begin = runs.begin_for(record)
        if begin is None:
            return []
        nodes = _num(begin, "nodes")
        informed = _num(record, "informed")
        if nodes is None or informed is None:
            return []
        return self.observe(informed >= nodes, record.get("run"))

    def _message(self, rate: float, target: float, tail: float) -> str:
        return (
            f"Decay broadcast success rate {rate:.0%} over {self.trials} runs "
            f"is statistically below the Theorem 1/Lemma 2 floor {target:.0%} "
            f"(Hoeffding tail {tail:.2e} < alpha {self.config.alpha:.0e})"
        )


class BroadcastBudgetChecker(_BernoulliSLO):
    """Theorem 4: completion lands within 2⌈log Δ⌉·T(ε) slots, w.p. ≥ 1−2ε."""

    rule = "theorem4-budget"
    theorem = "4"
    chaos_incompatible = True

    def budget_for(self, nodes: int) -> int:
        diameter = self.config.diameter
        max_degree = self.config.max_degree
        if diameter is None:
            diameter = max(1, nodes - 1)  # sound worst case
        if max_degree is None:
            max_degree = max(1, nodes - 1)
        return theorem4_slot_bound(nodes, diameter, max_degree, self.config.eps)

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "run_end":
            return []
        begin = runs.begin_for(record)
        if begin is None:
            return []
        nodes = _num(begin, "nodes")
        informed = _num(record, "informed")
        if nodes is None or informed is None:
            return []
        success = informed >= nodes
        completion = _num(record, "last_reception_slot")
        if success and completion is not None:
            conform = completion <= self.budget_for(int(nodes))
        else:
            # No completion slot recorded (pre-bus log): only success can
            # be judged; the decay checker covers that axis anyway.
            conform = success
        return self.observe(conform, record.get("run"))

    def _message(self, rate: float, target: float, tail: float) -> str:
        return (
            f"only {rate:.0%} of {self.trials} runs completed inside the "
            f"Theorem 4 slot budget 2⌈log Δ⌉·T(ε); the theorem guarantees "
            f"{target:.0%} (Hoeffding tail {tail:.2e} < alpha "
            f"{self.config.alpha:.0e})"
        )


class OmegaFloorChecker(ConformanceChecker):
    """Ω(n) hitting-game floor: deterministic runs cannot finish too fast.

    Only meaningful when the monitored runs are deterministic protocols
    (the lower-bound family); arm it with
    ``MonitorConfig(deterministic_floor=True)`` / ``--assume-deterministic``.
    """

    rule = "omega-n-floor"
    theorem = "lower-bound"
    _MAX_ALERTS = 5

    def __init__(self, config: MonitorConfig | None = None) -> None:
        super().__init__(config)
        self.fired_count = 0

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "run_end" or self.fired_count >= self._MAX_ALERTS:
            return []
        begin = runs.begin_for(record)
        if begin is None:
            return []
        nodes = _num(begin, "nodes")
        informed = _num(record, "informed")
        completion = _num(record, "last_reception_slot")
        if nodes is None or informed is None or completion is None:
            return []
        if informed < nodes or nodes < 4:
            return []
        floor = math.ceil(nodes / 2)
        if completion >= floor:
            return []
        self.fired_count += 1
        return [
            Alert(
                rule=self.rule,
                severity=SEVERITY_CRITICAL,
                message=(
                    f"deterministic broadcast over n={int(nodes)} completed at "
                    f"slot {int(completion)}, beating the Ω(n) hitting-game "
                    f"floor ⌈n/2⌉={floor} — the lower-bound accounting is "
                    f"broken"
                ),
                theorem=self.theorem,
                value=completion,
                threshold=float(floor),
                run=record.get("run"),
            )
        ]


class AccountingChecker(ConformanceChecker):
    """Engine safety: informed − initiators ≤ deliveries, in every run."""

    rule = "delivery-accounting"
    theorem = "safety"
    _MAX_ALERTS = 5

    def __init__(self, config: MonitorConfig | None = None) -> None:
        super().__init__(config)
        self.fired_count = 0

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "run_end" or self.fired_count >= self._MAX_ALERTS:
            return []
        begin = runs.begin_for(record)
        if begin is None:
            return []
        informed = _num(record, "informed")
        deliveries = _num(record, "deliveries")
        initiators = _num(begin, "initiators")
        if informed is None or deliveries is None or initiators is None:
            return []
        newly_informed = informed - initiators
        if newly_informed <= deliveries:
            return []
        self.fired_count += 1
        return [
            Alert(
                rule=self.rule,
                severity=SEVERITY_CRITICAL,
                message=(
                    f"run {record.get('run')!r} reports {int(newly_informed)} "
                    f"newly-informed nodes but only {int(deliveries)} "
                    f"deliveries — a node was informed without a recorded "
                    f"reception (engine accounting broken)"
                ),
                theorem=self.theorem,
                value=newly_informed,
                threshold=deliveries,
                run=record.get("run"),
            )
        ]


class ChaosInvariantChecker(ConformanceChecker):
    """Property 3 invariants, judged live from ``chaos_trial`` records."""

    rule = "chaos"
    theorem = "property-3"
    _MAX_SAFETY_ALERTS = 5

    def __init__(self, config: MonitorConfig | None = None) -> None:
        super().__init__(config)
        self.safety_alerts = 0
        self.proviso_trials = 0
        self.proviso_successes = 0
        self.liveness_fired = False
        self.control_trials = 0
        self.control_successes = 0
        self.control_fired = False

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "chaos_trial":
            return []
        alerts: list[Alert] = []
        violations = _num(record, "violations") or 0
        if violations > 0 and self.safety_alerts < self._MAX_SAFETY_ALERTS:
            self.safety_alerts += 1
            alerts.append(
                Alert(
                    rule="chaos-safety",
                    severity=SEVERITY_CRITICAL,
                    message=(
                        f"chaos trial seed={record.get('seed')} "
                        f"arm={record.get('arm')} recorded "
                        f"{int(violations)} safety violation(s) — adversity "
                        f"must never corrupt the broadcast"
                    ),
                    theorem=self.theorem,
                    value=violations,
                    threshold=0.0,
                    run=record.get("run"),
                )
            )
        arm = record.get("arm")
        success = bool(record.get("success"))
        if arm == "proviso":
            alerts.extend(self._feed_proviso(record, success))
        elif arm == "control":
            alerts.extend(self._feed_control(record, success))
        return alerts

    def _feed_proviso(self, record: dict[str, Any], success: bool) -> list[Alert]:
        self.proviso_trials += 1
        if success:
            self.proviso_successes += 1
        if self.liveness_fired or self.proviso_trials < self.config.min_runs:
            return []
        epsilon = _num(record, "epsilon")
        slack = _num(record, "mc_slack")
        threshold = max(
            0.0,
            1.0
            - (epsilon if epsilon is not None else self.config.eps)
            - (slack if slack is not None else 0.1),
        )
        tail = hoeffding_lower_tail(
            self.proviso_trials, threshold, self.proviso_successes
        )
        if tail >= self.config.alpha:
            return []
        self.liveness_fired = True
        rate = self.proviso_successes / self.proviso_trials
        return [
            Alert(
                rule="chaos-liveness",
                severity=SEVERITY_CRITICAL,
                message=(
                    f"proviso-arm success rate {rate:.0%} over "
                    f"{self.proviso_trials} trials is statistically below the "
                    f"property-3 liveness floor {threshold:.0%} "
                    f"(Hoeffding tail {tail:.2e} < alpha "
                    f"{self.config.alpha:.0e})"
                ),
                theorem=self.theorem,
                value=rate,
                threshold=threshold,
                run=record.get("run"),
            )
        ]

    def _feed_control(self, record: dict[str, Any], success: bool) -> list[Alert]:
        self.control_trials += 1
        if success:
            self.control_successes += 1
        if self.control_fired or not self.control_successes:
            return []
        allowed = _num(record, "control_success_max") or 0.0
        if allowed <= 0.0:
            fire = True  # a single success already violates the ceiling
            tail = 0.0
        else:
            tail = chernoff_binomial_upper_tail(
                self.control_trials, allowed, self.control_successes
            )
            fire = tail < self.config.alpha
        if not fire:
            return []
        self.control_fired = True
        rate = self.control_successes / self.control_trials
        return [
            Alert(
                rule="chaos-control",
                severity=SEVERITY_CRITICAL,
                message=(
                    f"control-arm broadcast succeeded in "
                    f"{self.control_successes}/{self.control_trials} trials "
                    f"despite a severed spanning-tree cut (ceiling "
                    f"{allowed:.0%}) — the proviso was not load-bearing, so "
                    f"the fault injection itself has regressed"
                ),
                theorem=self.theorem,
                value=rate,
                threshold=allowed,
                run=record.get("run"),
            )
        ]


class FleetLeaseChecker(ConformanceChecker):
    """Fleet lane: every lease takeover surfaces as a warning alert.

    A takeover is the fabric working as designed — a chunk whose owner
    stopped heartbeating got rescued — but it always means a worker
    died, stalled past its lease TTL, or lost its machine, so operators
    watching the relay (``python -m repro tower``'s ``/stream``,
    webhook receivers) want it pushed, not discovered in a post-mortem
    autopsy.  Fires once per takeover event, not latched: three dead
    workers are three alerts.
    """

    rule = "fleet-takeover"

    def __init__(self, config: MonitorConfig | None = None) -> None:
        super().__init__(config)
        self.takeovers = 0

    def feed(self, record: dict[str, Any], runs: RunIndex) -> list[Alert]:
        if record.get("kind") != "lease" or record.get("event") != "takeover":
            return []
        self.takeovers += 1
        index = record.get("index")
        worker = record.get("worker") or "?"
        detail = record.get("detail") or "expired lease"
        return [
            Alert(
                rule=self.rule,
                severity=SEVERITY_WARNING,
                message=(
                    f"lease takeover #{self.takeovers}: chunk "
                    f"{index} reclaimed by {worker} ({detail})"
                ),
                value=float(index) if isinstance(index, (int, float)) else None,
            )
        ]


class ConformanceMonitor:
    """Feed a telemetry stream through a set of checkers."""

    def __init__(
        self,
        checkers: Iterable[ConformanceChecker],
        *,
        on_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        self.checkers = list(checkers)
        self.runs = RunIndex()
        self.alerts: list[Alert] = []
        self.records_seen = 0
        self._on_alert = on_alert
        self._chaos_mode = False

    def feed(self, record: dict[str, Any]) -> list[Alert]:
        """Process one record; returns (and publishes) any fired alerts."""
        kind = record.get("kind")
        if kind == "alert":
            return []  # never re-check alerts (ours or a prior monitor's)
        self.records_seen += 1
        self.runs.note(record)
        if kind == "chaos_trial" and not self._chaos_mode:
            self._chaos_mode = True
            self.checkers = [
                checker
                for checker in self.checkers
                if not checker.chaos_incompatible
            ]
        fired: list[Alert] = []
        for checker in self.checkers:
            fired.extend(checker.feed(record, self.runs))
        self._publish(fired)
        return fired

    def finish(self) -> list[Alert]:
        """Stream is over: run the checkers' end-of-log evaluations."""
        fired: list[Alert] = []
        for checker in self.checkers:
            fired.extend(checker.finish())
        self._publish(fired)
        return fired

    def _publish(self, fired: list[Alert]) -> None:
        self.alerts.extend(fired)
        if self._on_alert is not None:
            for alert in fired:
                self._on_alert(alert)


def default_checkers(
    config: MonitorConfig, *, manifest: dict[str, Any] | None = None
) -> list[ConformanceChecker]:
    """The standard checker set for a log (manifest decides the family).

    Chaos campaigns get the arm-aware invariant checker; everything
    else gets the Theorem 1 / Theorem 4 SLOs.  The accounting safety
    checker always rides along; streams that *turn out* to be chaos
    campaigns disarm the chaos-incompatible checkers dynamically (see
    :meth:`ConformanceMonitor.feed`), so the manifest is a hint, not a
    requirement.
    """
    command = (manifest or {}).get("command")
    checkers: list[ConformanceChecker] = []
    if command != "chaos":
        checkers.append(DecaySuccessChecker(config))
        checkers.append(BroadcastBudgetChecker(config))
        if config.deterministic_floor:
            checkers.append(OmegaFloorChecker(config))
    checkers.append(ChaosInvariantChecker(config))
    checkers.append(AccountingChecker(config))
    checkers.append(FleetLeaseChecker(config))
    return checkers
