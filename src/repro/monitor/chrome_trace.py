"""Export a telemetry log as Chrome trace events (Perfetto-loadable).

The output follows the Trace Event Format's *JSON object* flavour —
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — which both
``chrome://tracing`` and https://ui.perfetto.dev open directly:

* ``span`` records and ``run_begin``/``run_end`` pairs become complete
  slices (``ph: "X"`` with microsecond ``ts``/``dur``),
* ``phase``, ``fault``, ``chaos_trial``, ``alert``, ``lease`` and
  ``worker`` records become instants (``ph: "i"``) with their payload
  in ``args`` — so fence rejections, takeovers, and worker kills are
  visible instants on the lane of the worker they happened to,
* ``counter``/``gauge``/``progress`` records become counter tracks
  (``ph: "C"``), and fleet ``metrics`` snapshots expand into one track
  per registered metric,
* chunk-tagged worker records are placed on their own thread lane, so
  a parallel campaign renders as one swimlane per chunk under a single
  process, with ``M`` metadata events naming the lanes,
* records stamped with a fabric ``worker`` id land in a **per-worker
  process lane** (their own ``pid``), so a fleet campaign merged from
  N per-worker telemetry logs (see :func:`merge_records`) renders as
  one process per worker plus the coordinating process.

Timestamps are rebased to the first record so traces start at t=0; all
values are microseconds, as the format requires.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "merge_records",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_PID = 1  # the coordinating process; fabric workers get pids 2, 3, ...
_MAIN_TID = 0

_INSTANT_KINDS = {"phase", "fault", "chaos_trial", "alert", "campaign_begin",
                  "campaign_end", "manifest", "lease", "worker",
                  "fabric_begin", "fabric_end"}
_COUNTER_KINDS = {"counter", "gauge", "progress"}


def _ts_of(record: dict[str, Any]) -> float | None:
    ts = record.get("ts")
    if isinstance(ts, bool) or not isinstance(ts, (int, float)):
        return None
    return float(ts)


def _tid_of(record: dict[str, Any]) -> int:
    chunk = record.get("chunk")
    if isinstance(chunk, int) and not isinstance(chunk, bool) and chunk >= 0:
        return chunk + 1  # lane 0 is the coordinating process
    return _MAIN_TID


def _micros(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def _args_of(record: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value
        for key, value in record.items()
        if key not in ("kind", "ts") and isinstance(value, (str, int, float, bool))
    }


def chrome_trace_events(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Translate telemetry records into Trace Event Format events."""
    timestamps = [ts for r in records if (ts := _ts_of(r)) is not None]
    base = min(timestamps) if timestamps else 0.0
    events: list[dict[str, Any]] = []
    lanes: set[tuple[int, int]] = set()
    # Fabric worker id -> process lane, allocated in order of first
    # appearance (deterministic for a ts-sorted merged stream).
    worker_pids: dict[str, int] = {}
    # run_begin records indexed so run_end can close the slice; keyed the
    # same way the conformance RunIndex keys runs: (chunk, run).
    open_runs: dict[tuple[Any, Any], dict[str, Any]] = {}

    def rel(ts: float) -> int:
        return _micros(ts - base)

    def pid_of(record: dict[str, Any]) -> int:
        worker = record.get("worker")
        if not isinstance(worker, str) or not worker:
            return _PID
        pid = worker_pids.get(worker)
        if pid is None:
            pid = _PID + 1 + len(worker_pids)
            worker_pids[worker] = pid
        return pid

    for record in records:
        ts = _ts_of(record)
        if ts is None:
            continue
        kind = record.get("kind")
        pid = pid_of(record)
        tid = _tid_of(record)
        lanes.add((pid, tid))
        if kind == "span":
            dur = record.get("dur_s")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)):
                continue
            # A span record is emitted when the block *ends*.
            events.append({
                "name": str(record.get("name", "span")),
                "cat": "span",
                "ph": "X",
                "ts": rel(ts - dur),
                "dur": max(1, _micros(dur)),
                "pid": pid,
                "tid": tid,
                "args": _args_of(record),
            })
        elif kind == "run_begin":
            open_runs[(record.get("chunk"), record.get("run"))] = record
        elif kind == "run_end":
            begin = open_runs.pop((record.get("chunk"), record.get("run")), None)
            begin_ts = _ts_of(begin) if begin is not None else None
            wall = record.get("wall_s")
            if begin_ts is None and isinstance(wall, (int, float)) \
                    and not isinstance(wall, bool):
                begin_ts = ts - wall
            if begin_ts is None:
                begin_ts = ts
            args = _args_of(record)
            if begin is not None:
                args.update({
                    k: v for k, v in _args_of(begin).items() if k not in args
                })
            events.append({
                "name": f"run {record.get('run', '?')}",
                "cat": "run",
                "ph": "X",
                "ts": rel(begin_ts),
                "dur": max(1, rel(ts) - rel(begin_ts)),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        elif kind == "chunk":
            wall = record.get("wall_s")
            if isinstance(wall, bool) or not isinstance(wall, (int, float)):
                continue
            # Chunk reports are shipped when the chunk finishes.
            events.append({
                "name": f"chunk {record.get('index', record.get('chunk', '?'))}",
                "cat": "chunk",
                "ph": "X",
                "ts": rel(ts - wall),
                "dur": max(1, _micros(wall)),
                "pid": pid,
                "tid": tid,
                "args": _args_of(record),
            })
        elif kind in _COUNTER_KINDS:
            if kind == "progress":
                name, value = "progress", record.get("done")
            else:
                name, value = str(record.get("name", kind)), record.get("value")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            events.append({
                "name": name,
                "cat": kind,
                "ph": "C",
                "ts": rel(ts),
                "pid": pid,
                "tid": tid,
                "args": {name: value},
            })
        elif kind == "metrics":
            # A fleet registry snapshot: one counter track per metric,
            # carrying the label-summed scalar.
            snapshot = record.get("snapshot")
            if not isinstance(snapshot, dict):
                continue
            from repro.fleet.metrics import snapshot_totals

            for metric, total in sorted(snapshot_totals(snapshot).items()):
                events.append({
                    "name": metric,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": rel(ts),
                    "pid": pid,
                    "tid": tid,
                    "args": {metric: total},
                })
        elif kind in _INSTANT_KINDS:
            name = str(kind)
            if kind == "phase":
                name = f"{record.get('proto', 'phase')}[{record.get('index', '?')}]"
            elif kind == "alert":
                name = f"alert:{record.get('rule', '?')}"
            elif kind == "chaos_trial":
                name = f"chaos:{record.get('arm', '?')}"
            elif kind == "lease":
                name = f"lease:{record.get('event', '?')}"
            elif kind == "worker":
                name = f"worker:{record.get('event', '?')}"
            events.append({
                "name": name,
                "cat": str(kind),
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": rel(ts),
                "pid": pid,
                "tid": tid,
                "args": _args_of(record),
            })
    # Close any runs the log never finished (killed campaign): render the
    # begin as an instant so the work is still visible in the trace.
    for begin in open_runs.values():
        begin_ts = _ts_of(begin)
        if begin_ts is None:
            continue
        events.append({
            "name": f"run {begin.get('run', '?')} (unfinished)",
            "cat": "run",
            "ph": "i",
            "s": "t",
            "ts": rel(begin_ts),
            "pid": pid_of(begin),
            "tid": _tid_of(begin),
            "args": _args_of(begin),
        })

    metadata: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": _MAIN_TID,
        "args": {"name": "repro campaign"},
    }]
    for worker, pid in sorted(worker_pids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": _MAIN_TID,
            "args": {"name": f"worker {worker}"},
        })
    for pid, tid in sorted(lanes):
        label = "main" if tid == _MAIN_TID else f"chunk {tid - 1}"
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        })
    return metadata + events


def merge_records(
    streams: Mapping[str, Sequence[dict[str, Any]]]
) -> list[dict[str, Any]]:
    """Merge per-process telemetry streams into one ts-sorted stream.

    ``streams`` maps a lane label (e.g. a fabric worker id, or ``""``
    for the coordinator) to that process's decoded records.  Records
    from a labelled stream that do not already carry a ``worker`` field
    are stamped with the label, so :func:`chrome_trace_events` places
    them on that worker's process lane.  The sort is stable on the
    timestamp, so same-ts records keep their per-stream order.
    """
    merged: list[dict[str, Any]] = []
    for label, records in streams.items():
        for record in records:
            if not isinstance(record, dict):
                continue
            if label and "worker" not in record:
                record = dict(record, worker=label)
            merged.append(record)
    merged.sort(key=lambda r: ts if (ts := _ts_of(r)) is not None else 0.0)
    return merged


def chrome_trace(records: list[dict[str, Any]]) -> dict[str, Any]:
    """The full JSON-object-format trace for a record stream."""
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    records: list[dict[str, Any]], path: str | os.PathLike[str]
) -> dict[str, Any]:
    """Write ``trace.json`` for ``records``; returns the trace object."""
    trace = chrome_trace(records)
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return trace


def validate_chrome_trace(trace: Any) -> list[str]:
    """Structural checks a Trace-Event consumer relies on (CI gate)."""
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "C", "M", "B", "E"):
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an int")
        if ph != "M":
            ts = event.get("ts")
            if isinstance(ts, bool) or not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)) or dur <= 0:
                errors.append(f"{where}: complete event needs positive dur")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args must be an object")
    return errors
