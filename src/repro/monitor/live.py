"""Wire the tail reader, conformance checkers, and status board together.

Two ways in:

* :func:`monitor_log` — out-of-process: read (or ``--follow``) a
  JSON-lines telemetry log and stream it through the checkers.  This is
  what ``python -m repro monitor`` runs.
* :func:`attach_monitor` — in-process: subscribe a :class:`LiveMonitor`
  to the active :class:`~repro.telemetry.core.Telemetry` recorder, so
  ``--monitor`` on ``gap``/``experiment``/``chaos`` checks conformance
  *while the campaign runs* with zero extra file I/O.

Fired alerts are appended to the monitored log as schema-valid
``alert`` records (tagged ``source="monitor"`` with a monotone ``seq``),
so they survive for ``obs ingest``/``telemetry`` and a later monitor
pass can read the same log without double-counting its own output.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.monitor.board import BoardRenderer, StatusBoard
from repro.monitor.conformance import (
    Alert,
    ConformanceMonitor,
    MonitorConfig,
    default_checkers,
)
from repro.monitor.tail import follow_records, read_log_records
from repro.telemetry.core import Telemetry

__all__ = ["MonitorReport", "LiveMonitor", "monitor_log", "attach_monitor"]


@dataclass
class MonitorReport:
    """What a monitoring pass saw — the CLI's exit code comes from here."""

    records: int = 0
    alerts: list[Alert] = field(default_factory=list)
    board: dict[str, Any] = field(default_factory=dict)
    log: str | None = None

    @property
    def gate_failed(self) -> bool:
        return bool(self.alerts)

    def to_json(self) -> dict[str, Any]:
        return {
            "log": self.log,
            "records": self.records,
            "alerts": [alert.record_fields() for alert in self.alerts],
            "gate_failed": self.gate_failed,
            "board": self.board,
        }


class LiveMonitor:
    """One conformance-monitoring pass over a record stream."""

    def __init__(
        self,
        config: MonitorConfig,
        *,
        board: StatusBoard | None = None,
        renderer_factory: Callable[[StatusBoard], BoardRenderer] | None = None,
        emit_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        self.config = config
        # An injected board lets the fleet front end reuse the same SLO
        # gates with per-worker lanes (repro.fleet.board.FleetBoard).
        self.board = board if board is not None else StatusBoard()
        self.renderer = renderer_factory(self.board) if renderer_factory else None
        self._emit_alert = emit_alert
        # Epsilon pinned on the CLI wins; otherwise the stream's own
        # manifest may retune the checkers before the first run lands.
        self._config_pinned = config.epsilon is not None
        self.monitor = ConformanceMonitor(
            default_checkers(config), on_alert=self._on_alert
        )

    def _on_alert(self, alert: Alert) -> None:
        self.board.note_alert(alert)
        if self._emit_alert is not None:
            self._emit_alert(alert)

    def ingest(self, record: dict[str, Any]) -> None:
        if (
            record.get("kind") == "manifest"
            and not self._config_pinned
            and self.monitor.records_seen == 0
        ):
            self._config_pinned = True
            config = MonitorConfig.from_manifest(
                record,
                alpha=self.config.alpha,
                min_runs=self.config.min_runs,
                diameter=self.config.diameter,
                max_degree=self.config.max_degree,
                deterministic_floor=self.config.deterministic_floor or None,
            )
            if config.epsilon is not None:
                self.config = config
                self.monitor = ConformanceMonitor(
                    default_checkers(config, manifest=record),
                    on_alert=self._on_alert,
                )
        self.board.update(record)
        self.monitor.feed(record)
        if self.renderer is not None:
            self.renderer.refresh()

    def finish(self) -> MonitorReport:
        self.monitor.finish()
        if self.renderer is not None:
            self.renderer.close()
        return MonitorReport(
            records=self.monitor.records_seen,
            alerts=list(self.monitor.alerts),
            board=self.board.snapshot(),
        )


class _AlertWriter:
    """Append fired alerts to the monitored log as ``alert`` records."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.seq = 0

    def __call__(self, alert: Alert) -> None:
        self.seq += 1
        record: dict[str, Any] = {
            "kind": "alert",
            "ts": time.time(),
            "source": "monitor",
            "seq": self.seq,
        }
        record.update(alert.record_fields())
        try:
            with self.path.open("a", encoding="utf-8") as stream:
                stream.write(json.dumps(record, default=repr) + "\n")
                stream.flush()
        except OSError:
            pass  # a read-only log loses persistence, not monitoring


def monitor_log(
    path: str | os.PathLike[str],
    *,
    config: MonitorConfig | None = None,
    follow: bool = False,
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
    renderer_factory: Callable[[StatusBoard], BoardRenderer] | None = None,
    write_alerts: bool = True,
) -> MonitorReport:
    """Run a conformance pass over a telemetry log on disk.

    A ``KeyboardInterrupt`` while following ends the pass cleanly: the
    checkers finish and the report covers everything seen so far.
    """
    log = Path(path)
    emit = _AlertWriter(log) if write_alerts else None
    live = LiveMonitor(
        config or MonitorConfig(), renderer_factory=renderer_factory, emit_alert=emit
    )
    records: Iterable[dict[str, Any]]
    if follow:
        records = follow_records(
            log, poll_interval=poll_interval, idle_timeout=idle_timeout, stop=stop
        )
    else:
        records = read_log_records(log)
    try:
        for record in records:
            live.ingest(record)
    except KeyboardInterrupt:
        pass
    report = live.finish()
    report.log = str(log)
    return report


def attach_monitor(
    telemetry: Telemetry,
    *,
    config: MonitorConfig | None = None,
    renderer_factory: Callable[[StatusBoard], BoardRenderer] | None = None,
) -> tuple[LiveMonitor, Callable[[], MonitorReport]]:
    """Subscribe a monitor to a live recorder (the ``--monitor`` flag).

    Fired alerts are emitted straight back into the same telemetry
    stream (``emit("alert", ...)``), giving the log an in-band record of
    every violation; the conformance monitor never re-checks ``alert``
    records, so the loop terminates.  Returns the monitor and a
    ``detach`` callable that unsubscribes and returns the final report.
    """
    seq = {"n": 0}

    def emit(alert: Alert) -> None:
        seq["n"] += 1
        telemetry.emit("alert", source="monitor", seq=seq["n"], **alert.record_fields())

    live = LiveMonitor(
        config or MonitorConfig(), renderer_factory=renderer_factory, emit_alert=emit
    )
    unsubscribe = telemetry.subscribe(live.ingest)

    def detach() -> MonitorReport:
        unsubscribe()
        return live.finish()

    return live, detach
