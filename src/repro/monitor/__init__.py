"""Live conformance monitoring: the paper's bounds as streaming SLOs.

``repro.monitor`` watches a campaign's telemetry — in-process through
the recorder's subscriber bus, or out-of-process by tail-following the
JSON-lines log — and holds what it sees to the theory:

* :mod:`repro.monitor.conformance` — streaming checkers for the
  Theorem 1 Decay success guarantee, the Theorem 4 completion budget,
  the Ω(n) lower-bound floor, delivery accounting, and the chaos
  harness's property-3 invariants; violations become structured
  ``alert`` events in the telemetry schema.
* :mod:`repro.monitor.tail` — torn-write-tolerant JSON-lines tailing.
* :mod:`repro.monitor.board` — the live TTY status board.
* :mod:`repro.monitor.chrome_trace` — Chrome trace-event export
  (open the result in ``chrome://tracing`` or Perfetto).
* :mod:`repro.monitor.live` — the orchestration layer behind
  ``python -m repro monitor`` and the ``--monitor`` campaign flag.
"""

from repro.monitor.board import BoardRenderer, StatusBoard
from repro.monitor.chrome_trace import (
    chrome_trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.monitor.conformance import (
    Alert,
    AccountingChecker,
    BroadcastBudgetChecker,
    ChaosInvariantChecker,
    ConformanceChecker,
    ConformanceMonitor,
    DecaySuccessChecker,
    FleetLeaseChecker,
    MonitorConfig,
    OmegaFloorChecker,
    RunIndex,
    default_checkers,
)
from repro.monitor.live import LiveMonitor, MonitorReport, attach_monitor, monitor_log
from repro.monitor.tail import TailReader, follow_records, read_log_records

__all__ = [
    "Alert",
    "AccountingChecker",
    "BoardRenderer",
    "BroadcastBudgetChecker",
    "ChaosInvariantChecker",
    "ConformanceChecker",
    "ConformanceMonitor",
    "DecaySuccessChecker",
    "FleetLeaseChecker",
    "LiveMonitor",
    "MonitorConfig",
    "MonitorReport",
    "OmegaFloorChecker",
    "RunIndex",
    "StatusBoard",
    "TailReader",
    "attach_monitor",
    "chrome_trace",
    "chrome_trace_events",
    "default_checkers",
    "follow_records",
    "monitor_log",
    "read_log_records",
    "validate_chrome_trace",
    "write_chrome_trace",
]
