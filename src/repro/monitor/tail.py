"""Tail-follow reading of JSON-lines telemetry logs.

Telemetry writers emit one ``<json>\\n`` line per record and flush as
they go, so an out-of-process monitor can watch a campaign by polling
the file for new bytes.  The subtlety is the *torn tail*: a reader can
race the writer mid-flush and see half a record with no newline yet.
:class:`TailReader` therefore decodes only newline-terminated lines and
buffers the remainder until its newline arrives — a partially-written
final line is *pending*, never an error.

Two front ends:

* :func:`read_log_records` — one-shot read of everything complete in
  the file right now (the non-``--follow`` monitor path).
* :func:`follow_records` — a generator that keeps polling and yields
  records as the writer appends them (the ``--follow`` path), with an
  optional idle timeout and stop predicate so CI runs terminate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import ExperimentError

__all__ = ["TailReader", "read_log_records", "follow_records"]


class TailReader:
    """Incremental, torn-write-tolerant JSON-lines reader.

    Each :meth:`poll` reads whatever bytes the writer has appended
    since the last call, splits off the complete (newline-terminated)
    lines and decodes them; an unterminated tail stays buffered until a
    later poll completes it.  Lines that are complete but undecodable
    (corrupt bytes, truncated by a crash *and* followed by more data)
    are counted in :attr:`invalid` and skipped, mirroring the tolerant
    batch reader in :mod:`repro.telemetry.summary`.

    The reader also survives the file being replaced underneath it:
    an in-place truncation (size shrank) or a rotation (same path, new
    inode) resets the cursor to the top of the new file instead of
    stalling at a stale offset; rotations are counted in
    :attr:`rotations`.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.offset = 0
        self.lineno = 0
        self.invalid = 0
        self.rotations = 0
        self._inode: int | None = None
        self._buffer = b""

    @property
    def pending(self) -> bool:
        """True while a partially-written line is buffered."""
        return bool(self._buffer)

    def _reset(self) -> None:
        self.offset = 0
        self.lineno = 0
        self._buffer = b""

    def poll(self) -> list[dict[str, Any]]:
        """Decode every record completed since the last poll."""
        try:
            stat = self.path.stat()
        except OSError:
            # Not created yet (monitor started first), or mid-rotation:
            # the old file was renamed away and the new one isn't there
            # yet.  Keep the remembered inode — the replacement file
            # gets a different one, which is exactly how the next poll
            # detects the rotation even if the new file happens to be
            # the same size as the old offset.
            return []
        size = stat.st_size
        if self._inode is not None and stat.st_ino != self._inode:
            # The path now names a different file: the log was rotated
            # (renamed away and recreated).  Without this check the
            # reader would keep comparing the *new* file's size against
            # the *old* offset and silently stall forever.
            self.rotations += 1
            self._reset()
        self._inode = stat.st_ino
        if size < self.offset:
            # The file shrank in place: the writer truncated and
            # restarted (a rerun over the same path).  Start over.
            self._reset()
        if size == self.offset:
            return []
        with self.path.open("rb") as stream:
            stream.seek(self.offset)
            chunk = stream.read()
        self.offset += len(chunk)
        data = self._buffer + chunk
        lines = data.split(b"\n")
        self._buffer = lines.pop()  # b"" when data ended on a newline
        records: list[dict[str, Any]] = []
        for raw in lines:
            self.lineno += 1
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8", errors="replace"))
            except json.JSONDecodeError:
                self.invalid += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.invalid += 1
        return records


def read_log_records(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Everything complete in the log right now (torn tail ignored)."""
    log = Path(path)
    if not log.exists():
        raise ExperimentError(f"no telemetry log at {log}")
    return TailReader(log).poll()


def follow_records(
    path: str | os.PathLike[str],
    *,
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield records live as the writer appends them.

    Ends when ``stop()`` turns true, or when no new bytes have arrived
    for ``idle_timeout`` seconds (``None``: follow until interrupted).
    The file may not exist yet when following starts; the idle clock
    covers the wait for its creation too.
    """
    reader = TailReader(path)
    last_data = time.monotonic()
    while True:
        records = reader.poll()
        if records:
            last_data = time.monotonic()
            yield from records
        if stop is not None and stop():
            yield from reader.poll()  # drain what raced the stop signal
            return
        if not records:
            if (
                idle_timeout is not None
                and time.monotonic() - last_data >= idle_timeout
            ):
                return
            time.sleep(poll_interval)
