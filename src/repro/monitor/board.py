"""Live TTY status board for a running campaign.

:class:`StatusBoard` folds the telemetry stream into a small rolling
snapshot (runs completed, slots/sec, collision rate, campaign progress,
open alerts); :class:`BoardRenderer` paints it.  On a real terminal the
board redraws in place with ANSI cursor movement; when stdout is a pipe
(CI, ``| tee``) it degrades to plain status lines emitted at most once
per refresh interval, so logs stay readable and diffable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from repro.monitor.conformance import Alert

__all__ = ["StatusBoard", "BoardRenderer"]


class StatusBoard:
    """Rolling aggregate of the stream, cheap enough to update per record."""

    def __init__(self) -> None:
        self.records = 0
        self.runs_begun = 0
        self.runs_ended = 0
        self.runs_succeeded = 0
        self.slots = 0
        self.transmissions = 0
        self.collisions = 0
        self.deliveries = 0
        self.wall_s = 0.0
        self.faults = 0
        self.chaos_trials = 0
        self.alerts: list[Alert] = []
        self.command: str | None = None
        self.progress_done: int | None = None
        self.progress_total: int | None = None
        self.last_run: str | None = None
        self._nodes: dict[tuple[Any, Any], float] = {}

    def update(self, record: dict[str, Any]) -> None:
        self.records += 1
        kind = record.get("kind")
        if kind == "manifest":
            command = record.get("command")
            if isinstance(command, str):
                self.command = command
        elif kind == "run_begin":
            self.runs_begun += 1
            nodes = record.get("nodes")
            if isinstance(nodes, (int, float)) and not isinstance(nodes, bool):
                self._nodes[(record.get("chunk"), record.get("run"))] = nodes
        elif kind == "run_end":
            self.runs_ended += 1
            run = record.get("run")
            if isinstance(run, str):
                self.last_run = run
            for field_name, attr in (
                ("slots", "slots"),
                ("transmissions", "transmissions"),
                ("collisions", "collisions"),
                ("deliveries", "deliveries"),
                ("wall_s", "wall_s"),
            ):
                value = record.get(field_name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    setattr(self, attr, getattr(self, attr) + value)
            nodes = self._nodes.get((record.get("chunk"), record.get("run")))
            informed = record.get("informed")
            if (
                nodes is not None
                and isinstance(informed, (int, float))
                and not isinstance(informed, bool)
                and informed >= nodes
            ):
                self.runs_succeeded += 1
        elif kind == "fault":
            self.faults += 1
        elif kind == "chaos_trial":
            self.chaos_trials += 1
        elif kind == "progress":
            done = record.get("done")
            total = record.get("total")
            if isinstance(done, (int, float)) and not isinstance(done, bool):
                self.progress_done = int(done)
            if isinstance(total, (int, float)) and not isinstance(total, bool):
                self.progress_total = int(total)

    def note_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)

    @property
    def slots_per_sec(self) -> float:
        return self.slots / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def collision_rate(self) -> float:
        return self.collisions / self.transmissions if self.transmissions else 0.0

    @property
    def success_rate(self) -> float | None:
        if not self.runs_ended:
            return None
        return self.runs_succeeded / self.runs_ended

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable board state (the ``--json`` report embeds it)."""
        return {
            "records": self.records,
            "command": self.command,
            "runs": {
                "begun": self.runs_begun,
                "ended": self.runs_ended,
                "succeeded": self.runs_succeeded,
            },
            "slots": self.slots,
            "slots_per_sec": self.slots_per_sec,
            "collision_rate": self.collision_rate,
            "deliveries": self.deliveries,
            "faults": self.faults,
            "chaos_trials": self.chaos_trials,
            "progress": {
                "done": self.progress_done,
                "total": self.progress_total,
            },
            "alerts": [alert.record_fields() for alert in self.alerts],
        }

    # -- text rendering ---------------------------------------------------

    def lines(self) -> list[str]:
        """The board as fixed-order text lines (both render modes use it)."""
        header = "repro monitor"
        if self.command:
            header += f" — {self.command}"
        parts = [f"runs {self.runs_ended}/{self.runs_begun}"]
        rate = self.success_rate
        if rate is not None:
            parts.append(f"success {rate:.0%}")
        if self.progress_total:
            done = self.progress_done or 0
            parts.append(f"progress {done}/{self.progress_total}")
        if self.chaos_trials:
            parts.append(f"chaos trials {self.chaos_trials}")
        run_line = "  ".join(parts)
        engine_line = (
            f"slots {self.slots}  "
            f"slots/sec {self.slots_per_sec:,.0f}  "
            f"collision rate {self.collision_rate:.1%}  "
            f"faults {self.faults}"
        )
        if self.alerts:
            alert_line = f"ALERTS OPEN: {len(self.alerts)}"
        else:
            alert_line = "alerts: none"
        lines = [header, run_line, engine_line, alert_line]
        for alert in self.alerts[-3:]:
            lines.append(f"  ! {alert.describe()}")
        return lines

    def status_line(self) -> str:
        """One-line form for the plain (non-TTY) renderer."""
        parts = [f"records {self.records}", f"runs {self.runs_ended}"]
        rate = self.success_rate
        if rate is not None:
            parts.append(f"success {rate:.0%}")
        parts.append(f"slots/sec {self.slots_per_sec:,.0f}")
        parts.append(f"collisions {self.collision_rate:.1%}")
        if self.chaos_trials:
            parts.append(f"chaos {self.chaos_trials}")
        parts.append(f"alerts {len(self.alerts)}")
        return "monitor: " + "  ".join(parts)


class BoardRenderer:
    """Paint a :class:`StatusBoard`, in place on a TTY, line-wise otherwise."""

    def __init__(
        self,
        board: StatusBoard,
        *,
        stream: TextIO | None = None,
        interval: float = 0.5,
        plain: bool | None = None,
    ) -> None:
        self.board = board
        self.stream = stream if stream is not None else sys.stdout
        self.interval = interval
        if plain is None:
            plain = not self.stream.isatty()
        self.plain = plain
        self._painted_lines = 0
        self._last_refresh = 0.0
        self._last_plain = ""

    def refresh(self, *, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_refresh < self.interval:
            return
        self._last_refresh = now
        if self.plain:
            line = self.board.status_line()
            if force or line != self._last_plain:
                self._last_plain = line
                print(line, file=self.stream, flush=True)
            return
        lines = self.board.lines()
        out = self.stream
        if self._painted_lines:
            out.write(f"\x1b[{self._painted_lines}F")  # cursor back to top
        for line in lines:
            out.write("\x1b[2K" + line + "\n")  # clear stale tail, repaint
        if self._painted_lines > len(lines):
            for _ in range(self._painted_lines - len(lines)):
                out.write("\x1b[2K\n")
            out.write(f"\x1b[{self._painted_lines - len(lines)}F")
        self._painted_lines = len(lines)
        out.flush()

    def close(self) -> None:
        """Final repaint so the last state stays on screen."""
        self.refresh(force=True)
