"""Process-pool execution layer for Monte-Carlo repetition.

Every quantitative claim in this reproduction is re-derived by seeded
repetition, and :mod:`repro.rng` derives each repetition's seed from
the experiment's master seed and a tag path — *not* from any shared
mutable stream.  Repetitions are therefore order-independent by
construction, which makes them embarrassingly parallel: executing
``run_once(seed)`` for each seed in a process pool yields element-for-
element the same results as a serial loop (a property the test suite
enforces for the flagship experiments).

Knobs
-----
* ``ExperimentConfig(jobs=N)`` — per-experiment worker count;
* ``REPRO_JOBS`` environment variable — fleet-wide default when the
  config leaves ``jobs`` unset;
* ``jobs=1`` (the default) — serial execution, no pool, no pickling;
* ``jobs=0`` — one worker per available CPU.

Work is dispatched in contiguous chunks (a few chunks per worker) so
per-task IPC overhead amortises across many cheap repetitions.  The
callable and a sample item must be picklable to cross the process
boundary; when they are not (e.g. an experiment passes a local
closure), execution silently falls back to the serial path — results
are identical either way, only wall-clock time differs.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ExperimentError

__all__ = ["resolve_jobs", "parallel_map", "parallel_starmap"]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks handed to each worker; >1 smooths out uneven task durations.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a ``jobs`` setting to a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (itself
    defaulting to 1 — serial); ``0`` means "all CPUs"; negative values
    are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ExperimentError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def default_chunksize(num_items: int, jobs: int) -> int:
    """Contiguous chunk length for dispatching ``num_items`` tasks."""
    return max(1, -(-num_items // (jobs * _CHUNKS_PER_WORKER)))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    Results are returned in input order, so the output is identical to
    the serial list comprehension whenever ``fn`` is deterministic per
    item — which every seeded repetition in this library is.  Worker
    exceptions propagate to the caller.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or not _picklable(fn, items[0]):
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = default_chunksize(len(items), jobs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _apply_args(task: tuple[Callable[..., Any], Sequence[Any]]) -> Any:
    fn, args = task
    return fn(*args)


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[Sequence[Any]],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(*args) for args in argument_tuples]`` with pool support."""
    tasks = [(fn, tuple(args)) for args in argument_tuples]
    return parallel_map(_apply_args, tasks, jobs=jobs, chunksize=chunksize)
