"""Process-pool execution layer for Monte-Carlo repetition.

Every quantitative claim in this reproduction is re-derived by seeded
repetition, and :mod:`repro.rng` derives each repetition's seed from
the experiment's master seed and a tag path — *not* from any shared
mutable stream.  Repetitions are therefore order-independent by
construction, which makes them embarrassingly parallel: executing
``run_once(seed)`` for each seed in a process pool yields element-for-
element the same results as a serial loop (a property the test suite
enforces for the flagship experiments).

Knobs
-----
* ``ExperimentConfig(jobs=N)`` — per-experiment worker count;
* ``REPRO_JOBS`` environment variable — fleet-wide default when the
  config leaves ``jobs`` unset;
* ``jobs=1`` (the default) — serial execution, no pool, no pickling;
* ``jobs=0`` — one worker per available CPU.

Work is dispatched in contiguous chunks (a few chunks per worker) so
per-task IPC overhead amortises across many cheap repetitions.  The
callable and a sample item must be picklable to cross the process
boundary; when they are not (e.g. an experiment passes a local
closure), execution falls back to the serial path — results are
identical either way, only wall-clock time differs — and a
``RuntimeWarning`` plus a log record explain why the pool was skipped.

Resilience
----------
:func:`resilient_map` is the hardened front end long campaigns use.
On top of :func:`parallel_map`'s equivalence guarantee it adds:

* **retry with exponential backoff** when a worker process dies
  (``BrokenProcessPool``): the pool is rebuilt and the affected chunks
  are resubmitted — exact, because chunk inputs are re-derived seeds,
  not consumed stream state.  After ``max_retries`` pool attempts the
  blamed chunk is executed in-process, so one poisoned worker cannot
  sink a campaign;
* **per-task timeouts** (``task_timeout`` seconds): a chunk that takes
  longer than ``task_timeout × len(chunk)`` is treated as hung, its
  workers are terminated, and it is retried like a crash;
* **chunk-level checkpoint/resume** via :class:`CampaignJournal`: each
  completed chunk is appended to a journal file, and
  ``resume=True`` restarts a killed campaign from the last completed
  chunk — final results are byte-identical to an uninterrupted run
  because the journal stores the actual chunk results and fixes the
  chunk geometry.

Observability
-------------
When a telemetry recorder is ambient (:mod:`repro.telemetry`),
:func:`resilient_map` reports the campaign as structured events:
``campaign_begin``/``campaign_end``, one ``chunk`` record per
completed chunk (wall time, pool queue wait, retry/timeout counts,
worker PID), and periodic ``progress`` heartbeats with an ETA.  Pool
workers run their chunks under an in-memory recorder and ship the
buffered events (engine runs, protocol phase markers, ...) back with
the results; the parent merges them into the stream tagged with the
chunk index.  The same heartbeat also goes to the ``repro.parallel``
logger at INFO level (``python -m repro ... --log-level INFO``), so
long campaigns are never silent.  ``REPRO_PROGRESS_SECS`` tunes the
heartbeat interval (default 5 s).  Telemetry never changes results:
journals store exactly the chunk results, with or without it.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ExperimentError
from repro.fabric.splice import (
    CHUNKS_PER_WORKER as _CHUNKS_PER_WORKER,
)
from repro.fabric.splice import (
    campaign_fingerprint,
    decode_chunk,
    encode_chunk,
    splice,
)
from repro.fabric.splice import (
    default_chunksize as _default_chunksize,
)
from repro.rng import spawn
from repro.telemetry.core import Telemetry, activate, get_active

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "parallel_starmap",
    "resilient_map",
    "resilient_starmap",
    "CampaignJournal",
    "backoff_delay",
    "default_chunksize",
]

T = TypeVar("T")
R = TypeVar("R")

logger = logging.getLogger("repro.parallel")

#: Environment override for the progress-heartbeat interval (seconds).
_PROGRESS_INTERVAL_ENV = "REPRO_PROGRESS_SECS"
_PROGRESS_INTERVAL_DEFAULT = 5.0


def _progress_interval() -> float:
    raw = os.environ.get(_PROGRESS_INTERVAL_ENV, "").strip()
    if not raw:
        return _PROGRESS_INTERVAL_DEFAULT
    try:
        return max(0.0, float(raw))
    except ValueError:
        logger.warning(
            "%s must be a number, got %r; using %.1fs",
            _PROGRESS_INTERVAL_ENV,
            raw,
            _PROGRESS_INTERVAL_DEFAULT,
        )
        return _PROGRESS_INTERVAL_DEFAULT


class _ProgressReporter:
    """Campaign progress heartbeat: log records + telemetry events.

    One ``note()`` per completed chunk; a heartbeat fires when the
    configured interval has elapsed (and always on the final chunk).
    The ETA extrapolates from chunks completed *this session*, so a
    resumed campaign does not inherit the dead session's pace.
    """

    def __init__(
        self,
        total_chunks: int,
        total_items: int,
        telemetry: Telemetry | None,
        *,
        chunks_done: int = 0,
        items_done: int = 0,
    ) -> None:
        self.total_chunks = total_chunks
        self.total_items = total_items
        self.telemetry = telemetry
        self.done = self._initial_done = chunks_done
        self.items_done = items_done
        self.interval = _progress_interval()
        self._start = self._last = time.perf_counter()

    def note(self, items: int) -> None:
        self.done += 1
        self.items_done += items
        now = time.perf_counter()
        if self.done < self.total_chunks and now - self._last < self.interval:
            return
        self._last = now
        elapsed = now - self._start
        fresh = self.done - self._initial_done
        remaining = self.total_chunks - self.done
        eta = (elapsed / fresh) * remaining if fresh > 0 else 0.0
        logger.info(
            "campaign progress: %d/%d chunks (%d/%d items), elapsed %.1fs, eta %.1fs",
            self.done,
            self.total_chunks,
            self.items_done,
            self.total_items,
            elapsed,
            eta,
        )
        if self.telemetry is not None:
            self.telemetry.emit(
                "progress",
                done=self.done,
                total=self.total_chunks,
                items_done=self.items_done,
                items_total=self.total_items,
                elapsed_s=elapsed,
                eta_s=eta,
            )


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a ``jobs`` setting to a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (itself
    defaulting to 1 — serial); ``0`` means "all CPUs"; negative values
    are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ExperimentError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _warn_serial_fallback(fn: Callable[..., Any]) -> None:
    """Announce (warning + log) that a requested pool was skipped."""
    name = getattr(fn, "__qualname__", repr(fn))
    message = (
        f"parallel execution requested but {name} (or its items) is not "
        "picklable — e.g. a local closure or lambda; running serially "
        "instead.  Results are identical, but the requested speed-up is "
        "lost.  Move the callable to module level to enable the pool."
    )
    warnings.warn(message, RuntimeWarning, stacklevel=4)
    logger.warning(message)


def default_chunksize(num_items: int, jobs: int) -> int:
    """Contiguous chunk length for dispatching ``num_items`` tasks.

    Shared with the multi-worker fabric (see
    :mod:`repro.fabric.splice`) so both execution layers cut a campaign
    into the same chunks and journals stay interchangeable.
    """
    return _default_chunksize(num_items, jobs, chunks_per_worker=_CHUNKS_PER_WORKER)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    Results are returned in input order, so the output is identical to
    the serial list comprehension whenever ``fn`` is deterministic per
    item — which every seeded repetition in this library is.  Worker
    exceptions propagate to the caller.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs > 1 and not _picklable(fn, items[0]):
        _warn_serial_fallback(fn)
        jobs = 1
    if jobs <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = default_chunksize(len(items), jobs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _apply_args(task: tuple[Callable[..., Any], Sequence[Any]]) -> Any:
    fn, args = task
    return fn(*args)


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[Sequence[Any]],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(*args) for args in argument_tuples]`` with pool support."""
    tasks = [(fn, tuple(args)) for args in argument_tuples]
    return parallel_map(_apply_args, tasks, jobs=jobs, chunksize=chunksize)


# -- campaign journal ----------------------------------------------------


class CampaignJournal:
    """Chunk-level checkpoint file for :func:`resilient_map` campaigns.

    The journal is a JSON-lines file: a header record pinning the
    campaign identity (a fingerprint of the callable and its items),
    the chunk geometry, and then one record per completed chunk with
    its pickled results.  Appends are flushed per chunk, so a killed
    campaign loses at most the chunk in flight; a truncated trailing
    line (torn write — a crash mid-:meth:`record_chunk`) is truncated
    away on load, like :class:`repro.monitor.tail.TailReader` does, so
    subsequent appends never concatenate onto the torn prefix.
    Corruption *before* the final line is a real error and raises.

    Resuming re-runs only the missing chunks and fixes ``chunksize``
    from the header, so the final result list is byte-identical to an
    uninterrupted run even if the worker count changed in between.
    """

    VERSION = 1

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._chunksize: int | None = None

    # -- identity -----------------------------------------------------

    @staticmethod
    def fingerprint(fn: Callable[..., Any], items: Sequence[Any]) -> str:
        """A stable digest of *which campaign this is*.

        Delegates to :func:`repro.fabric.splice.campaign_fingerprint`
        so the pool and the distributed fabric agree on campaign
        identity (their journals are interchangeable).
        """
        return campaign_fingerprint(fn, items)

    # -- lifecycle ----------------------------------------------------

    def start(
        self,
        fingerprint: str,
        num_items: int,
        chunksize: int,
        *,
        resume: bool,
    ) -> dict[int, list[Any]]:
        """Open the journal; return the chunks already completed.

        With ``resume=False`` any existing file is replaced by a fresh
        header.  With ``resume=True`` the existing journal is loaded,
        its identity is checked against ``fingerprint``/``num_items``
        (mismatch raises :class:`ExperimentError`), the recorded chunk
        geometry is adopted, and completed chunk results are returned.
        """
        if resume and self.path.exists():
            header, completed = self._load()
            if header["fingerprint"] != fingerprint or header["items"] != num_items:
                raise ExperimentError(
                    f"journal {self.path} belongs to a different campaign "
                    "(fingerprint/items mismatch); refusing to resume"
                )
            self._chunksize = int(header["chunksize"])
            return completed
        self._chunksize = chunksize
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": self.VERSION,
            "fingerprint": fingerprint,
            "items": num_items,
            "chunksize": chunksize,
        }
        self.path.write_text(json.dumps(header) + "\n", encoding="utf-8")
        return {}

    @property
    def chunksize(self) -> int:
        if self._chunksize is None:
            raise ExperimentError("journal not started")
        return self._chunksize

    def record_chunk(self, index: int, results: list[Any]) -> None:
        """Append one completed chunk (flushed immediately)."""
        record = {"kind": "chunk", "index": index, "payload": encode_chunk(results)}
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    # -- internals ----------------------------------------------------

    def _load(self) -> tuple[dict[str, Any], dict[int, list[Any]]]:
        """Parse the journal, truncating a torn final line in place.

        A crash mid-:meth:`record_chunk` leaves an unterminated (or
        otherwise undecodable) final line.  That line is *expected*
        debris, not corruption: it is logged, the file is truncated to
        the last good record, and the campaign resumes — so later
        appends start on a clean line instead of concatenating onto the
        torn prefix.  Undecodable lines with complete records *after*
        them cannot be explained by a torn write and raise.
        """
        data = self.path.read_bytes()
        lines = data.split(b"\n")
        tail = lines.pop()  # b"" when the file ends on a newline
        good_bytes = 0
        header: dict[str, Any] | None = None
        completed: dict[int, list[Any]] = {}
        parsed: list[tuple[int, dict[str, Any]]] = []
        torn_at: int | None = None
        for line_number, raw in enumerate(lines, start=1):
            try:
                record = json.loads(raw)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                if record.get("kind") == "chunk":
                    # Decode eagerly: a torn payload is torn debris too.
                    record["_results"] = decode_chunk(record["payload"])
            except Exception:
                torn_at = line_number
                break
            parsed.append((line_number, record))
            good_bytes += len(raw) + 1
        if torn_at is not None and torn_at < len(lines):
            raise ExperimentError(
                f"journal {self.path} is corrupt at line {torn_at} with "
                "complete records after it; this is not a torn tail — "
                "refusing to guess (restart without --resume)"
            )
        if torn_at is not None or tail:
            logger.warning(
                "journal %s: truncating torn final line (crash mid-append); "
                "resuming from the last complete chunk",
                self.path,
            )
            with self.path.open("r+b") as stream:
                stream.truncate(good_bytes)
        for line_number, record in parsed:
            if record.get("kind") == "header":
                if record.get("version") != self.VERSION:
                    raise ExperimentError(
                        f"journal {self.path} has unsupported version "
                        f"{record.get('version')!r}"
                    )
                header = record
            elif record.get("kind") == "chunk":
                completed[int(record["index"])] = record["_results"]
        if header is None:
            raise ExperimentError(f"journal {self.path} has no header record")
        return header, completed


# -- resilient execution -------------------------------------------------


def _run_chunk(
    fn: Callable[[T], R],
    chunk: list[T],
    batch_fn: Callable[[list[T]], list[R]] | None = None,
) -> list[R]:
    if batch_fn is None:
        return [fn(item) for item in chunk]
    results = list(batch_fn(chunk))
    if len(results) != len(chunk):
        raise ExperimentError(
            f"batch_fn returned {len(results)} results for a chunk of "
            f"{len(chunk)} items; it must return exactly one per item"
        )
    return results


def _run_chunk_timed(
    fn: Callable[[T], R],
    chunk: list[T],
    batch_fn: Callable[[list[T]], list[R]] | None = None,
) -> dict[str, Any]:
    """Worker-side chunk runner that also captures telemetry.

    Activates a fresh in-memory recorder so everything the chunk's
    repetitions emit (engine run spans, protocol phase markers, ...)
    is buffered and shipped back to the parent with the results; the
    parent merges the events into its stream.  The results list is
    exactly what :func:`_run_chunk` would have produced.

    When the parent asked for profiling (``REPRO_PERF=<hz>`` in the
    inherited environment — see :mod:`repro.perf`), the chunk also runs
    under its own sampling-profiler session labelled ``pool.chunk``;
    the resulting ``perf_profile``/``perf_span`` records ride the same
    ship-back and are merged chunk-tagged like every other worker
    event, so the parent's log attributes samples per chunk.
    """
    from repro.perf import core as perf_core

    recorder = Telemetry.buffered()
    # An ambient session means this chunk runs *in the parent process*
    # (serial fallback / jobs=1): label it there instead of racing a
    # second sampler.  Otherwise honour the env gate a parent set for
    # its subprocess pool.
    ambient = perf_core.get_active()
    perf_session = None
    previous = None
    if ambient is not None:
        ambient.span_push("pool.chunk")
    else:
        perf_hz = perf_core.hz_from_env()
        if perf_hz is not None:
            perf_session = perf_core.PerfSession(perf_hz, memory=True)
            previous = perf_core.set_active(perf_session)
            perf_session.start()
            perf_session.span_push("pool.chunk")
    start = time.perf_counter()
    try:
        with activate(recorder):
            results = _run_chunk(fn, chunk, batch_fn)
    finally:
        if ambient is not None:
            ambient.span_pop()
        elif perf_session is not None:
            perf_session.span_pop()
            perf_session.stop()
            perf_core.set_active(previous)
            perf_session.emit(recorder)
    return {
        "results": results,
        "wall_s": time.perf_counter() - start,
        "pid": os.getpid(),
        "events": recorder.drain(),
    }


def backoff_delay(base: float, attempt: int, *, chunk_index: int = 0) -> float:
    """Exponential backoff with *seeded*, deterministic jitter.

    ``base * 2**(attempt-1)`` scaled by a factor in ``[0.5, 1.5)``
    drawn from a stream derived from ``(chunk_index, attempt)`` — the
    same chunk retried the same number of times always sleeps the same
    amount, so resilience behaviour is replayable, while distinct
    chunks/attempts decorrelate (no thundering-herd resubmission when
    many campaigns share a host).
    """
    if attempt < 1:
        return 0.0
    jitter = 0.5 + spawn(chunk_index, "retry-backoff", attempt).random()
    return base * (2 ** (attempt - 1)) * jitter


def _terminate_workers(executor: Any) -> None:
    """Hard-stop an executor whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block forever on a hung task, so the
    pool is abandoned without waiting and its worker processes are
    terminated best-effort (via the executor's process table).
    """
    # Snapshot the process table first: shutdown() clears it.
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - platform-specific races
            pass


def resilient_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 3,
    backoff_base: float = 0.25,
    journal: str | os.PathLike[str] | CampaignJournal | None = None,
    resume: bool = False,
    batch_fn: Callable[[list[T]], list[R]] | None = None,
) -> list[R]:
    """:func:`parallel_map` hardened for long campaigns (see module docs).

    Equivalent to ``[fn(item) for item in items]`` in value, with worker
    death retried (exponential backoff, serial fallback after
    ``max_retries``), hung chunks timed out after ``task_timeout``
    seconds per task, and completed chunks checkpointed to ``journal``.
    Exceptions raised by ``fn`` itself are deterministic and propagate
    immediately — only infrastructure failures are retried.

    ``batch_fn``, when given, runs a whole chunk in one call instead of
    ``fn`` item by item — the hook the vectorized backend uses to
    advance a chunk's trials simultaneously.  It must return exactly
    one result per item, in order, and must agree with ``fn`` on every
    item (the backend parity suite enforces this for the engine
    backends): journals are fingerprinted by ``fn`` alone, so a
    campaign journaled under one backend can resume under the other.
    """
    items = list(items)
    if task_timeout is not None and task_timeout <= 0:
        raise ExperimentError(f"task_timeout must be positive, got {task_timeout}")
    if max_retries < 0:
        raise ExperimentError(f"max_retries must be >= 0, got {max_retries}")
    jobs = min(resolve_jobs(jobs), len(items)) if items else 1
    if chunksize is None:
        chunksize = default_chunksize(len(items), max(1, jobs))

    journal_obj: CampaignJournal | None
    if journal is None:
        journal_obj = None
        completed: dict[int, list[Any]] = {}
    else:
        journal_obj = (
            journal if isinstance(journal, CampaignJournal) else CampaignJournal(journal)
        )
        fingerprint = CampaignJournal.fingerprint(fn, items)
        completed = journal_obj.start(
            fingerprint, len(items), chunksize, resume=resume
        )
        chunksize = journal_obj.chunksize  # resumed geometry wins

    chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
    results: dict[int, list[Any]] = {
        index: chunk_results
        for index, chunk_results in completed.items()
        if 0 <= index < len(chunks)
    }
    remaining = [index for index in range(len(chunks)) if index not in results]

    telemetry = get_active()
    if telemetry is not None:
        telemetry.emit(
            "campaign_begin",
            items=len(items),
            chunks=len(chunks),
            chunksize=chunksize,
            jobs=jobs,
            resumed_chunks=len(results),
        )
    campaign_t0 = time.perf_counter()
    stats = {"retries": 0, "timeouts": 0}
    progress = _ProgressReporter(
        len(chunks),
        len(items),
        telemetry,
        chunks_done=len(results),
        items_done=sum(len(chunks[index]) for index in results),
    )

    if remaining:
        use_pool = (
            jobs > 1
            and _picklable(fn, items[0])
            and (batch_fn is None or _picklable(batch_fn))
        )
        if jobs > 1 and not use_pool:
            _warn_serial_fallback(fn)
        if not use_pool:
            for index in remaining:
                chunk_t0 = time.perf_counter()
                chunk_results = _run_chunk(fn, chunks[index], batch_fn)
                results[index] = chunk_results
                if journal_obj is not None:
                    journal_obj.record_chunk(index, chunk_results)
                if telemetry is not None:
                    telemetry.emit(
                        "chunk",
                        index=index,
                        size=len(chunks[index]),
                        wall_s=time.perf_counter() - chunk_t0,
                        retries=0,
                        timeouts=0,
                        pid=os.getpid(),
                        mode="serial",
                    )
                progress.note(len(chunks[index]))
        else:
            stats = _resilient_pool_run(
                fn,
                chunks,
                remaining,
                results,
                jobs=jobs,
                task_timeout=task_timeout,
                max_retries=max_retries,
                backoff_base=backoff_base,
                journal_obj=journal_obj,
                telemetry=telemetry,
                progress=progress,
                batch_fn=batch_fn,
            )

    if telemetry is not None:
        telemetry.emit(
            "campaign_end",
            chunks=len(chunks),
            items=len(items),
            wall_s=time.perf_counter() - campaign_t0,
            retries=stats["retries"],
            timeouts=stats["timeouts"],
        )
    return splice(len(chunks), results, where=f"journal {journal!r}" if journal else "campaign")


def _resilient_pool_run(
    fn: Callable[[T], R],
    chunks: list[list[T]],
    remaining: list[int],
    results: dict[int, list[Any]],
    *,
    jobs: int,
    task_timeout: float | None,
    max_retries: int,
    backoff_base: float,
    journal_obj: CampaignJournal | None,
    telemetry: "Telemetry | None" = None,
    progress: "_ProgressReporter | None" = None,
    batch_fn: Callable[[list[T]], list[R]] | None = None,
) -> dict[str, int]:
    """Drive the pending chunks through a pool, surviving worker failures.

    Returns campaign-level resilience stats (total retries/timeouts).
    With a live ``telemetry`` recorder, chunks run via
    :func:`_run_chunk_timed`: each chunk ships back its worker-side
    events (merged into the parent's stream tagged with the chunk
    index) plus wall time, from which queue wait is derived.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    runner = _run_chunk_timed if telemetry is not None else _run_chunk
    attempts = {index: 0 for index in remaining}
    timeouts = {index: 0 for index in remaining}
    submit_ts: dict[int, float] = {}
    executor = ProcessPoolExecutor(max_workers=jobs)
    futures = {}
    for index in remaining:
        futures[index] = executor.submit(runner, fn, chunks[index], batch_fn)
        submit_ts[index] = time.perf_counter()

    def _record_chunk(index: int, payload: Any, *, fallback: bool = False) -> list[Any]:
        """Unwrap a finished chunk, merging worker telemetry if present."""
        if telemetry is None:
            return payload
        if fallback:
            # In-process fallback ran _run_chunk under the parent's
            # ambient recorder; events already streamed directly.
            chunk_results = payload
            wall_s = 0.0
            queue_s = 0.0
            pid = os.getpid()
        else:
            chunk_results = payload["results"]
            wall_s = payload["wall_s"]
            pid = payload["pid"]
            waited = time.perf_counter() - submit_ts[index]
            queue_s = max(0.0, waited - wall_s)
            for event in payload["events"]:
                event["chunk"] = index
                telemetry.write_record(event)
        telemetry.emit(
            "chunk",
            index=index,
            size=len(chunks[index]),
            wall_s=wall_s,
            queue_s=queue_s,
            pid=pid,
            retries=attempts[index],
            timeouts=timeouts[index],
            mode="fallback" if fallback else "pool",
        )
        return chunk_results

    position = 0
    try:
        while position < len(remaining):
            index = remaining[position]
            allowance = (
                None if task_timeout is None else task_timeout * len(chunks[index])
            )
            try:
                payload = futures[index].result(timeout=allowance)
                chunk_results = _record_chunk(index, payload)
            except (BrokenProcessPool, FutureTimeout) as exc:
                # Infrastructure failure: the worker died or the chunk
                # hung.  Blame the chunk at the head of the line; later
                # chunks are resubmitted as collateral without burning
                # their own retry budget.
                attempts[index] += 1
                if isinstance(exc, FutureTimeout):
                    timeouts[index] += 1
                _terminate_workers(executor)
                still_pending = remaining[position:]
                if attempts[index] > max_retries:
                    if isinstance(exc, FutureTimeout):
                        raise ExperimentError(
                            f"chunk {index} ({len(chunks[index])} tasks) timed "
                            f"out after {attempts[index]} attempts of "
                            f"{allowance:.1f}s each; aborting the campaign"
                        ) from exc
                    logger.warning(
                        "chunk %d killed its worker %d times; running it "
                        "in-process (exact: inputs are re-derived seeds)",
                        index,
                        attempts[index],
                    )
                    chunk_results = _record_chunk(
                        index, _run_chunk(fn, chunks[index], batch_fn), fallback=True
                    )
                    executor = ProcessPoolExecutor(max_workers=jobs)
                    futures = {}
                    for later in still_pending[1:]:
                        futures[later] = executor.submit(
                            runner, fn, chunks[later], batch_fn
                        )
                        submit_ts[later] = time.perf_counter()
                else:
                    delay = backoff_delay(
                        backoff_base, attempts[index], chunk_index=index
                    )
                    logger.warning(
                        "%s on chunk %d; retry %d/%d after %.2fs backoff",
                        type(exc).__name__,
                        index,
                        attempts[index],
                        max_retries,
                        delay,
                    )
                    time.sleep(delay)
                    executor = ProcessPoolExecutor(max_workers=jobs)
                    futures = {}
                    for pending in still_pending:
                        futures[pending] = executor.submit(
                            runner, fn, chunks[pending], batch_fn
                        )
                        submit_ts[pending] = time.perf_counter()
                    continue
            results[index] = chunk_results
            if journal_obj is not None:
                journal_obj.record_chunk(index, chunk_results)
            if progress is not None:
                progress.note(len(chunks[index]))
            position += 1
    except KeyboardInterrupt:
        # Re-raise promptly, but never leave orphaned children behind:
        # shutdown(wait=False) alone would abandon live (possibly hung)
        # worker processes.  The journal already holds every completed
        # chunk, so ^C + --resume loses at most the chunks in flight.
        logger.warning("interrupted; terminating pool workers before re-raising")
        _terminate_workers(executor)
        raise
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return {
        "retries": sum(attempts.values()),
        "timeouts": sum(timeouts.values()),
    }


def resilient_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[Sequence[Any]],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 3,
    backoff_base: float = 0.25,
    journal: str | os.PathLike[str] | CampaignJournal | None = None,
    resume: bool = False,
) -> list[R]:
    """``[fn(*args) for args in argument_tuples]`` with full resilience."""
    tasks = [(fn, tuple(args)) for args in argument_tuples]
    return resilient_map(
        _apply_args,
        tasks,
        jobs=jobs,
        chunksize=chunksize,
        task_timeout=task_timeout,
        max_retries=max_retries,
        backoff_base=backoff_base,
        journal=journal,
        resume=resume,
    )
