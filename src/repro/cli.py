"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``broadcast`` — run one Decay broadcast on a chosen topology and
  print the outcome (optionally with a timeline visualisation).
* ``bfs`` — run the Decay BFS and print the distance labels.
* ``gap`` — print the exponential-gap table (experiment E5).
* ``experiment`` — run any experiment module by ID (e1..e12) and print
  its table(s).
* ``chaos`` — run a randomized adversarial fault campaign
  (:mod:`repro.chaos`) and check its safety/liveness invariants; the
  exit code reports the verdict, ``--journal``/``--resume`` checkpoint
  and restart long campaigns.
* ``game`` — play the hitting game: foil a named strategy with the
  ``find_set`` adversary.
* ``telemetry`` — summarize (or validate) a JSON-lines event log
  produced by ``--telemetry``.
* ``monitor`` — stream a telemetry log through the live conformance
  checkers (:mod:`repro.monitor`): the paper's bounds as runtime SLOs,
  a live status board, ``--follow`` for campaigns still running, and
  ``--gate`` to exit nonzero when any alert fires (CI).
* ``obs`` — cross-run observability (:mod:`repro.obs`): ``ingest``
  telemetry logs / bench records into a SQLite run store, ``compare``
  two runs, ``trend`` a metric with a CI regression gate (``--check``),
  ``report`` terminal tables or an HTML dashboard, ``explain``
  causal slot provenance ("why didn't node v receive in slot t?"),
  and ``export`` a log as a Chrome/Perfetto trace
  (``--chrome-trace``).
* ``fabric`` — the crash-safe distributed campaign fabric
  (:mod:`repro.fabric`): ``run`` a registered campaign spec across N
  worker subprocesses coordinating through a shared SQLite lease
  store (optionally under a ``--fault-plan``), ``worker`` is the
  subprocess entry point, ``chaos`` runs the self-verification
  harness — a seeded fault plan kills/stalls real workers and the
  spliced results are asserted byte-identical to a serial run with
  zero fencing violations — and ``autopsy`` reconstructs a finished
  (or crashed) campaign's lease/fence/takeover timeline from the
  store's audit log and verifies the fencing contract post hoc.
* ``perf`` — the performance plane (:mod:`repro.perf`): ``record``
  runs any repro command under the wall-clock sampling profiler and
  writes folded stacks plus a self-contained flamegraph HTML,
  ``flame`` renders a ``.folded`` file or a telemetry log's
  ``perf_profile`` records, and ``diff`` reports per-frame share
  drift between two profiles.
* ``fleet`` — fleet observability (:mod:`repro.fleet`): ``board``
  follows the lease store plus every worker's telemetry log with
  per-worker health lanes under the conformance SLO gates, ``trace``
  merges coordinator + worker logs into one Chrome/Perfetto trace
  with a process lane per worker, and ``metrics`` reconstructs the
  campaign's metrics registry from ``metrics`` snapshot records and
  prints the Prometheus text exposition.

Every command takes ``--seed`` and is fully reproducible.  The
experiment-style commands additionally take ``--jobs N`` (or honour
``REPRO_JOBS``) to fan Monte-Carlo repetitions out to a process pool —
without changing any result, since repetition seeds are derived
order-independently (see :mod:`repro.parallel`) — and
``--task-timeout`` to bound how long any pooled repetition may run
before its worker is presumed hung and retried.

Observability (see :mod:`repro.telemetry`):

* ``--telemetry PATH`` (gap/experiment/chaos) streams structured
  events — engine run spans, protocol phase markers, campaign chunk
  records, progress heartbeats — to ``PATH`` as JSON lines, plus a
  run manifest sidecar at ``PATH.manifest.json``;
* ``--profile`` (same commands) runs the command under ``cProfile``
  and prints the top hotspots (also appended to the event stream as a
  ``profile`` record when ``--telemetry`` is on);
* ``--log-level LEVEL`` (global, before the subcommand) turns on the
  library's ``logging`` output, e.g. campaign progress heartbeats from
  ``repro.parallel`` and verdict lines from ``repro.chaos``;
* ``--provenance`` (with ``--telemetry``) records causal slot
  provenance as ``prov`` events, and ``--obs-db DB`` auto-ingests the
  finished log into the run store (see :mod:`repro.obs`);
* ``--perf`` (same commands) attaches the sampling profiler
  (:mod:`repro.perf`): folded wall-clock stacks plus traced memory
  per span land in the telemetry log as ``perf_profile`` /
  ``perf_span`` events (pool and fabric workers sample themselves via
  the inherited ``REPRO_PERF`` gate), ``--perf-hz`` tunes the rate and
  ``--perf-out BASE`` writes ``BASE.folded`` + a flamegraph
  ``BASE.html``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.experiments.runner import ExperimentConfig

__all__ = ["main", "build_parser"]

# repro.perf's ENV_VAR, inlined so the no---perf path never imports it.
_PERF_ENV = "REPRO_PERF"


def _make_topology(kind: str, n: int, seed: int):
    from repro.graphs import generators
    from repro.rng import spawn

    rng = spawn(seed, "cli-topology")
    if kind == "line":
        return generators.line(n)
    if kind == "ring":
        return generators.ring(max(3, n))
    if kind == "grid":
        side = max(1, int(n**0.5))
        return generators.grid(side, (n + side - 1) // side)
    if kind == "gnp":
        return generators.random_gnp(n, min(1.0, 8.0 / n), rng)
    if kind == "udg":
        import math

        radius = 1.7 * math.sqrt(math.log(max(2, n)) / n)
        return generators.unit_disk(n, radius, rng)
    if kind == "cn":
        return generators.c_n(n, {n})
    raise SystemExit(f"unknown topology {kind!r}")


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.protocols import run_decay_broadcast

    g = _make_topology(args.topology, args.n, args.seed)
    result = run_decay_broadcast(
        g,
        source=args.source,
        seed=args.seed,
        epsilon=args.epsilon,
        record_trace=args.timeline,
    )
    completion = result.broadcast_completion_slot(source=args.source)
    print(f"nodes={g.num_nodes()} slots_run={result.slots} "
          f"transmissions={result.metrics.transmissions}")
    if completion is None:
        print("broadcast FAILED (within the epsilon budget)")
        return 1
    print(f"broadcast complete at slot {completion}")
    if args.timeline and result.trace is not None:
        from repro import viz

        nodes = sorted(g.nodes, key=repr)[: args.timeline_nodes]
        k = next(iter(result.programs.values())).k
        print()
        print(viz.phase_ruler(min(result.slots, 120), k,
                              label_width=max(len(repr(v)) for v in nodes)))
        print(viz.timeline(result.trace, nodes, max_slots=120))
        print()
        print(viz.reception_wave(result.trace))
    return 0


def _cmd_bfs(args: argparse.Namespace) -> int:
    from repro.protocols import run_bfs

    g = _make_topology(args.topology, args.n, args.seed)
    result = run_bfs(g, args.source, seed=args.seed, epsilon=args.epsilon)
    labels = result.node_results()
    print(f"slots={result.slots}")
    for node in sorted(labels, key=repr):
        print(f"node {node}: distance {labels[node]}")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from repro.experiments.exp_gap import gap_growth_fits, run_gap_table

    config = ExperimentConfig(
        reps=args.reps, master_seed=args.seed, quick=args.quick, jobs=args.jobs,
        task_timeout=args.task_timeout, backend=args.backend,
    )
    table = run_gap_table(config)
    print(table.render())
    fits = gap_growth_fits(table)
    print()
    for curve, fit in fits.items():
        print(f"{curve}: slope={fit['slope']:.3f} R^2={fit['r_squared']:.3f}")
    return 0


_EXPERIMENTS: dict[str, tuple[str, list[str]]] = {
    "e1": ("repro.experiments.exp_decay", ["run_theorem1_table"]),
    "e2": ("repro.experiments.exp_broadcast",
           ["run_broadcast_time_table", "run_diameter_scaling_table",
            "run_upper_bound_sensitivity_table"]),
    "e3": ("repro.experiments.exp_broadcast", ["run_success_rate_table"]),
    "e4": ("repro.experiments.exp_hitting",
           ["run_adversary_table", "run_protocol_lower_bound_table",
            "run_upper_bound_table"]),
    "e4d": ("repro.experiments.exp_exhaustive", ["run_exhaustive_table"]),
    "e5": ("repro.experiments.exp_gap", ["run_gap_table"]),
    "e6": ("repro.experiments.exp_bfs", ["run_bfs_table"]),
    "e7": ("repro.experiments.exp_messages", ["run_message_complexity_table"]),
    "e8": ("repro.experiments.exp_coin_bias",
           ["run_coin_bias_table", "run_alignment_table"]),
    "e9": ("repro.experiments.exp_dynamic",
           ["run_dynamic_table", "run_mobility_table", "run_transient_fault_table"]),
    "e10": ("repro.experiments.exp_cd",
            ["run_cd_cn_table", "run_tree_splitting_table"]),
    "e11": ("repro.experiments.exp_dfs",
            ["run_dfs_table", "run_deterministic_comparison_table"]),
    "e12": ("repro.experiments.exp_spontaneous",
            ["run_three_round_table", "run_c_star_table"]),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    key = args.id.lower()
    if key not in _EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.id!r}; choose from {', '.join(_EXPERIMENTS)}"
        )
    module_name, functions = _EXPERIMENTS[key]
    module = importlib.import_module(module_name)
    config = ExperimentConfig(
        reps=args.reps, master_seed=args.seed, quick=args.quick, jobs=args.jobs,
        task_timeout=args.task_timeout, backend=args.backend,
    )
    for name in functions:
        table = getattr(module, name)(config)
        print(table.render())
        print()
    return 0


def _cmd_game(args: argparse.Namespace) -> int:
    from repro.lowerbound.adversary import foil_strategy
    from repro.lowerbound.reduction import (
        BinarySplitAbstractProtocol,
        ProtocolStrategy,
        RoundRobinAbstractProtocol,
    )
    from repro.lowerbound.strategies import (
        BinarySplittingStrategy,
        DoublingStrategy,
        RandomStrategy,
        SingletonSweepStrategy,
    )

    strategies: dict[str, Callable] = {
        "sweep": SingletonSweepStrategy,
        "doubling": DoublingStrategy,
        "binary": BinarySplittingStrategy,
        "random": lambda: RandomStrategy(args.seed),
        "protocol-rr": lambda: ProtocolStrategy(RoundRobinAbstractProtocol),
        "protocol-split": lambda: ProtocolStrategy(BinarySplitAbstractProtocol),
    }
    if args.strategy not in strategies:
        raise SystemExit(
            f"unknown strategy {args.strategy!r}; choose from {', '.join(strategies)}"
        )
    result = foil_strategy(strategies[args.strategy](), args.n, args.n // 2)
    print(f"n={args.n} moves allowed={args.n // 2}")
    print(f"adversarial |S|={len(result.hidden_set)}")
    print(f"strategy survived {result.survived_moves} moves without a hit "
          f"(consistent replay: {result.consistent})")
    if args.show_set:
        print(f"S = {sorted(result.hidden_set)}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosConfig, run_chaos_campaign

    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal pointing at the campaign journal")
    config = ChaosConfig(
        n=16 if args.quick else args.n,
        reps=8 if args.quick else args.reps,
        epsilon=args.epsilon,
        master_seed=args.seed,
        protocol=args.protocol,
        jobs=args.jobs,
        task_timeout=args.task_timeout,
        backend=args.backend,
    )
    report = run_chaos_campaign(config, journal=args.journal, resume=args.resume)
    if args.json:
        print(report.to_json())
    else:
        print(report.table().render())
        print()
        if report.safety_violations:
            print(f"SAFETY VIOLATIONS ({len(report.safety_violations)}):")
            for violation in report.safety_violations[:20]:
                print(f"  - {violation}")
        verdict = "PASSED" if report.passed else "FAILED"
        print(f"campaign {verdict} "
              f"(liveness={'ok' if report.liveness_ok else 'BROKEN'}, "
              f"control_breaks={'yes' if report.control_broken else 'NO'}, "
              f"safety_violations={len(report.safety_violations)})")
        if args.journal:
            print(f"journal: {args.journal} (replay with --resume, or rerun "
                  f"with --seed {args.seed} for a fresh but identical campaign)")
    return 0 if report.passed else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry.summary import (
        read_records,
        render_summary,
        summarize,
        summary_json,
        validate_log,
    )

    if args.validate:
        errors = validate_log(args.log)
        if errors:
            for error in errors[:50]:
                print(error)
            if len(errors) > 50:
                print(f"... and {len(errors) - 50} more")
            print(f"{args.log}: INVALID ({len(errors)} errors)")
            return 1
        print(f"{args.log}: OK")
        return 0
    summary = summarize(read_records(args.log))
    if args.json:
        print(summary_json(summary))
    else:
        print(render_summary(summary))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ExperimentError
    from repro.monitor import (
        BoardRenderer,
        MonitorConfig,
        monitor_log,
        read_log_records,
        validate_chrome_trace,
        write_chrome_trace,
    )

    config = MonitorConfig(
        epsilon=args.epsilon,
        alpha=args.alpha,
        min_runs=args.min_runs,
        diameter=args.diameter,
        max_degree=args.max_degree,
        deterministic_floor=args.assume_deterministic,
    )
    renderer_factory = None
    if not args.json:
        renderer_factory = lambda board: BoardRenderer(  # noqa: E731
            board, interval=args.interval, plain=True if args.plain else None
        )
    try:
        report = monitor_log(
            args.log,
            config=config,
            follow=args.follow,
            idle_timeout=args.idle_timeout,
            renderer_factory=renderer_factory,
            write_alerts=not args.no_write_alerts,
        )
    except ExperimentError as exc:
        raise SystemExit(f"monitor: {exc}")
    if args.chrome_trace:
        trace = write_chrome_trace(read_log_records(args.log), args.chrome_trace)
        errors = validate_chrome_trace(trace)
        if errors:
            raise SystemExit(
                f"monitor: exported trace failed validation: {errors[0]}"
            )
        if not args.json:
            print(f"wrote {args.chrome_trace} "
                  f"({len(trace['traceEvents'])} trace events)")
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True, default=repr))
    else:
        _print_monitor_verdict(report, gate=args.gate)
    return 1 if (args.gate and report.gate_failed) else 0


def _print_monitor_verdict(report, gate: bool) -> None:
    """Human-readable close-out after the status board's final paint."""
    print()
    if report.alerts:
        print(f"{len(report.alerts)} conformance alert(s) fired:")
        for alert in report.alerts:
            print(f"  ! {alert.describe()}")
        if gate:
            print("gate: FAILED")
    else:
        print(f"no conformance alerts over {report.records} records")
        if gate:
            print("gate: PASSED")


def _cmd_obs(args: argparse.Namespace) -> int:
    """Dispatch ``obs ingest|compare|trend|report|explain|export``."""
    import json

    from repro.errors import ExperimentError
    from repro.obs import (
        RunStore,
        compare_runs,
        detect_regression,
        explain_from_store,
        ingest_path,
        render_run_html,
        render_trend_html,
        run_tables,
        trend_points,
        trend_table,
    )
    from repro.analysis.tables import Table

    if args.obs_command == "export":
        # Pure log -> trace translation; no run store involved.
        from repro.monitor import (
            read_log_records,
            validate_chrome_trace,
            write_chrome_trace,
        )

        try:
            records = read_log_records(args.log)
        except ExperimentError as exc:
            raise SystemExit(f"obs export: {exc}")
        trace = write_chrome_trace(records, args.chrome_trace)
        trace_errors = validate_chrome_trace(trace)
        if trace_errors:
            raise SystemExit(
                f"obs export: trace failed validation: {trace_errors[0]}"
            )
        print(f"wrote {args.chrome_trace} ({len(trace['traceEvents'])} trace "
              f"events from {len(records)} records)")
        return 0

    try:
        with RunStore(args.db) as store:
            if args.obs_command == "ingest":
                code = 0
                for path in args.paths:
                    try:
                        result = ingest_path(store, path)
                    except ExperimentError as exc:
                        print(f"{path}: INGEST FAILED — {exc}")
                        code = 1
                        continue
                    print(result.describe())
                return code

            if args.obs_command == "compare":
                result = compare_runs(store, args.a, args.b)
                if args.json:
                    print(json.dumps(result, indent=2, sort_keys=True, default=repr))
                    return 0
                a, b = result["a"], result["b"]
                table = Table(
                    f"Run {a['id']} ({str(a['fingerprint'])[:8]}) vs "
                    f"run {b['id']} ({str(b['fingerprint'])[:8]})",
                    ["metric", "a", "b", "delta", "pct"],
                )
                for row in result["diff"]:
                    table.add_row(
                        row["metric"],
                        "-" if row["a"] is None else row["a"],
                        "-" if row["b"] is None else row["b"],
                        "-" if row["delta"] is None else row["delta"],
                        "-" if row["pct"] is None else f"{row['pct']:+.1f}%",
                    )
                print(table.render())
                return 0

            if args.obs_command == "trend":
                from repro.obs import DEFAULT_BASELINE_K, DEFAULT_THRESHOLD

                points = trend_points(store, args.metric, source=args.source)
                verdict = detect_regression(
                    [p.value for p in points],
                    threshold=(args.threshold if args.threshold is not None
                               else DEFAULT_THRESHOLD),
                    baseline_k=(args.baseline_k if args.baseline_k is not None
                                else DEFAULT_BASELINE_K),
                    direction=args.direction,
                    metric=args.metric,
                )
                if args.html:
                    import pathlib

                    pathlib.Path(args.html).write_text(
                        render_trend_html(args.metric, points, verdict,
                                          source=args.source),
                        encoding="utf-8",
                    )
                    print(f"wrote {args.html}")
                checkable = len(points) >= 2
                if args.json:
                    # Pure JSON on stdout, even with --check: scripts parse
                    # this; the gate verdict rides in the payload + exit code.
                    payload = {
                        "points": [vars(p) for p in points],
                        "verdict": verdict,
                    }
                    if args.check:
                        payload["check"] = {
                            "checked": checkable,
                            "regressed": bool(verdict["regressed"]) if checkable
                                         else False,
                        }
                    print(json.dumps(payload, indent=2, sort_keys=True,
                                     default=repr))
                else:
                    print(trend_table(args.metric, points, verdict).render())
                if args.check:
                    if not checkable:
                        if not args.json:
                            print(f"trend check: only {len(points)} point(s); "
                                  f"nothing to compare against (pass)")
                        return 0
                    if not args.json:
                        change = verdict["change"]
                        print(
                            f"trend check [{args.source}/{args.metric}]: "
                            f"latest={verdict['latest']:.4g} "
                            f"baseline={verdict['baseline']:.4g} "
                            f"change={change:+.1%} "
                            f"threshold={verdict['threshold']:.0%} "
                            f"({verdict['direction']}) -> "
                            f"{'REGRESSION' if verdict['regressed'] else 'OK'}"
                        )
                    return 1 if verdict["regressed"] else 0
                return 0

            if args.obs_command == "report":
                run = store.resolve_run(args.run)
                if args.html:
                    import pathlib

                    pathlib.Path(args.html).write_text(
                        render_run_html(store, run), encoding="utf-8"
                    )
                    print(f"wrote {args.html}")
                if args.json:
                    print(json.dumps(
                        {"run": run, "metrics": store.metrics_for(run["id"])},
                        indent=2, sort_keys=True, default=repr,
                    ))
                elif not args.html:
                    print("\n\n".join(t.render() for t in run_tables(store, run)))
                return 0

            if args.obs_command == "perf":
                from repro.obs import (
                    DEFAULT_BASELINE_K,
                    DEFAULT_THRESHOLD,
                    perf_overview,
                )

                if args.metric:
                    # Cross-run trend + CI gate over one perf.* metric;
                    # perf metrics default to direction "down" (cost).
                    points = trend_points(store, args.metric, source="runs")
                    verdict = detect_regression(
                        [p.value for p in points],
                        threshold=(args.threshold if args.threshold is not None
                                   else DEFAULT_THRESHOLD),
                        baseline_k=(args.baseline_k
                                    if args.baseline_k is not None
                                    else DEFAULT_BASELINE_K),
                        metric=args.metric,
                    )
                    checkable = len(points) >= 2
                    if args.json:
                        payload = {
                            "points": [vars(p) for p in points],
                            "verdict": verdict,
                        }
                        if args.check:
                            payload["check"] = {
                                "checked": checkable,
                                "regressed": bool(verdict["regressed"])
                                             if checkable else False,
                            }
                        print(json.dumps(payload, indent=2, sort_keys=True,
                                         default=repr))
                    else:
                        print(trend_table(args.metric, points, verdict).render())
                    if args.check and checkable and verdict["regressed"]:
                        if not args.json:
                            print(f"perf check [{args.metric}]: "
                                  f"latest={verdict['latest']:.4g} "
                                  f"baseline={verdict['baseline']:.4g} "
                                  f"change={verdict['change']:+.1%} -> "
                                  f"REGRESSION")
                        return 1
                    return 0

                overview = perf_overview(store, args.run)
                if args.json:
                    print(json.dumps(overview, indent=2, sort_keys=True,
                                     default=repr))
                    return 0
                run = overview["run"]
                header = (f"Perf plane — run {run['id']} "
                          f"({str(run['fingerprint'])[:8]})")
                if overview["samples"]:
                    header += (f" — {overview['samples']:g} samples over "
                               f"{overview['sample_wall_s'] or 0:g}s")
                print(header)
                if overview["spans"]:
                    table = Table(
                        "Span costs (sampled time + traced memory)",
                        ["span", "secs", "samples", "peak KiB"],
                    )
                    for row in overview["spans"]:
                        table.add_row(
                            row["label"],
                            f"{row.get('secs', 0.0):.3f}",
                            f"{row.get('samples', 0):g}",
                            f"{row.get('mem_peak_kb', 0.0):.1f}",
                        )
                    print()
                    print(table.render())
                if overview["hotspots"]:
                    table = Table(
                        "cProfile hotspots (from --profile)",
                        ["function", "cumtime s", "tottime s"],
                    )
                    for row in overview["hotspots"]:
                        table.add_row(
                            row["func"],
                            f"{row.get('cumtime_s', 0.0):.3f}",
                            f"{row.get('tottime_s', 0.0):.3f}",
                        )
                    print()
                    print(table.render())
                return 0

            if args.obs_command == "explain":
                if getattr(args, "perf_aggregates", False):
                    from repro.obs import perf_overview

                    overview = perf_overview(store, args.run)
                    if args.json:
                        print(json.dumps(overview, indent=2, sort_keys=True,
                                         default=repr))
                        return 0
                    run = overview["run"]
                    table = Table(
                        f"Perf aggregates — run {run['id']} "
                        f"({str(run['fingerprint'])[:8]})",
                        ["metric", "value"],
                    )
                    for name, value in sorted(overview["metrics"].items()):
                        table.add_row(name, value)
                    print(table.render())
                    return 0
                if args.fabric:
                    run = store.resolve_run(args.run)
                    metrics = store.metrics_for(run["id"])
                    fabric_metrics = {
                        name: value for name, value in sorted(metrics.items())
                        if name.startswith(("fabric.", "fleet."))
                        or name in ("alerts", "chaos_trials")
                    }
                    if args.json:
                        print(json.dumps(
                            {"run": run, "fabric": fabric_metrics},
                            indent=2, sort_keys=True, default=repr,
                        ))
                        return 0 if fabric_metrics else 1
                    if not fabric_metrics:
                        print(f"run {run['id']}: no fabric/fleet aggregates "
                              "(not a fabric campaign log?)")
                        return 1
                    table = Table(
                        f"Fabric aggregates — run {run['id']} "
                        f"({str(run['fingerprint'])[:8]})",
                        ["metric", "value"],
                    )
                    for name, value in fabric_metrics.items():
                        table.add_row(name, value)
                    print(table.render())
                    return 0
                if args.node is None or args.slot is None:
                    raise SystemExit(
                        "obs explain: --node and --slot are required "
                        "(or use --fabric for fabric campaign aggregates)"
                    )
                result = explain_from_store(
                    store, args.run, args.node, args.slot,
                    engine_run=args.engine_run,
                )
                if args.json:
                    print(json.dumps(result, indent=2, sort_keys=True,
                                     default=repr))
                    return 0 if result["found"] else 1
                print(result["answer"])
                if result.get("others"):
                    print(f"(+{result['others']} more engine runs in this log "
                          f"recorded this (node, slot); narrow with "
                          f"--engine-run)")
                if not result["found"] and result.get("nearby"):
                    print("nearest recorded slots for this node:")
                    for entry in result["nearby"]:
                        print(f"  slot {entry['slot']}: {entry['outcome']}"
                              + (f" ({entry['detail']})" if entry["detail"] else ""))
                return 0 if result["found"] else 1
    except ExperimentError as exc:
        if args.obs_command in ("trend", "perf"):
            # The --check exit-code contract: 0 = checked and clean,
            # 1 = regression detected, 2 = bad invocation (unknown
            # metric/source, invalid threshold, missing store) — so a
            # CI gate can never mistake a typo for a verdict.
            print(f"obs {args.obs_command}: {exc}", file=sys.stderr)
            return 2
        raise SystemExit(f"obs {args.obs_command}: {exc}")
    raise SystemExit(f"unknown obs subcommand {args.obs_command!r}")


def _cmd_perf(args: argparse.Namespace) -> int:
    """Dispatch ``perf record|flame|diff``."""
    import json
    import pathlib

    from repro.analysis.tables import Table
    from repro.perf import (
        DEFAULT_HZ,
        PerfSession,
        diff_folded,
        load_stacks,
        render_flamegraph,
        top_frames,
    )
    from repro.perf import activate as perf_activate

    if args.perf_command == "record":
        cmd = list(args.cmd)
        if cmd and cmd[0] == "--":
            cmd = cmd[1:]
        if not cmd:
            raise SystemExit(
                "perf record: give the repro command to profile, e.g. "
                "'repro perf record gap --quick'"
            )
        if cmd[0] == "perf":
            raise SystemExit("perf record: cannot record 'perf' itself")
        hz = args.hz if args.hz is not None else DEFAULT_HZ
        session = PerfSession(hz, memory=not args.no_memory)
        with perf_activate(session):
            try:
                code = main(cmd)
            except SystemExit as exc:
                code = exc.code if isinstance(exc.code, int) else 1
        base = args.out
        folded_path = pathlib.Path(f"{base}.folded")
        folded_path.write_text(session.folded_text(), encoding="utf-8")
        html_path = pathlib.Path(f"{base}.html")
        html_path.write_text(
            render_flamegraph(
                session.counts,
                title=f"repro {' '.join(cmd)}",
                subtitle=(f"{session.sampler.samples} samples @ {hz:g} Hz "
                          f"over {session.sampler.wall_s:.2f}s"),
            ),
            encoding="utf-8",
        )
        print(f"\n[perf] {session.sampler.samples} samples @ {hz:g} Hz "
              f"({len(session.counts)} distinct stacks)")
        print(f"[perf] wrote {folded_path} and {html_path}")
        spans = session.span_table()
        if spans:
            table = Table(
                "Span costs (sampled time + traced memory)",
                ["span", "count", "secs", "samples", "peak KiB"],
            )
            for row in spans:
                table.add_row(row["label"], row["count"],
                              f"{row['secs']:.3f}", row["samples"],
                              f"{row['mem_peak_kb']:.1f}")
            print()
            print(table.render())
        frames = top_frames(session.counts, top=10)
        if frames:
            table = Table("Hottest frames", ["frame", "self", "total", "share"])
            for row in frames:
                table.add_row(row["frame"], row["self"], row["total"],
                              f"{row['share']:.1%}")
            print()
            print(table.render())
        return code

    if args.perf_command == "flame":
        stacks = load_stacks(args.input)
        if not stacks:
            raise SystemExit(f"perf flame: no folded stacks or perf_profile "
                             f"records in {args.input}")
        title = args.title or f"repro perf — {args.input}"
        pathlib.Path(args.out).write_text(
            render_flamegraph(stacks, title=title), encoding="utf-8"
        )
        print(f"wrote {args.out} ({sum(stacks.values())} samples, "
              f"{len(stacks)} distinct stacks)")
        return 0

    if args.perf_command == "diff":
        before = load_stacks(args.before)
        after = load_stacks(args.after)
        rows = diff_folded(before, after, top=args.top)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        table = Table(
            f"Frame share drift — {args.before} vs {args.after} "
            f"(+ = costlier after)",
            ["frame", "before", "after", "delta"],
        )
        for row in rows:
            table.add_row(
                row["frame"],
                f"{row['before_share']:.1%}",
                f"{row['after_share']:.1%}",
                f"{row['delta_share']:+.1%}",
            )
        print(table.render())
        return 0

    raise SystemExit(f"unknown perf subcommand {args.perf_command!r}")


def _parse_params(pairs: list[str]) -> dict:
    """``--param key=value`` pairs; values parse as JSON, else strings."""
    import json

    params: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param {pair!r} is not key=value")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def _fabric_fault_plan(args: argparse.Namespace, worker_ids: list[str]):
    """The plan from --fault-plan, else a seeded random one (chaos)."""
    from repro.fabric.faultplan import FaultPlan

    if getattr(args, "fault_plan", None):
        return FaultPlan.parse(args.fault_plan)
    if getattr(args, "random_faults", False):
        return FaultPlan.random(
            args.seed,
            worker_ids,
            kills=args.kills,
            stalls=args.stalls,
            stales=args.stales,
            partitions=args.partitions,
            max_ordinal=args.max_ordinal,
            stall_duration=2.5 * args.lease_ttl,
            partition_duration=2.5 * args.lease_ttl,
        )
    return FaultPlan()


def _fleet_stream_label(path) -> str:
    """Worker id from a ``<store>.<worker>.telemetry.jsonl`` name, else
    ``""`` (the coordinator lane)."""
    from pathlib import Path

    parts = Path(path).name.split(".")
    if len(parts) >= 4 and parts[-2:] == ["telemetry", "jsonl"]:
        return parts[-3]
    return ""


def _resolve_store_campaign(store_path, prefix: str | None) -> str | None:
    """Expand a campaign fingerprint prefix against the lease store.

    Returns the full fingerprint, or ``None`` when it cannot be
    resolved unambiguously (caller decides whether that is fatal).
    """
    if not store_path.exists():
        return None
    from repro.fabric.store import LeaseStore

    lease_store = LeaseStore(store_path)
    try:
        rows = lease_store.conn.execute(
            "SELECT fingerprint FROM campaigns ORDER BY id"
        ).fetchall()
    finally:
        lease_store.close()
    fingerprints = [str(row["fingerprint"]) for row in rows]
    if prefix is None:
        return fingerprints[0] if len(fingerprints) == 1 else None
    matches = [f for f in fingerprints if f.startswith(prefix)]
    return matches[0] if len(matches) == 1 else prefix


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Dispatch ``fleet board|trace|metrics``."""
    import json
    from pathlib import Path

    from repro.errors import ExperimentError

    try:
        if args.fleet_command == "board":
            from repro.fleet.board import FleetBoard, follow_fleet
            from repro.monitor import BoardRenderer, MonitorConfig
            from repro.monitor.live import LiveMonitor

            store_path = Path(args.store)
            campaign = _resolve_store_campaign(store_path, args.campaign)
            if campaign is None:
                raise SystemExit(
                    "fleet board: pass --campaign (the store is missing, "
                    "empty, or holds several campaigns)"
                )
            logs = [Path(p) for p in args.log]
            if not args.no_auto_logs:
                parent = store_path.parent or Path(".")
                for found in sorted(
                    parent.glob(f"{store_path.name}.*.telemetry.jsonl")
                ):
                    if found not in logs:
                        logs.append(found)
            renderer_factory = None
            if not args.json:
                renderer_factory = lambda board: BoardRenderer(  # noqa: E731
                    board, interval=args.interval,
                    plain=True if args.plain else None,
                )
            live = LiveMonitor(
                MonitorConfig(epsilon=args.epsilon),
                board=FleetBoard(),
                renderer_factory=renderer_factory,
            )
            for record in follow_fleet(
                args.store, campaign, logs=logs, idle_timeout=args.idle_timeout
            ):
                live.ingest(record)
            report = live.finish()
            if args.json:
                print(json.dumps(report.to_json(), indent=2, sort_keys=True,
                                 default=repr))
            else:
                print()
                for line in live.board.lines():
                    print(line)
                if report.alerts:
                    print(f"{len(report.alerts)} conformance alert(s) fired:")
                    for alert in report.alerts:
                        print(f"  ! {alert.describe()}")
            return 1 if (args.gate and report.gate_failed) else 0

        if args.fleet_command == "trace":
            from repro.monitor.chrome_trace import (
                merge_records,
                validate_chrome_trace,
                write_chrome_trace,
            )
            from repro.monitor.tail import read_log_records

            streams: dict[str, list] = {}
            for path in args.logs:
                label = _fleet_stream_label(path)
                streams.setdefault(label, []).extend(read_log_records(path))
            trace = write_chrome_trace(merge_records(streams), args.out)
            errors = validate_chrome_trace(trace)
            if errors:
                raise SystemExit(
                    f"fleet trace: merged trace failed validation: {errors[0]}"
                )
            print(f"wrote {args.out} ({len(trace['traceEvents'])} trace "
                  f"events from {len(args.logs)} log(s))")
            return 0

        if args.fleet_command == "metrics":
            from repro.fleet.metrics import MetricsRegistry, registry_from_snapshot
            from repro.monitor.tail import read_log_records

            registry = MetricsRegistry()
            snapshots = 0
            for path in args.logs:
                for record in read_log_records(path):
                    if record.get("kind") == "metrics" and isinstance(
                        record.get("snapshot"), dict
                    ):
                        registry_from_snapshot(record["snapshot"], into=registry)
                        snapshots += 1
            if not snapshots:
                # Bad invocation (wrong logs), not a metrics verdict:
                # exit 2, same contract as obs trend/perf --check.
                print(
                    "fleet metrics: no 'metrics' snapshot records in the "
                    "given log(s)",
                    file=sys.stderr,
                )
                raise SystemExit(2)
            if args.prom:
                registry.write_prometheus(args.prom)
                print(f"wrote {args.prom} ({snapshots} snapshot(s) merged)")
            if args.json:
                print(json.dumps(registry.snapshot(), indent=2, sort_keys=True,
                                 default=repr))
            elif not args.prom:
                print(registry.prometheus_text(), end="")
            return 0
    except ExperimentError as exc:
        raise SystemExit(f"fleet {args.fleet_command}: {exc}")
    raise SystemExit(f"unknown fleet subcommand {args.fleet_command!r}")


def _cmd_fabric(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ExperimentError

    try:
        if args.fabric_command == "autopsy":
            from pathlib import Path

            from repro.fleet.autopsy import (
                autopsy,
                land_autopsy,
                render_autopsy_html,
            )

            report = autopsy(
                args.store,
                args.campaign,
                journal=args.journal,
                telemetry_log=args.telemetry_log,
            )
            if args.html:
                Path(args.html).write_text(
                    render_autopsy_html(report), encoding="utf-8"
                )
            if args.autopsy_obs_db:
                from repro.obs import RunStore

                with RunStore(args.autopsy_obs_db) as obs_store:
                    run_id = land_autopsy(report, obs_store)
            if args.json:
                print(json.dumps(report.to_json(), indent=2, sort_keys=True,
                                 default=repr))
            else:
                print(report.render())
                if args.html:
                    print(f"html timeline: {args.html}")
                if args.autopsy_obs_db:
                    print(f"obs store: landed as run {run_id} in "
                          f"{args.autopsy_obs_db}")
            return 0 if report.passed else 1

        if args.fabric_command == "worker":
            from repro.fabric.faultplan import FaultPlan
            from repro.fabric.worker import WorkerConfig, run_worker

            if args.fault_plan_json:
                plan = FaultPlan.from_json(args.fault_plan_json)
            elif args.fault_plan:
                plan = FaultPlan.parse(args.fault_plan)
            else:
                plan = FaultPlan()
            return run_worker(WorkerConfig(
                store=args.store,
                campaign=args.campaign,
                worker_id=args.worker_id,
                lease_ttl=args.lease_ttl,
                poll_interval=args.poll_interval,
                stale_timeout=args.stale_timeout,
                fault_plan=plan,
            ))

        from repro.fabric.coordinator import FabricConfig

        worker_ids = [f"w{index}" for index in range(args.workers)]
        params = _parse_params(args.param)
        config = FabricConfig(
            spec=args.spec,
            params=params,
            store=args.store,
            workers=args.workers,
            chunksize=args.chunksize,
            lease_ttl=args.lease_ttl,
            stale_timeout=args.stale_timeout,
            fault_plan=_fabric_fault_plan(args, worker_ids),
            journal=getattr(args, "journal", None),
            timeout=args.timeout,
        )

        if args.fabric_command == "chaos":
            from repro.fabric.verify import verify_fabric

            report = verify_fabric(config)
            if args.json:
                print(json.dumps(
                    {
                        "passed": report.passed,
                        "byte_identical": report.byte_identical,
                        "fencing_errors": report.fencing_errors,
                        "visibility_errors": report.visibility_errors,
                        "fault_plan": config.fault_plan.spec(),
                        "takeovers": report.result.takeovers,
                        "fence_rejects": report.result.fence_rejects,
                        "chunks": report.result.chunks,
                        "wall_s": report.result.wall_s,
                        "worker_exits": report.result.worker_exits,
                    },
                    indent=2, sort_keys=True, default=repr,
                ))
            else:
                print(report.render())
            return 0 if report.passed else 1

        # fabric run
        from repro.fabric.coordinator import run_fabric
        from repro.fabric.specs import resolve_spec

        chrome_trace = getattr(args, "chrome_trace", None)
        telemetry_path = getattr(args, "telemetry", None)
        # Fleet mode: per-worker telemetry logs feed the merged trace
        # and the autopsy cross-check; on automatically whenever any
        # fleet output is requested.
        config.worker_telemetry = bool(
            getattr(args, "worker_telemetry", False)
            or telemetry_path
            or chrome_trace
        )
        config.prom = getattr(args, "prom", None)
        config.tower_port = getattr(args, "tower", None)
        if config.tower_port is not None:
            # The tower follows <store>.<worker>.telemetry.jsonl logs;
            # make sure the workers actually write them.
            config.worker_telemetry = True

        result = run_fabric(config)
        print(result.summary())
        if result.tower_port is not None:
            print(f"tower: served on http://127.0.0.1:{result.tower_port} "
                  f"(drained)")
        spec = resolve_spec(config.spec, config.params)
        code = 0
        if spec.summarize is not None:
            text, ok = spec.summarize(result.results)
            print()
            print(text)
            code = 0 if ok else 1
        if result.journal is not None:
            print(f"journal: {result.journal} (resumable by resilient_map)")
        if result.trace_id is not None and (telemetry_path or chrome_trace):
            print(f"trace: {result.trace_id}")
        if result.prom is not None:
            print(f"prometheus: {result.prom}")
        if chrome_trace:
            from pathlib import Path

            from repro.monitor.chrome_trace import (
                merge_records,
                validate_chrome_trace,
                write_chrome_trace,
            )
            from repro.monitor.tail import read_log_records

            streams: dict[str, list] = {}
            if telemetry_path:
                streams[""] = read_log_records(telemetry_path)
            for worker_id, log in sorted(result.worker_logs.items()):
                if Path(log).exists():
                    streams[worker_id] = read_log_records(log)
            trace = write_chrome_trace(merge_records(streams), chrome_trace)
            trace_errors = validate_chrome_trace(trace)
            if trace_errors:
                raise SystemExit(
                    f"fabric run: merged trace failed validation: "
                    f"{trace_errors[0]}"
                )
            print(f"chrome trace: {chrome_trace} "
                  f"({len(trace['traceEvents'])} events merged from "
                  f"{len(streams)} process stream(s))")
        return code
    except ExperimentError as exc:
        raise SystemExit(f"fabric {args.fabric_command}: {exc}")


def _cmd_tower(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ExperimentError
    from repro.tower import TowerConfig, run_tower

    try:
        config = TowerConfig(
            host=args.host,
            port=args.port,
            obs_db=args.tower_obs_db,
            follow=[Path(p) for p in args.follow],
            follow_pattern=args.pattern,
            webhooks=list(args.webhook),
            dead_letter=args.dead_letter,
            queue_size=args.queue_size,
            heartbeat=args.heartbeat,
            poll_interval=args.poll_interval,
            port_file=args.port_file,
        )
        return run_tower(config)
    except ExperimentError as exc:
        raise SystemExit(f"tower: {exc}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    text = build_report(args.results_dir)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BGI'87 radio-broadcast reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="enable library logging at this level (progress heartbeats, "
             "retry/fallback warnings, campaign verdicts); give it before "
             "the subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0)

    def add_observability(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry", default=None, metavar="PATH",
            help="stream structured JSON-lines events (run spans, phase "
                 "markers, chunk records, progress) to PATH; a manifest "
                 "sidecar lands at PATH.manifest.json",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="run under cProfile and print the top hotspots "
                 "(recorded to the event stream too when --telemetry is on)",
        )
        p.add_argument(
            "--provenance", action="store_true",
            help="record causal slot provenance (who transmitted into each "
                 "listening node, and why it did/didn't receive); streamed "
                 "as 'prov' events when --telemetry is on and queryable "
                 "later with 'obs explain'",
        )
        p.add_argument(
            "--obs-db", default=None, metavar="DB",
            help="auto-ingest the --telemetry log into this run-store "
                 "database when the command finishes (see 'obs ingest')",
        )
        p.add_argument(
            "--monitor", action="store_true",
            help="attach the live conformance monitor to the telemetry "
                 "stream (requires --telemetry): the paper's bounds are "
                 "checked as the campaign runs and violations land in the "
                 "log as 'alert' events (see 'monitor' for the "
                 "out-of-process version)",
        )
        p.add_argument(
            "--perf", action="store_true",
            help="run under the sampling profiler (repro.perf): wall-clock "
                 "stacks plus traced memory per span land in the telemetry "
                 "log as 'perf_profile'/'perf_span' events; pool and fabric "
                 "workers inherit the session via $REPRO_PERF",
        )
        p.add_argument(
            "--perf-hz", type=float, default=None, metavar="HZ",
            help="sampling rate for --perf (default: $REPRO_PERF or 97)",
        )
        p.add_argument(
            "--perf-out", default=None, metavar="BASE",
            help="with --perf: also write BASE.folded (collapsed stacks) "
                 "and BASE.html (flamegraph) when the command finishes",
        )

    p_bcast = sub.add_parser("broadcast", help="run one Decay broadcast")
    add_common(p_bcast)
    p_bcast.add_argument("--topology", default="gnp",
                         choices=["line", "ring", "grid", "gnp", "udg", "cn"])
    p_bcast.add_argument("-n", type=int, default=64)
    p_bcast.add_argument("--source", type=int, default=0)
    p_bcast.add_argument("--epsilon", type=float, default=0.05)
    p_bcast.add_argument("--timeline", action="store_true",
                         help="render an ASCII action timeline")
    p_bcast.add_argument("--timeline-nodes", type=int, default=16)
    p_bcast.set_defaults(func=_cmd_broadcast)

    p_bfs = sub.add_parser("bfs", help="run the Decay BFS")
    add_common(p_bfs)
    p_bfs.add_argument("--topology", default="grid",
                       choices=["line", "ring", "grid", "gnp", "udg", "cn"])
    p_bfs.add_argument("-n", type=int, default=25)
    p_bfs.add_argument("--source", type=int, default=0)
    p_bfs.add_argument("--epsilon", type=float, default=0.05)
    p_bfs.set_defaults(func=_cmd_bfs)

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for Monte-Carlo repetitions "
                 "(default: $REPRO_JOBS or 1; 0 = all CPUs); results are "
                 "identical to serial runs",
        )
        p.add_argument(
            "--task-timeout", type=float, default=None, metavar="SECONDS",
            help="per-repetition wall-clock budget on the pool; a chunk "
                 "exceeding it is presumed hung, its workers are terminated "
                 "and it is retried (default: unbounded)",
        )
        p.add_argument(
            "--backend", default=None, choices=["reference", "numpy", "auto"],
            help="engine backend for seeded runs (default: $REPRO_BACKEND "
                 "or reference); numpy batches Monte-Carlo trials through "
                 "the vectorized engine — seed-for-seed identical results, "
                 "needs the 'fast' extra; auto uses numpy when available",
        )

    p_gap = sub.add_parser("gap", help="print the exponential-gap table (E5)")
    add_common(p_gap)
    p_gap.add_argument("--reps", type=int, default=10)
    p_gap.add_argument("--quick", action="store_true")
    add_jobs(p_gap)
    add_observability(p_gap)
    p_gap.set_defaults(func=_cmd_gap)

    p_exp = sub.add_parser("experiment", help="run an experiment by id (e1..e12)")
    add_common(p_exp)
    p_exp.add_argument("id")
    p_exp.add_argument("--reps", type=int, default=10)
    p_exp.add_argument("--quick", action="store_true")
    add_jobs(p_exp)
    add_observability(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_chaos = sub.add_parser(
        "chaos",
        help="run an adversarial fault-injection campaign and check invariants",
    )
    add_common(p_chaos)
    p_chaos.add_argument("-n", type=int, default=48)
    p_chaos.add_argument("--reps", type=int, default=40,
                         help="trials per arm (proviso + control)")
    p_chaos.add_argument("--epsilon", type=float, default=0.1)
    p_chaos.add_argument("--protocol", default="decay",
                         help="registered protocol to stress (see repro.chaos.PROTOCOLS)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="tiny campaign for CI smoke runs")
    p_chaos.add_argument("--journal", default=None, metavar="PATH",
                         help="checkpoint completed chunks to this JSON-lines file")
    p_chaos.add_argument("--resume", action="store_true",
                         help="resume a killed campaign from --journal "
                              "(byte-identical final results)")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the machine-readable report instead of the table")
    add_jobs(p_chaos)
    add_observability(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_report = sub.add_parser("report", help="assemble the reproduction report")
    p_report.add_argument("--results-dir", default="benchmarks/results")
    p_report.add_argument("--output", default=None)
    p_report.set_defaults(func=_cmd_report)

    p_tel = sub.add_parser(
        "telemetry", help="summarize or validate a --telemetry event log"
    )
    p_tel.add_argument("log", help="JSON-lines event log written by --telemetry")
    p_tel.add_argument("--validate", action="store_true",
                       help="check every line against the event schema and exit")
    p_tel.add_argument("--json", action="store_true",
                       help="emit the machine-readable summary instead of tables")
    p_tel.set_defaults(func=_cmd_telemetry)

    p_mon = sub.add_parser(
        "monitor",
        help="stream a telemetry log through the live conformance checkers "
             "(theorem-bound SLOs, status board, alert gate)",
    )
    p_mon.add_argument("log", help="JSON-lines event log written by --telemetry")
    p_mon.add_argument("--follow", action="store_true",
                       help="keep tailing the log as the campaign appends to "
                            "it (torn trailing lines are buffered, not errors)")
    p_mon.add_argument("--gate", action="store_true",
                       help="exit 1 if any conformance alert fires (CI gate)")
    p_mon.add_argument("--epsilon", type=float, default=None,
                       help="failure budget the SLOs assume (default: the "
                            "log manifest's epsilon, else 0.1)")
    p_mon.add_argument("--alpha", type=float, default=1e-4,
                       help="statistical false-alarm bound per SLO: alerts "
                            "fire only when the Hoeffding tail drops below "
                            "this (default 1e-4)")
    p_mon.add_argument("--min-runs", type=int, default=8,
                       help="runs observed before the statistical SLOs may "
                            "fire (default 8)")
    p_mon.add_argument("--diameter", type=int, default=None,
                       help="graph diameter for the Theorem 4 budget "
                            "(default: worst case n-1)")
    p_mon.add_argument("--max-degree", type=int, default=None,
                       help="max degree for the Theorem 4 budget "
                            "(default: worst case n-1)")
    p_mon.add_argument("--assume-deterministic", action="store_true",
                       help="arm the Omega(n) lower-bound floor checker "
                            "(only sound for deterministic protocols)")
    p_mon.add_argument("--interval", type=float, default=0.5,
                       help="status-board refresh interval in seconds")
    p_mon.add_argument("--idle-timeout", type=float, default=None,
                       help="with --follow: stop after this many seconds "
                            "without new records (default: follow until ^C)")
    p_mon.add_argument("--no-write-alerts", action="store_true",
                       help="do not append fired alerts to the log as "
                            "'alert' records")
    p_mon.add_argument("--plain", action="store_true",
                       help="plain status lines instead of the in-place TTY "
                            "board (automatic when stdout is not a TTY)")
    p_mon.add_argument("--chrome-trace", default=None, metavar="PATH",
                       help="also export the log as a Chrome/Perfetto "
                            "trace-event file after the pass")
    p_mon.add_argument("--json", action="store_true",
                       help="emit the machine-readable monitor report "
                            "instead of the board")
    p_mon.set_defaults(func=_cmd_monitor)

    p_obs = sub.add_parser(
        "obs",
        help="cross-run observability: ingest telemetry logs into a run "
             "store, compare runs, track trends, render dashboards, and "
             "explain per-slot outcomes",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_ingest = obs_sub.add_parser(
        "ingest", help="load telemetry logs / BENCH_*.json into the run store"
    )
    p_ingest.add_argument("db", help="run-store SQLite database (created if missing)")
    p_ingest.add_argument("paths", nargs="+",
                          help="telemetry JSON-lines logs or bench records "
                               "(auto-detected; idempotent re-ingest)")

    p_cmp = obs_sub.add_parser("compare", help="A/B diff two ingested runs")
    p_cmp.add_argument("db")
    p_cmp.add_argument("a", help="run id, fingerprint prefix, 'latest' or 'prev'")
    p_cmp.add_argument("b", help="run id, fingerprint prefix, 'latest' or 'prev'")
    p_cmp.add_argument("--json", action="store_true")

    p_trend = obs_sub.add_parser(
        "trend", help="a metric over ordered runs, with regression detection"
    )
    p_trend.add_argument("db")
    p_trend.add_argument("--metric", default="slots_per_sec",
                         help="aggregate metric name (default: slots_per_sec; "
                              "with --source bench: combined_slots_per_sec)")
    p_trend.add_argument("--source", default="runs", choices=["runs", "bench"],
                         help="trend over ingested runs or the bench trajectory")
    p_trend.add_argument("--check", action="store_true",
                         help="exit 1 when the latest point regressed beyond "
                              "--threshold vs the median of the last "
                              "--baseline-k points (CI gate; exit codes: "
                              "0 = checked and clean, 1 = regression, "
                              "2 = bad invocation such as an unknown "
                              "metric/source or invalid threshold)")
    p_trend.add_argument("--threshold", type=float, default=None,
                         help="relative regression threshold (default 0.2 = 20%%)")
    p_trend.add_argument("--baseline-k", type=int, default=None,
                         help="baseline = median of this many prior points "
                              "(default 3)")
    p_trend.add_argument("--direction", default=None, choices=["up", "down"],
                         help="which way is good (default: per-metric)")
    p_trend.add_argument("--json", action="store_true")
    p_trend.add_argument("--html", default=None, metavar="PATH",
                         help="also write a self-contained HTML trend dashboard")

    p_obs_report = obs_sub.add_parser(
        "report", help="per-run report (terminal tables or HTML dashboard)"
    )
    p_obs_report.add_argument("db")
    p_obs_report.add_argument("--run", default="latest",
                              help="run id, fingerprint prefix, 'latest' or 'prev'")
    p_obs_report.add_argument("--json", action="store_true")
    p_obs_report.add_argument("--html", default=None, metavar="PATH",
                              help="write a self-contained HTML dashboard")

    p_explain = obs_sub.add_parser(
        "explain",
        help="why did/didn't a node receive in a slot (causal provenance)",
    )
    p_explain.add_argument("db")
    p_explain.add_argument("--run", default="latest",
                           help="run id, fingerprint prefix, 'latest' or 'prev'")
    p_explain.add_argument("--node", default=None,
                           help="node label as printed (e.g. 5, or '(1, 2)')")
    p_explain.add_argument("--slot", default=None, type=int)
    p_explain.add_argument("--fabric", action="store_true",
                           help="print the run's fabric/fleet aggregates "
                                "(lease audit counts, registry totals) "
                                "instead of slot provenance")
    # dest avoids main()'s --perf session wiring: this flag selects what
    # to print, it does not ask to profile the explain command itself.
    p_explain.add_argument("--perf", dest="perf_aggregates",
                           action="store_true",
                           help="print the run's perf-plane aggregates "
                                "(sampled span costs, cProfile hotspots) "
                                "instead of slot provenance")
    p_explain.add_argument("--engine-run", default=None, metavar="TAG",
                           help="engine-run tag within the log (e.g. r3) when "
                                "a campaign recorded this (node, slot) more "
                                "than once")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the full explanation object as JSON")

    p_export = obs_sub.add_parser(
        "export",
        help="export a telemetry log as a Chrome trace-event file "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    p_export.add_argument("log", help="JSON-lines event log written by --telemetry")
    p_export.add_argument("--chrome-trace", required=True, metavar="PATH",
                          help="where to write the trace JSON")

    p_obs_perf = obs_sub.add_parser(
        "perf",
        help="the perf plane of an ingested run: sampled span costs, "
             "traced memory, cProfile hotspots, and a cross-run "
             "regression gate over any perf.* metric",
    )
    p_obs_perf.add_argument("db")
    p_obs_perf.add_argument("--run", default="latest",
                            help="run id, fingerprint prefix, 'latest' or 'prev'")
    p_obs_perf.add_argument("--metric", default=None, metavar="NAME",
                            help="trend this perf.* metric over ordered runs "
                                 "instead of printing the per-run overview")
    p_obs_perf.add_argument("--check", action="store_true",
                            help="with --metric: exit 1 when the latest point "
                                 "regressed beyond --threshold vs the median "
                                 "of the last --baseline-k points (CI gate; "
                                 "exit codes: 0 = checked and clean, 1 = "
                                 "regression, 2 = bad invocation)")
    p_obs_perf.add_argument("--threshold", type=float, default=None,
                            help="relative regression threshold (default 0.2)")
    p_obs_perf.add_argument("--baseline-k", type=int, default=None,
                            help="baseline = median of this many prior points "
                                 "(default 3)")
    p_obs_perf.add_argument("--json", action="store_true")
    p_obs.set_defaults(func=_cmd_obs)

    p_perf = sub.add_parser(
        "perf",
        help="performance plane: record any command under the sampling "
             "profiler, render folded stacks as a flamegraph, diff two "
             "profiles",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    p_perf_rec = perf_sub.add_parser(
        "record",
        help="run any repro command under the sampling profiler and "
             "write BASE.folded + BASE.html",
    )
    p_perf_rec.add_argument("--hz", type=float, default=None,
                            help="sampling rate (default 97)")
    p_perf_rec.add_argument("--out", default="perf", metavar="BASE",
                            help="artifact basename: BASE.folded collapsed "
                                 "stacks and BASE.html flamegraph "
                                 "(default: perf)")
    p_perf_rec.add_argument("--no-memory", action="store_true",
                            help="skip tracemalloc accounting (lower overhead)")
    p_perf_rec.add_argument("cmd", nargs=argparse.REMAINDER,
                            help="the repro command to profile, e.g. "
                                 "'gap --quick --jobs 2'")
    p_perf_rec.set_defaults(func=_cmd_perf)

    p_perf_flame = perf_sub.add_parser(
        "flame",
        help="render a .folded file or a telemetry log's perf_profile "
             "records as a self-contained flamegraph HTML",
    )
    p_perf_flame.add_argument("input",
                              help=".folded stacks or a --telemetry JSONL log "
                                   "(perf_profile records are merged)")
    p_perf_flame.add_argument("--out", required=True, metavar="HTML",
                              help="where to write the flamegraph")
    p_perf_flame.add_argument("--title", default=None)
    p_perf_flame.set_defaults(func=_cmd_perf)

    p_perf_diff = perf_sub.add_parser(
        "diff",
        help="per-frame share drift between two profiles (each side a "
             ".folded file or telemetry log)",
    )
    p_perf_diff.add_argument("before")
    p_perf_diff.add_argument("after")
    p_perf_diff.add_argument("--top", type=int, default=20,
                             help="rows to show, biggest growth first")
    p_perf_diff.add_argument("--json", action="store_true")
    p_perf_diff.set_defaults(func=_cmd_perf)

    p_fab = sub.add_parser(
        "fabric",
        help="crash-safe distributed campaign fabric: lease-fenced worker "
             "subprocesses over a shared SQLite store",
    )
    fab_sub = p_fab.add_subparsers(dest="fabric_command", required=True)

    def add_fabric_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default="fabric.db", metavar="DB",
                       help="shared SQLite lease store (created if missing); "
                            "per-worker logs land next to it")
        p.add_argument("--lease-ttl", type=float, default=2.0,
                       help="seconds a chunk lease survives without a "
                            "heartbeat before any worker may take it over")
        p.add_argument("--stale-timeout", type=float, default=30.0,
                       help="how long a 'stale' fault waits to be superseded "
                            "before giving up on demonstrating the rejection")

    def add_fabric_campaign(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", default="slow-squares",
                       help="registered campaign spec "
                            "(squares, slow-squares, chaos, ...)")
        p.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="spec parameter (repeatable); values parse as "
                            "JSON, e.g. --param n=24 --param delay=0.05")
        p.add_argument("--workers", type=int, default=3,
                       help="worker subprocesses (0 = coordinator only)")
        p.add_argument("--chunksize", type=int, default=None,
                       help="items per chunk lease (default: derived from "
                            "item count and worker count)")
        p.add_argument("--timeout", type=float, default=300.0,
                       help="overall campaign deadline in seconds")
        p.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="harness faults to inject, e.g. "
                            "'kill@w1#0,stall@w0#1=3.0,stale@w2#0' "
                            "(see repro.fabric.faultplan)")

    p_fab_run = fab_sub.add_parser(
        "run", help="run a campaign spec across worker subprocesses"
    )
    add_common(p_fab_run)
    add_fabric_common(p_fab_run)
    add_fabric_campaign(p_fab_run)
    p_fab_run.add_argument("--journal", default=None, metavar="PATH",
                           help="also write the spliced results as a "
                                "resilient_map campaign journal "
                                "(byte-identical, resumable)")
    p_fab_run.add_argument("--prom", default=None, metavar="PATH",
                           help="write the campaign's metrics registry as a "
                                "Prometheus text exposition when it finishes")
    p_fab_run.add_argument("--chrome-trace", default=None, metavar="PATH",
                           help="merge the coordinator and per-worker "
                                "telemetry logs into one Chrome/Perfetto "
                                "trace with a process lane per worker "
                                "(implies --worker-telemetry)")
    p_fab_run.add_argument("--tower", type=int, default=None, nargs="?",
                           const=0, metavar="PORT",
                           help="serve a live observability tower for the "
                                "campaign's lifetime: SSE /stream over the "
                                "coordinator bus + worker logs, Prometheus "
                                "/metrics, /dashboard (PORT omitted or 0 = "
                                "ephemeral; the bound port lands in "
                                "<store>.tower.port)")
    p_fab_run.add_argument("--worker-telemetry", action="store_true",
                           help="give each worker its own telemetry log at "
                                "<store>.<worker>.telemetry.jsonl, stamped "
                                "with the campaign trace (automatic with "
                                "--telemetry or --chrome-trace)")
    add_observability(p_fab_run)
    p_fab_run.set_defaults(func=_cmd_fabric)

    p_fab_worker = fab_sub.add_parser(
        "worker", help="one fabric worker process (spawned by 'fabric run')"
    )
    p_fab_worker.add_argument("--store", required=True)
    p_fab_worker.add_argument("--campaign", required=True,
                              help="campaign fingerprint in the lease store")
    p_fab_worker.add_argument("--worker-id", required=True)
    p_fab_worker.add_argument("--lease-ttl", type=float, default=2.0)
    p_fab_worker.add_argument("--poll-interval", type=float, default=0.1)
    p_fab_worker.add_argument("--stale-timeout", type=float, default=30.0)
    p_fab_worker.add_argument("--fault-plan", default=None)
    p_fab_worker.add_argument("--fault-plan-json", default=None,
                              help="serialized per-worker fault sub-plan "
                                   "(coordinator internal)")
    p_fab_worker.add_argument("--telemetry", default=None, metavar="PATH",
                              help="stream this worker's events to PATH; the "
                                   "coordinator's trace context (inherited "
                                   "via the environment) stamps every record")
    p_fab_worker.set_defaults(func=_cmd_fabric)

    p_fab_chaos = fab_sub.add_parser(
        "chaos",
        help="self-verification: run the campaign under a seeded fault plan "
             "and assert byte-identical results with sound fencing",
    )
    add_common(p_fab_chaos)
    add_fabric_common(p_fab_chaos)
    add_fabric_campaign(p_fab_chaos)
    p_fab_chaos.add_argument("--kills", type=int, default=1,
                             help="workers to kill -9 mid-chunk (seeded plan)")
    p_fab_chaos.add_argument("--stalls", type=int, default=1,
                             help="workers to stall past their lease")
    p_fab_chaos.add_argument("--stales", type=int, default=1,
                             help="stale-commit attempts to force")
    p_fab_chaos.add_argument("--partitions", type=int, default=0,
                             help="store-partition windows to inject")
    p_fab_chaos.add_argument("--max-ordinal", type=int, default=1,
                             help="latest per-worker chunk ordinal a random "
                                  "fault may target")
    p_fab_chaos.add_argument("--json", action="store_true",
                             help="emit the machine-readable verdict")
    add_observability(p_fab_chaos)
    p_fab_chaos.set_defaults(func=_cmd_fabric, random_faults=True)

    p_fab_autopsy = fab_sub.add_parser(
        "autopsy",
        help="reconstruct a finished (or crashed) campaign's lease/fence/"
             "takeover timeline from the store's audit log, verify the "
             "fencing contract, and cross-check the journal splice",
    )
    p_fab_autopsy.add_argument("--store", default="fabric.db", metavar="DB",
                               help="the campaign's SQLite lease store")
    p_fab_autopsy.add_argument("--campaign", default=None, metavar="PREFIX",
                               help="campaign fingerprint prefix (default: "
                                    "the store's only campaign)")
    p_fab_autopsy.add_argument("--journal", default=None, metavar="PATH",
                               help="cross-check the splice against this "
                                    "campaign journal byte-for-byte")
    p_fab_autopsy.add_argument("--telemetry-log", default=None, metavar="PATH",
                               help="cross-check the store's audit trail "
                                    "against this telemetry log (coverage + "
                                    "final metrics snapshot reconciliation)")
    p_fab_autopsy.add_argument("--html", default=None, metavar="PATH",
                               help="write a self-contained HTML timeline "
                                    "dashboard (one lane per chunk)")
    # dest avoids the global --obs-db/--telemetry pairing in main():
    # autopsy lands store rows itself rather than re-ingesting a log.
    p_fab_autopsy.add_argument("--obs-db", dest="autopsy_obs_db", default=None,
                               metavar="DB",
                               help="land the autopsy as obs-store rows "
                                    "(idempotent per campaign)")
    p_fab_autopsy.add_argument("--json", action="store_true",
                               help="emit the machine-readable report")
    p_fab_autopsy.set_defaults(func=_cmd_fabric)

    p_fleet = sub.add_parser(
        "fleet",
        help="fleet observability for fabric campaigns: live multi-process "
             "board, merged Chrome traces, metrics registry exposition",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_fleet_board = fleet_sub.add_parser(
        "board",
        help="follow the lease store plus every worker telemetry log and "
             "render per-worker health lanes under the live status board",
    )
    p_fleet_board.add_argument("--store", default="fabric.db", metavar="DB",
                               help="the campaign's SQLite lease store")
    p_fleet_board.add_argument("--campaign", default=None, metavar="PREFIX",
                               help="campaign fingerprint prefix (default: "
                                    "the store's only campaign)")
    p_fleet_board.add_argument("--log", action="append", default=[],
                               metavar="PATH",
                               help="telemetry log to tail alongside the "
                                    "store (repeatable)")
    p_fleet_board.add_argument("--no-auto-logs", action="store_true",
                               help="do not auto-discover "
                                    "<store>.<worker>.telemetry.jsonl logs "
                                    "next to the store")
    p_fleet_board.add_argument("--epsilon", type=float, default=None,
                               help="failure budget the conformance SLOs "
                                    "assume (default: from the stream's "
                                    "manifest)")
    p_fleet_board.add_argument("--idle-timeout", type=float, default=10.0,
                               help="stop after this many seconds without "
                                    "new records (default 10)")
    p_fleet_board.add_argument("--interval", type=float, default=0.5,
                               help="status-board refresh interval in seconds")
    p_fleet_board.add_argument("--plain", action="store_true",
                               help="plain status lines instead of the "
                                    "in-place TTY board")
    p_fleet_board.add_argument("--gate", action="store_true",
                               help="exit 1 if any conformance alert fires")
    p_fleet_board.add_argument("--json", action="store_true",
                               help="emit the final board + monitor report "
                                    "as JSON")
    p_fleet_board.set_defaults(func=_cmd_fleet)

    p_fleet_trace = fleet_sub.add_parser(
        "trace",
        help="merge coordinator + per-worker telemetry logs into one "
             "Chrome/Perfetto trace with a process lane per worker",
    )
    p_fleet_trace.add_argument("logs", nargs="+",
                               help="telemetry logs; worker ids are parsed "
                                    "from <store>.<worker>.telemetry.jsonl "
                                    "names, other logs land on the "
                                    "coordinator lane")
    p_fleet_trace.add_argument("--out", required=True, metavar="PATH",
                               help="where to write the merged trace JSON")
    p_fleet_trace.set_defaults(func=_cmd_fleet)

    p_fleet_metrics = fleet_sub.add_parser(
        "metrics",
        help="reconstruct the metrics registry from 'metrics' snapshot "
             "records and print the Prometheus text exposition",
    )
    p_fleet_metrics.add_argument("logs", nargs="+",
                                 help="telemetry logs holding 'metrics' "
                                      "snapshot records (later snapshots "
                                      "overwrite earlier series)")
    p_fleet_metrics.add_argument("--prom", default=None, metavar="PATH",
                                 help="write the exposition to PATH instead "
                                      "of stdout")
    p_fleet_metrics.add_argument("--json", action="store_true",
                                 help="emit the merged snapshot as JSON")
    p_fleet_metrics.set_defaults(func=_cmd_fleet)

    p_tower = sub.add_parser(
        "tower",
        help="long-running observability gateway: live telemetry over SSE, "
             "Prometheus /metrics, run history + dashboard from an obs "
             "store, and alert webhooks with a dead-letter journal",
    )
    p_tower.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_tower.add_argument("--port", type=int, default=0,
                         help="bind port (default 0 = ephemeral; the bound "
                              "port is printed and written to --port-file)")
    p_tower.add_argument("--port-file", default=None, metavar="PATH",
                         help="write the bound port here once listening")
    # dest dodges the global --obs-db/--telemetry pairing in main():
    # the tower reads the store, it does not ingest a log into it.
    p_tower.add_argument("--obs-db", dest="tower_obs_db", default=None,
                         metavar="DB",
                         help="obs store backing /runs, /trend and "
                              "/dashboard (read-only, WAL-safe alongside "
                              "concurrent ingests)")
    p_tower.add_argument("--follow", action="append", default=[],
                         metavar="PATH",
                         help="telemetry log or directory of logs to tail "
                              "into /stream (repeatable; directories are "
                              "rescanned live, so worker logs that appear "
                              "later are picked up)")
    p_tower.add_argument("--pattern", default="*.jsonl", metavar="GLOB",
                         help="log filename glob for --follow directories "
                              "(default *.jsonl)")
    p_tower.add_argument("--webhook", action="append", default=[],
                         metavar="URL",
                         help="POST every alert record to this http:// URL "
                              "(repeatable; seeded-jitter retries, failures "
                              "land in the dead-letter journal)")
    p_tower.add_argument("--dead-letter", default=None, metavar="PATH",
                         help="JSONL journal for alerts that exhausted "
                              "their webhook retries (replayed by POST "
                              "/webhooks/drain)")
    p_tower.add_argument("--queue-size", type=int, default=256,
                         help="per-client SSE queue bound; a slower "
                              "consumer drops records (with an in-stream "
                              "gap marker) instead of stalling anyone "
                              "(default 256)")
    p_tower.add_argument("--heartbeat", type=float, default=15.0,
                         help="idle seconds between SSE keepalive comments "
                              "(default 15)")
    p_tower.add_argument("--poll-interval", type=float, default=0.2,
                         help="--follow tail poll interval in seconds "
                              "(default 0.2)")
    p_tower.set_defaults(func=_cmd_tower)

    p_game = sub.add_parser("game", help="foil a hitting-game strategy")
    add_common(p_game)
    p_game.add_argument("--strategy", default="sweep")
    p_game.add_argument("-n", type=int, default=64)
    p_game.add_argument("--show-set", action="store_true")
    p_game.set_defaults(func=_cmd_game)

    return parser


def _manifest_config(args: argparse.Namespace) -> dict:
    """The command's effective configuration, for the run manifest."""
    config = {
        key: value
        for key, value in vars(args).items()
        if key not in ("func", "telemetry", "profile", "log_level", "obs_db",
                       "monitor", "perf", "perf_hz", "perf_out")
        and not callable(value)
    }
    return config


def _finish_perf(args, session, recorder, previous_ambient) -> None:
    """Stop a ``--perf`` session: clear the ambient registry, emit the
    ``perf_*`` records into the telemetry stream (when there is one),
    and write the ``--perf-out`` artifacts."""
    from repro.perf import core as _perf_core
    from repro.perf import render_flamegraph

    session.stop()
    _perf_core.set_active(previous_ambient)
    if recorder is not None:
        session.emit(recorder)
    print(f"\n[perf] {session.sampler.samples} samples @ {session.hz:g} Hz "
          f"over {session.sampler.wall_s:.2f}s "
          f"({len(session.counts)} distinct stacks)")
    if recorder is None:
        # Nowhere durable to land the records: show the attribution here.
        for row in session.span_table():
            print(f"[perf]   {row['label']}: {row['secs']:.3f}s "
                  f"({row['samples']} samples, "
                  f"peak {row['mem_peak_kb']:.1f} KiB)")
    base = getattr(args, "perf_out", None)
    if base:
        import pathlib

        pathlib.Path(f"{base}.folded").write_text(
            session.folded_text(), encoding="utf-8"
        )
        pathlib.Path(f"{base}.html").write_text(
            render_flamegraph(
                session.counts,
                title=f"repro {args.command}",
                subtitle=(f"{session.sampler.samples} samples @ "
                          f"{session.hz:g} Hz"),
            ),
            encoding="utf-8",
        )
        print(f"[perf] wrote {base}.folded and {base}.html")


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, honouring ``--profile`` if present."""
    if getattr(args, "profile", False):
        from repro.telemetry.profiling import profile_call

        code, report = profile_call(args.func, args)
        print()
        print(report.rstrip())
        return code
    return args.func(args)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.log_level:
        import logging

        logging.basicConfig(
            level=getattr(logging, args.log_level),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    telemetry_path = getattr(args, "telemetry", None)
    obs_db = getattr(args, "obs_db", None)
    if obs_db and not telemetry_path:
        raise SystemExit("--obs-db requires --telemetry (the log is what is ingested)")
    wants_monitor = getattr(args, "monitor", False)
    if wants_monitor and not telemetry_path:
        raise SystemExit(
            "--monitor requires --telemetry (the monitor subscribes to the "
            "event stream; use 'repro monitor <log> --follow' to watch an "
            "existing log instead)"
        )
    # --provenance rides on the ambient REPRO_PROVENANCE gate so every
    # engine the command constructs (including in pool workers, which
    # inherit the environment) records causal slot provenance.
    wants_provenance = getattr(args, "provenance", False)
    previous_provenance = os.environ.get("REPRO_PROVENANCE")
    if wants_provenance:
        os.environ["REPRO_PROVENANCE"] = "1"
    # --perf similarly rides on REPRO_PERF so pool/fabric workers sample
    # themselves; the parent session is made ambient around dispatch and
    # its records land in the telemetry stream before the log closes.
    wants_perf = getattr(args, "perf", False)
    previous_perf = os.environ.get(_PERF_ENV) if wants_perf else None
    perf_session = None
    perf_previous_ambient = None
    if wants_perf:
        from repro.perf import DEFAULT_HZ, PerfSession, hz_from_env
        from repro.perf import core as _perf_core

        perf_hz = getattr(args, "perf_hz", None)
        if perf_hz is None:
            perf_hz = hz_from_env() or DEFAULT_HZ
        perf_session = PerfSession(perf_hz)
        perf_session.to_env(os.environ)
        perf_previous_ambient = _perf_core.set_active(perf_session)
        perf_session.start()
    try:
        if telemetry_path:
            from repro.telemetry import Telemetry, activate

            recorder = Telemetry.to_path(telemetry_path)
            detach_monitor = None
            if wants_monitor:
                from repro.monitor import attach_monitor

                # Attach before the manifest lands so the checkers see it
                # (it selects the checker family and pins epsilon).
                _live, detach_monitor = attach_monitor(recorder)
            recorder.write_manifest(
                command=args.command,
                seed=getattr(args, "seed", None),
                config=_manifest_config(args),
            )
            with recorder, activate(recorder):
                code = _dispatch(args)
                if detach_monitor is not None:
                    monitor_report = detach_monitor()
                if perf_session is not None:
                    _finish_perf(args, perf_session, recorder,
                                 perf_previous_ambient)
                    perf_session = None
            if detach_monitor is not None:
                if monitor_report.alerts:
                    print(f"\n[monitor] {len(monitor_report.alerts)} "
                          f"conformance alert(s) fired:")
                    for alert in monitor_report.alerts:
                        print(f"[monitor]   ! {alert.describe()}")
                else:
                    print(f"\n[monitor] no conformance alerts over "
                          f"{monitor_report.records} records")
            if obs_db:
                from repro.obs import RunStore, ingest_log

                with RunStore(obs_db) as store:
                    result = ingest_log(store, telemetry_path)
                print(f"[obs] {result.describe()}")
            return code
        code = _dispatch(args)
        if perf_session is not None:
            _finish_perf(args, perf_session, None, perf_previous_ambient)
            perf_session = None
        return code
    finally:
        if perf_session is not None:
            # An exception path: stop the sampler and clear the registry
            # without emitting (there may be nowhere to emit to).
            from repro.perf import core as _perf_core

            perf_session.stop()
            _perf_core.set_active(perf_previous_ambient)
        if wants_perf:
            if previous_perf is None:
                os.environ.pop(_PERF_ENV, None)
            else:
                os.environ[_PERF_ENV] = previous_perf
        if wants_provenance:
            if previous_provenance is None:
                os.environ.pop("REPRO_PROVENANCE", None)
            else:
                os.environ["REPRO_PROVENANCE"] = previous_provenance


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
