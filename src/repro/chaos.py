"""Adversarial fault-injection campaigns (chaos testing the paper's claims).

The paper's property 3 says Broadcast tolerates *arbitrary* edge
changes "provided that the network of unchanged edges remains
connected".  The E9 experiment probes that with one fault family; this
module stress-tests it with randomized *campaigns* mixing every fault
the simulator can express — edge kills, transient crash–recover
outages, lossy links and adversarial jammers (see
:mod:`repro.sim.faults`) — and checks machine-readable invariants:

* **safety** (must hold in every run, however hostile):
  - *integrity*: a node that claims to be informed holds exactly the
    broadcast payload (jam noise must never be delivered as data);
  - *no phantom completion*: no node runs its Decay phases — i.e. acts
    as an informed forwarder — without holding the message;
  - *accounting*: every recorded reception belongs to an informed node.
* **liveness** (holds only under the proviso): across the campaign's
  ``proviso`` arm the broadcast success rate stays at least
  ``1 − ε − mc_slack``.
* **the proviso is load-bearing**: the ``control`` arm severs one
  spanning-tree cut (a *minimal* proviso violation — only edges
  crossing a single cut are touched), and its success rate must
  collapse to :attr:`ChaosConfig.control_success_max`.

Campaigns are data all the way down: every trial derives from the
campaign's master seed, the per-trial fault schedule is regenerated
from the trial seed, and execution goes through
:func:`repro.parallel.resilient_map` — so a campaign can be journaled,
killed, resumed and replayed with byte-identical results
(``python -m repro chaos --journal c.jsonl``, later ``--resume``).
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable

from repro.analysis.tables import Table
from repro.core.bounds import decay_phase_length, theorem4_slot_bound
from repro.errors import ExperimentError, SimulationError
from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs.generators import random_gnp
from repro.graphs.graph import Graph
from repro.graphs.properties import is_connected, max_degree
from repro.parallel import resilient_map
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import seed_sequence, spawn
from repro.sim.backends import resolve_backend
from repro.sim.engine import RunResult
from repro.sim.faults import (
    CrashFault,
    EdgeFault,
    FaultSchedule,
    JamFault,
    LinkLossFault,
    random_edge_kill_schedule,
)
from repro.telemetry.core import event as _telemetry_event

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "run_chaos_campaign",
    "chaos_tasks",
    "build_proviso_schedule",
    "build_control_schedule",
    "check_invariants",
    "PROTOCOLS",
]

logger = logging.getLogger("repro.chaos")

ARMS = ("proviso", "control")

#: The broadcast payload every campaign uses (integrity is checked
#: against it).
MESSAGE = "m"

_SOURCE = 0


def _run_decay(g: Graph, seed: int, epsilon: float, faults: FaultSchedule) -> RunResult:
    return run_decay_broadcast(
        g, source=_SOURCE, seed=seed, epsilon=epsilon, faults=faults
    )


def _run_decay_unaligned(
    g: Graph, seed: int, epsilon: float, faults: FaultSchedule
) -> RunResult:
    return run_decay_broadcast(
        g, source=_SOURCE, seed=seed, epsilon=epsilon, faults=faults, align_phases=False
    )


#: Protocol registry: name -> runner(graph, seed, epsilon, faults).
#: Any protocol exposing the broadcast RunResult surface can be chaos-
#: tested by registering it here (runners must be module-level so
#: campaigns stay picklable for the process pool).
PROTOCOLS: dict[str, Callable[[Graph, int, float, FaultSchedule], RunResult]] = {
    "decay": _run_decay,
    "decay-unaligned": _run_decay_unaligned,
}


def _run_decay_numpy(g: Graph, seed: int, epsilon: float, faults: FaultSchedule):
    from repro.sim.vectorized import run_decay_broadcast_batch

    return run_decay_broadcast_batch(g, _SOURCE, [seed], epsilon=epsilon, faults=faults)[0]


def _run_decay_unaligned_numpy(
    g: Graph, seed: int, epsilon: float, faults: FaultSchedule
):
    from repro.sim.vectorized import run_decay_broadcast_batch

    return run_decay_broadcast_batch(
        g, _SOURCE, [seed], epsilon=epsilon, faults=faults, align_phases=False
    )[0]


#: Vectorized counterparts (seed-identical; enforced by the parity
#: suite).  Chaos trials each draw their own topology and schedule, so
#: there is nothing to batch *across* trials — the vectorized runner
#: still resolves each slot with array ops.  Protocols without an entry
#: fall back to their reference runner.
VECTOR_PROTOCOLS: dict[str, Callable[[Graph, int, float, FaultSchedule], Any]] = {
    "decay": _run_decay_numpy,
    "decay-unaligned": _run_decay_unaligned_numpy,
}


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign, fully specified (and fully replayable).

    The fault knobs set the *intensity* of the proviso arm: fractions
    of killable edges / crashable nodes, the per-reception loss
    probability, and jammer count.  ``mc_slack`` is the Monte-Carlo
    allowance added to ε when judging the liveness invariant, and
    ``control_success_max`` the ceiling the control arm must stay
    under (0.0: severing a cut must always break broadcast).
    ``backend`` picks the engine backend per
    :func:`repro.sim.backends.resolve_backend`; verdicts are
    seed-identical either way, and it never enters the journal
    fingerprint, so campaigns resume across backends.
    """

    n: int = 48
    reps: int = 40
    epsilon: float = 0.1
    master_seed: int = 20260806
    protocol: str = "decay"
    edge_kill_fraction: float = 0.5
    crash_fraction: float = 0.1
    crash_outage_phases: float = 1.0
    loss_p: float = 0.03
    jammers: int = 1
    jam_phases: float = 1.0
    mc_slack: float = 0.1
    control_success_max: float = 0.0
    jobs: int | None = None
    task_timeout: float | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ExperimentError("chaos campaigns need n >= 2")
        if self.reps < 1:
            raise ExperimentError("reps must be >= 1")
        if self.protocol not in PROTOCOLS:
            raise ExperimentError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {', '.join(sorted(PROTOCOLS))}"
            )


def _trial_graph(seed: int, n: int) -> Graph:
    """A connected G(n, p) topology derived from the trial seed."""
    for attempt in range(64):
        g = random_gnp(n, min(1.0, 12.0 / n), spawn(seed, "chaos-graph", attempt))
        if is_connected(g):
            return g
    raise SimulationError(  # pragma: no cover - p = 12/n is connected whp
        f"could not draw a connected G({n}, 12/n) graph for seed {seed}"
    )


def build_proviso_schedule(
    g: Graph,
    tree: Graph,
    seed: int,
    config: ChaosConfig,
    *,
    horizon: int,
    phase_length: int,
) -> FaultSchedule:
    """A randomized schedule that respects the connectivity proviso.

    Non-tree edges die at random slots; a random sample of non-source
    nodes suffers transient crash–recover outages (they come back, so
    the protocol's redundancy can still reach them); every link is
    lossy with a small probability; and jammer windows blanket a few
    neighbourhoods.  The protected spanning tree itself is never cut,
    realising "the network of unchanged edges remains connected".
    """
    rng = spawn(seed, "chaos-faults")
    schedule = random_edge_kill_schedule(
        g, tree, config.edge_kill_fraction, max(1, horizon), rng
    )
    candidates = sorted(node for node in g.nodes if node != _SOURCE)
    outage = max(1, round(config.crash_outage_phases * phase_length))
    crash_deadline = max(2, horizon // 2)
    for node in rng.sample(candidates, round(config.crash_fraction * len(candidates))):
        start = rng.randrange(1, crash_deadline)
        schedule.crash_faults.append(
            CrashFault(slot=start, node=node, until=start + outage)
        )
    if config.loss_p > 0:
        schedule.link_loss_faults.append(LinkLossFault(p=config.loss_p))
    jam_length = max(1, round(config.jam_phases * phase_length))
    for node in rng.sample(candidates, min(config.jammers, len(candidates))):
        start = rng.randrange(0, crash_deadline)
        schedule.jam_faults.append(JamFault(node=node, start=start, end=start + jam_length))
    return schedule


def build_control_schedule(g: Graph, tree: Graph, seed: int) -> FaultSchedule:
    """A *minimal* proviso violation: sever one spanning-tree cut.

    Removing a single tree edge splits the tree into two components;
    killing every graph edge that crosses that partition (at slot 0)
    disconnects the network before the first transmission, so the
    broadcast must fail — demonstrating that the proviso in property 3
    is load-bearing, not decorative.
    """
    rng = spawn(seed, "chaos-control")
    cut_u, cut_v = rng.choice(sorted(tree.edges))
    # Nodes on cut_u's side of the tree once (cut_u, cut_v) is removed.
    side = {cut_u}
    frontier = [cut_u]
    while frontier:
        node = frontier.pop()
        for neighbor in tree.neighbors(node):
            if neighbor not in side and frozenset((node, neighbor)) != frozenset(
                (cut_u, cut_v)
            ):
                side.add(neighbor)
                frontier.append(neighbor)
    cut_edges = [
        EdgeFault(slot=0, u=u, v=v) for u, v in g.edges if (u in side) != (v in side)
    ]
    return FaultSchedule(edge_faults=cut_edges)


def check_invariants(
    result: RunResult, *, source=_SOURCE, message: Any = MESSAGE
) -> list[str]:
    """Machine-checkable safety invariants; returns violation strings.

    These must hold in *every* run, proviso or not: adversity may delay
    or prevent the broadcast, but it must never corrupt it.
    """
    violations: list[str] = []
    outputs = result.node_results()
    informed: set[Any] = set()
    for node, output in outputs.items():
        if not isinstance(output, dict) or "informed" not in output:
            continue  # protocol without the broadcast result surface
        if output["informed"]:
            informed.add(node)
            if output["message"] != message:
                violations.append(
                    f"integrity: node {node!r} holds {output['message']!r} "
                    f"instead of {message!r}"
                )
        elif output.get("phases_executed", 0) > 0:
            violations.append(
                f"phantom-done: node {node!r} ran {output['phases_executed']} "
                "Decay phase(s) without ever holding the message"
            )
    if outputs and source not in informed:
        violations.append(f"source-lost: source {source!r} lost its own message")
    for node in result.metrics.first_reception:
        if node != source and informed and node not in informed:
            violations.append(
                f"accounting: node {node!r} has a recorded reception but no message"
            )
    return violations


def _run_chaos_trial(task: tuple[str, int, ChaosConfig]) -> dict[str, Any]:
    """One seeded trial (module-level so campaigns cross process pools)."""
    return _chaos_trial(task, "reference")


def _run_chaos_trials_numpy(
    tasks: list[tuple[str, int, ChaosConfig]],
) -> list[dict[str, Any]]:
    """Chunk runner for the numpy backend (resilient_map ``batch_fn``)."""
    return [_chaos_trial(task, "numpy") for task in tasks]


def _chaos_trial(task: tuple[str, int, ChaosConfig], backend: str) -> dict[str, Any]:
    arm, seed, config = task
    g = _trial_graph(seed, config.n)
    tree = spanning_tree(g, _SOURCE)
    delta = max(1, max_degree(g))
    phase_length = decay_phase_length(delta)
    horizon = theorem4_slot_bound(
        config.n, _tree_depth(tree, _SOURCE), delta, config.epsilon
    )
    if arm == "proviso":
        schedule = build_proviso_schedule(
            g, tree, seed, config, horizon=horizon, phase_length=phase_length
        )
    elif arm == "control":
        schedule = build_control_schedule(g, tree, seed)
    else:  # pragma: no cover - arms are fixed by run_chaos_campaign
        raise ExperimentError(f"unknown chaos arm {arm!r}")
    runner = PROTOCOLS[config.protocol]
    if backend == "numpy":
        runner = VECTOR_PROTOCOLS.get(config.protocol, runner)
    result = runner(g, seed, config.epsilon, schedule)
    success = result.broadcast_succeeded(source=_SOURCE)
    violations = check_invariants(result)
    # One structured record per trial, carrying the invariant thresholds
    # so the live conformance monitor (repro.monitor) can judge the
    # campaign as it streams — no-op without an ambient recorder, and
    # shipped back from pool workers like every other event.
    _telemetry_event(
        "chaos_trial",
        arm=arm,
        seed=seed,
        success=success,
        violations=len(violations),
        slots=result.slots,
        nodes=config.n,
        epsilon=config.epsilon,
        mc_slack=config.mc_slack,
        control_success_max=config.control_success_max,
        horizon=horizon,
    )
    return {
        "arm": arm,
        "seed": seed,
        "success": success,
        "slots": result.slots,
        "violations": violations,
        "faults": schedule.counts(),
    }


def _tree_depth(tree: Graph, root) -> int:
    from repro.graphs.properties import bfs_layers

    return max(1, len(bfs_layers(tree, root)) - 1)


@dataclass
class ChaosReport:
    """Aggregated campaign outcome, machine-readable and renderable."""

    config: ChaosConfig
    outcomes: list[dict[str, Any]]

    def arm(self, arm: str) -> list[dict[str, Any]]:
        return [outcome for outcome in self.outcomes if outcome["arm"] == arm]

    def success_rate(self, arm: str) -> float:
        trials = self.arm(arm)
        return sum(1 for t in trials if t["success"]) / len(trials) if trials else 0.0

    @property
    def safety_violations(self) -> list[str]:
        return [v for outcome in self.outcomes for v in outcome["violations"]]

    @property
    def liveness_threshold(self) -> float:
        return 1.0 - self.config.epsilon - self.config.mc_slack

    @property
    def liveness_ok(self) -> bool:
        return self.success_rate("proviso") >= self.liveness_threshold

    @property
    def control_broken(self) -> bool:
        return self.success_rate("control") <= self.config.control_success_max

    @property
    def passed(self) -> bool:
        return self.liveness_ok and self.control_broken and not self.safety_violations

    def table(self) -> Table:
        table = Table(
            f"Chaos campaign — {self.config.protocol} broadcast under adversarial "
            f"faults (n={self.config.n}, eps={self.config.epsilon}, "
            f"seed={self.config.master_seed})",
            ["arm", "runs", "success_rate", "threshold", "claim_holds", "safety_violations"],
        )
        proviso_rate = self.success_rate("proviso")
        control_rate = self.success_rate("control")
        table.add_row(
            "proviso (protected tree)",
            len(self.arm("proviso")),
            proviso_rate,
            f">= {self.liveness_threshold:.2f}",
            self.liveness_ok,
            sum(len(t["violations"]) for t in self.arm("proviso")),
        )
        table.add_row(
            "control (severed cut)",
            len(self.arm("control")),
            control_rate,
            f"<= {self.config.control_success_max:.2f}",
            self.control_broken,
            sum(len(t["violations"]) for t in self.arm("control")),
        )
        return table

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": asdict(self.config),
                "passed": self.passed,
                "liveness": {
                    "success_rate": self.success_rate("proviso"),
                    "threshold": self.liveness_threshold,
                    "ok": self.liveness_ok,
                },
                "control": {
                    "success_rate": self.success_rate("control"),
                    "max_allowed": self.config.control_success_max,
                    "broken_as_expected": self.control_broken,
                },
                "safety_violations": self.safety_violations,
                "trials": self.outcomes,
            },
            indent=2,
            sort_keys=True,
        )


def chaos_tasks(config: ChaosConfig) -> list[tuple[str, int, ChaosConfig]]:
    """The campaign's full, ordered task list (both arms, all seeds).

    Execution knobs (jobs, task_timeout, backend) do not define the
    campaign: they are stripped from the task payloads so the journal
    fingerprint — and thus ``--resume``, and the fabric's lease-store
    campaign identity — is stable across worker counts and engine
    backends.  Shared by :func:`run_chaos_campaign` and the distributed
    fabric's ``chaos`` spec (:mod:`repro.fabric.specs`).
    """
    trial_config = replace(config, jobs=None, task_timeout=None, backend=None)
    tasks: list[tuple[str, int, ChaosConfig]] = []
    for arm in ARMS:
        for seed in seed_sequence(config.master_seed, config.reps, "chaos", arm):
            tasks.append((arm, seed, trial_config))
    return tasks


def run_chaos_campaign(
    config: ChaosConfig | None = None,
    *,
    journal: str | None = None,
    resume: bool = False,
) -> ChaosReport:
    """Run the two-arm campaign and aggregate its invariant verdicts.

    Trials fan out through :func:`repro.parallel.resilient_map`
    (``config.jobs`` workers, ``config.task_timeout`` per-trial
    timeout, worker-death retry), and with ``journal`` every completed
    chunk is checkpointed so a killed campaign resumes byte-identically
    with ``resume=True``.
    """
    config = config or ChaosConfig()
    tasks = chaos_tasks(config)
    logger.info(
        "chaos campaign: protocol=%s n=%d reps=%d/arm (%d trials), seed=%d",
        config.protocol,
        config.n,
        config.reps,
        len(tasks),
        config.master_seed,
    )
    backend = resolve_backend(config.backend)
    outcomes = resilient_map(
        _run_chaos_trial,
        tasks,
        jobs=config.jobs,
        task_timeout=config.task_timeout,
        journal=journal,
        resume=resume,
        batch_fn=_run_chaos_trials_numpy if backend == "numpy" else None,
    )
    report = ChaosReport(config=config, outcomes=outcomes)
    logger.info(
        "chaos campaign %s: liveness=%s control_broken=%s safety_violations=%d",
        "passed" if report.passed else "FAILED",
        report.liveness_ok,
        report.control_broken,
        len(report.safety_violations),
    )
    return report
