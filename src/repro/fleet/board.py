"""The live fleet board: one view over every process in a fabric run.

A fabric campaign scatters its observable state across the lease
store's audit log (claims, takeovers, commits, fence rejections,
worker lifecycle) and N per-worker telemetry logs (runs, slots,
faults).  This module reunites them:

* :func:`store_event_record` — the one translation from a lease-store
  ``events`` row to a schema-valid telemetry record (``lease`` or
  ``worker`` kind, carrying the store's own timestamp).  The
  coordinator's event forwarding and the fleet board share it, so the
  two views can never drift apart.
* :class:`FleetBoard` — a :class:`~repro.monitor.board.StatusBoard`
  that additionally folds ``lease``/``worker`` records into per-worker
  **health lanes** (live/exited, claims, commits, takeovers, fence
  rejections, last fault), rendered under the usual campaign lines.
* :func:`follow_fleet` — a generator that tails the lease store *and*
  every worker telemetry log concurrently, yielding one merged,
  ts-ordered record stream — the input both the board and the
  existing conformance SLO gates judge.

``python -m repro fleet board`` is the front end.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.monitor.board import StatusBoard
from repro.monitor.tail import TailReader

__all__ = ["WorkerLane", "FleetBoard", "follow_fleet", "store_event_record"]

#: Store event kinds that describe a lease transition (vs worker life).
LEASE_EVENT_KINDS = frozenset({"claim", "takeover", "commit", "fence_reject"})


def store_event_record(event: Mapping[str, Any]) -> dict[str, Any]:
    """One lease-store ``events`` row as a schema-valid telemetry record.

    Lease transitions become ``lease`` records (``event`` + required
    ``index``); everything else (``worker_start`` / ``worker_exit`` /
    ``fault``) becomes a ``worker`` record.  The store's own timestamp
    and row id ride along (``ts``, ``store_id``) so merged streams sort
    and dedupe on the store's ordering, not the reader's.
    """
    kind = str(event.get("kind", ""))
    record: dict[str, Any] = {
        "ts": float(event.get("ts") or 0.0),
    }
    if event.get("id") is not None:
        record["store_id"] = int(event["id"])
    for key, source in (
        ("worker", "worker"),
        ("fence", "fence"),
        ("detail", "detail"),
    ):
        if event.get(source) is not None:
            record[key] = event[source]
    if kind in LEASE_EVENT_KINDS:
        record["kind"] = "lease"
        record["event"] = kind
        record["index"] = int(event["idx"]) if event.get("idx") is not None else -1
    else:
        record["kind"] = "worker"
        record["event"] = kind
        record.setdefault("worker", str(event.get("worker") or "?"))
        if event.get("idx") is not None:
            record["index"] = int(event["idx"])
    return record


@dataclass
class WorkerLane:
    """Rolling health of one fabric worker, fed from merged records."""

    worker: str
    state: str = "unknown"  # unknown -> live -> exited
    claims: int = 0
    commits: int = 0
    takeovers: int = 0
    fence_rejects: int = 0
    faults: int = 0
    holding: int | None = None  # chunk index currently leased
    last_fault: str | None = None
    last_ts: float | None = None
    exit_detail: str | None = None

    def snapshot(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "state": self.state,
            "claims": self.claims,
            "commits": self.commits,
            "takeovers": self.takeovers,
            "fence_rejects": self.fence_rejects,
            "faults": self.faults,
            "holding": self.holding,
            "last_fault": self.last_fault,
            "exit_detail": self.exit_detail,
        }

    def describe(self) -> str:
        parts = [
            f"{self.worker:<12.12}",
            f"{self.state:<7}",
            f"claims {self.claims}",
            f"commits {self.commits}",
        ]
        if self.takeovers:
            parts.append(f"takeovers {self.takeovers}")
        if self.fence_rejects:
            parts.append(f"REJECTS {self.fence_rejects}")
        if self.holding is not None:
            parts.append(f"chunk {self.holding}")
        if self.last_fault:
            parts.append(f"fault: {self.last_fault}")
        return "  ".join(parts)


class FleetBoard(StatusBoard):
    """A status board with per-worker health lanes.

    Everything :class:`StatusBoard` tracks still works (the merged
    stream contains the workers' run/slot records); on top of it,
    ``lease`` and ``worker`` records update one :class:`WorkerLane`
    per fabric worker, and ``fabric_begin``/``fabric_end`` pin the
    campaign geometry and outcome.
    """

    def __init__(self) -> None:
        super().__init__()
        self.lanes: dict[str, WorkerLane] = {}
        self.chunks_total: int | None = None
        self.chunks_committed: set[int] = set()
        self.fabric_done = False
        self.takeovers = 0
        self.fence_rejects = 0

    def _lane(self, worker: Any) -> WorkerLane | None:
        if not isinstance(worker, str) or not worker:
            return None
        lane = self.lanes.get(worker)
        if lane is None:
            lane = WorkerLane(worker)
            self.lanes[worker] = lane
        return lane

    def update(self, record: dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "lease":
            self._update_lease(record)
        elif kind == "worker":
            self._update_worker(record)
        elif kind == "fabric_begin":
            chunks = record.get("chunks")
            if isinstance(chunks, int) and not isinstance(chunks, bool):
                self.chunks_total = chunks
        elif kind == "fabric_end":
            self.fabric_done = True
        super().update(record)

    def _update_lease(self, record: dict[str, Any]) -> None:
        event = record.get("event")
        index = record.get("index")
        lane = self._lane(record.get("worker"))
        if lane is not None:
            lane.last_ts = record.get("ts")
            if lane.state == "unknown":
                lane.state = "live"
        if event == "claim":
            if lane is not None:
                lane.claims += 1
                lane.holding = index if isinstance(index, int) else None
        elif event == "takeover":
            self.takeovers += 1
            if lane is not None:
                lane.claims += 1
                lane.takeovers += 1
                lane.holding = index if isinstance(index, int) else None
        elif event == "commit":
            if isinstance(index, int) and not isinstance(index, bool):
                self.chunks_committed.add(index)
            if lane is not None:
                lane.commits += 1
                lane.holding = None
        elif event == "fence_reject":
            self.fence_rejects += 1
            if lane is not None:
                lane.fence_rejects += 1
                lane.holding = None

    def _update_worker(self, record: dict[str, Any]) -> None:
        lane = self._lane(record.get("worker"))
        if lane is None:
            return
        lane.last_ts = record.get("ts")
        event = record.get("event")
        if event == "worker_start":
            lane.state = "live"
        elif event == "worker_exit":
            lane.state = "exited"
            detail = record.get("detail")
            lane.exit_detail = detail if isinstance(detail, str) else None
            lane.holding = None
        elif event == "fault":
            lane.faults += 1
            detail = record.get("detail")
            lane.last_fault = detail if isinstance(detail, str) else str(event)
            if isinstance(detail, str) and detail.startswith("kill"):
                lane.state = "killed"

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        out = super().snapshot()
        out["fleet"] = {
            "workers": {
                worker: lane.snapshot()
                for worker, lane in sorted(self.lanes.items())
            },
            "chunks_total": self.chunks_total,
            "chunks_committed": len(self.chunks_committed),
            "takeovers": self.takeovers,
            "fence_rejects": self.fence_rejects,
            "fabric_done": self.fabric_done,
        }
        return out

    def lines(self) -> list[str]:
        lines = super().lines()
        if self.lanes or self.chunks_total is not None:
            committed = len(self.chunks_committed)
            total = self.chunks_total if self.chunks_total is not None else "?"
            lines.append(
                f"fleet: chunks {committed}/{total}  "
                f"takeovers {self.takeovers}  "
                f"fence rejects {self.fence_rejects}"
                + ("  [done]" if self.fabric_done else "")
            )
        for worker in sorted(self.lanes):
            lines.append("  " + self.lanes[worker].describe())
        return lines

    def status_line(self) -> str:
        line = super().status_line()
        if self.lanes:
            live = sum(
                1 for lane in self.lanes.values() if lane.state in ("live", "unknown")
            )
            line += (
                f"  workers {live}/{len(self.lanes)}"
                f"  chunks {len(self.chunks_committed)}"
                f"/{self.chunks_total if self.chunks_total is not None else '?'}"
            )
            if self.fence_rejects:
                line += f"  rejects {self.fence_rejects}"
        return line


def follow_fleet(
    store: str | os.PathLike[str],
    campaign: str,
    *,
    logs: Sequence[str | os.PathLike[str]] = (),
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
    until_done: bool = True,
) -> Iterator[dict[str, Any]]:
    """Yield one merged, ts-ordered record stream for a fabric campaign.

    Tails the lease store's audit log (translated through
    :func:`store_event_record`) and every telemetry log in ``logs``
    concurrently.  Each poll cycle's harvest is sorted by ``ts`` before
    yielding, so downstream consumers (board, conformance checkers) see
    per-cycle causal order without waiting for the campaign to end.

    Ends when ``stop()`` turns true; when ``until_done`` and the store
    reports every chunk committed (after one final drain); or when no
    process has produced anything for ``idle_timeout`` seconds.
    """
    from repro.fabric.store import LeaseStore

    store_path = Path(store)
    readers = [TailReader(path) for path in logs]
    lease_store: Any = None
    campaign_id: int | None = None
    after_id = 0
    last_data = time.monotonic()

    def harvest() -> list[dict[str, Any]]:
        nonlocal lease_store, campaign_id, after_id
        batch: list[dict[str, Any]] = []
        if lease_store is None and store_path.exists():
            lease_store = LeaseStore(store_path)
        if lease_store is not None and campaign_id is None:
            row = lease_store.campaign(campaign)
            campaign_id = int(row["id"]) if row is not None else None
        if campaign_id is not None:
            for event in lease_store.events(campaign_id, after_id=after_id):
                after_id = max(after_id, int(event["id"]))
                batch.append(store_event_record(event))
        for reader in readers:
            batch.extend(reader.poll())
        batch.sort(
            key=lambda r: (
                float(ts)
                if isinstance(ts := r.get("ts"), (int, float))
                and not isinstance(ts, bool)
                else 0.0
            )
        )
        return batch

    try:
        while True:
            batch = harvest()
            if batch:
                last_data = time.monotonic()
                yield from batch
            if stop is not None and stop():
                yield from harvest()  # drain what raced the stop signal
                return
            if (
                until_done
                and campaign_id is not None
                and lease_store.all_done(campaign_id)
            ):
                yield from harvest()
                return
            if not batch:
                if (
                    idle_timeout is not None
                    and time.monotonic() - last_data >= idle_timeout
                ):
                    return
                time.sleep(poll_interval)
    finally:
        if lease_store is not None:
            lease_store.close()
