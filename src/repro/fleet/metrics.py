"""A stdlib-only metrics registry with Prometheus-text exposition.

Counters, gauges, and histograms — optionally labelled — that the
fabric's coordinator and workers update while a campaign runs:
heartbeat lag (measured with ``time.monotonic()``), leases held and
lost, fence rejections, splice bytes, per-worker throughput, queue
depth.  Two export paths:

* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` plus samples), written to
  a ``.prom`` file after a campaign so CI can assert on counters;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.emit` — a
  JSON-able snapshot riding the telemetry stream as a ``metrics``
  record, so snapshots are tailable live and land in the obs store
  with everything else.

Both renderings are deterministically ordered (sorted by metric name,
then label set), so identical registries produce identical bytes.

Like the telemetry recorder, the *ambient* registry is strictly
zero-cost when disabled: :func:`get_registry` is one module-global
load plus a ``None`` check, and the fast helpers below no-op without
allocating.  Registries themselves are thread-safe (one lock per
registry) — heartbeat threads and the worker main loop share one.
"""

from __future__ import annotations

import contextlib
import re
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "sanitize_metric_name",
    "sanitize_label_name",
    "registry_from_snapshot",
    "snapshot_totals",
    "get_registry",
    "set_registry",
    "activate_metrics",
    "counter",
    "gauge",
    "observe",
]

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: The ambient registry; ``None`` means fleet metrics are disabled and
#: every fast helper below is a no-op.
_ACTIVE: "MetricsRegistry | None" = None


#: Prometheus metric names: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_METRIC_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Prometheus label names: ``[a-zA-Z_][a-zA-Z0-9_]*`` (no colons).
_LABEL_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_LABEL_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """``name`` made valid for the Prometheus exposition format.

    Characters outside ``[a-zA-Z0-9_:]`` become ``_`` and a leading
    digit gets a ``_`` prefix, so ``engine.slots/sec`` registers as
    ``engine_slots_sec`` instead of tearing the scrape.  Valid names
    (the common case) pass through untouched without allocating.
    """
    name = str(name)
    if _METRIC_NAME_OK.match(name):
        return name
    cleaned = _METRIC_NAME_BAD.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def sanitize_label_name(name: str) -> str:
    """``name`` made valid as a Prometheus label name (no colons)."""
    name = str(name)
    if _LABEL_NAME_OK.match(name):
        return name
    cleaned = _LABEL_NAME_BAD.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(
        sorted((sanitize_label_name(k), str(v)) for k, v in labels.items())
    )


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping: backslash, double
    quote, and newline must be escaped or the exposition line tears."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) refused")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def sample(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, +Inf last."""
        running = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Standard Prometheus-style estimation: find the first bucket
        whose cumulative count covers rank ``q * count`` and
        interpolate linearly inside it.  Returns ``None`` on an empty
        histogram; a single observation answers every quantile with
        (an estimate bounded by) its own bucket.  Observations landing
        in the +Inf bucket clamp to the highest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        previous_bound = 0.0
        previous_cum = 0
        for bound, cum in self.cumulative():
            if cum >= rank and cum > 0:
                if bound == float("inf"):
                    return self.bounds[-1] if self.bounds else self.total
                width = bound - previous_bound
                in_bucket = cum - previous_cum
                if in_bucket <= 0 or width <= 0:
                    return bound
                return previous_bound + width * (rank - previous_cum) / in_bucket
            previous_bound, previous_cum = bound, cum
        return self.bounds[-1] if self.bounds else None


class MetricsRegistry:
    """Get-or-create metric instruments, keyed ``(name, labels)``."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        # name -> (kind, help, {label_key -> instrument})
        self._metrics: dict[str, tuple[str, str, dict[tuple, Any]]] = {}

    def _instrument(
        self, name: str, kind: str, help_text: str, labels: dict[str, str], factory
    ) -> Any:
        name = sanitize_metric_name(name)
        key = _label_key(labels)
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                entry = (kind, help_text, {})
                self._metrics[name] = entry
            elif entry[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {entry[0]}, "
                    f"not a {kind}"
                )
            series = entry[2]
            instrument = series.get(key)
            if instrument is None:
                instrument = factory()
                series[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._instrument(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._instrument(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # -- export ---------------------------------------------------------

    def prometheus_text(self) -> str:
        """The Prometheus text exposition of every registered metric.

        Deterministic: metrics sort by name, series by label set, so
        the same registry state always renders identical bytes.
        """
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                kind, help_text, series = self._metrics[name]
                full = f"{self.namespace}_{name}" if self.namespace else name
                if help_text:
                    lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} {kind}")
                for key in sorted(series):
                    instrument = series[key]
                    if kind == "histogram":
                        for bound, cumulative in instrument.cumulative():
                            le = "+Inf" if bound == float("inf") else f"{bound:g}"
                            bucket_key = key + (("le", le),)
                            lines.append(
                                f"{full}_bucket{_label_text(bucket_key)} "
                                f"{cumulative}"
                            )
                        lines.append(
                            f"{full}_sum{_label_text(key)} {instrument.total:g}"
                        )
                        lines.append(
                            f"{full}_count{_label_text(key)} {instrument.count}"
                        )
                    else:
                        lines.append(
                            f"{full}{_label_text(key)} {instrument.sample():g}"
                        )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot of every series (telemetry payload)."""
        out: dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._metrics):
                kind, _help, series = self._metrics[name]
                rows = []
                for key in sorted(series):
                    instrument = series[key]
                    row: dict[str, Any] = {"labels": dict(key)}
                    if kind == "histogram":
                        row["count"] = instrument.count
                        row["sum"] = instrument.total
                        row["buckets"] = [
                            ["+Inf" if b == float("inf") else b, c]
                            for b, c in instrument.cumulative()
                        ]
                    else:
                        row["value"] = instrument.sample()
                    rows.append(row)
                out[name] = {"kind": kind, "series": rows}
        return out

    def totals(self) -> dict[str, float]:
        """Label-summed scalar per metric (histograms report counts) —
        the reconciliation view the autopsy and CI assertions use."""
        out: dict[str, float] = {}
        with self._lock:
            for name, (kind, _help, series) in self._metrics.items():
                if kind == "histogram":
                    out[name] = float(sum(i.count for i in series.values()))
                else:
                    out[name] = float(sum(i.sample() for i in series.values()))
        return out

    def emit(self, recorder: Any = None, **fields: Any) -> None:
        """Write one ``metrics`` snapshot record to a telemetry recorder
        (the ambient one when none is given); no-op when telemetry is
        off."""
        if recorder is None:
            from repro.telemetry import get_active

            recorder = get_active()
        if recorder is not None:
            recorder.emit("metrics", snapshot=self.snapshot(), **fields)

    def write_prometheus(self, path: Any) -> str:
        """Write the text exposition to ``path``; returns the text."""
        from pathlib import Path

        text = self.prometheus_text()
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
        return text


def registry_from_snapshot(
    snapshot: dict[str, Any],
    *,
    namespace: str = "repro",
    into: "MetricsRegistry | None" = None,
) -> "MetricsRegistry":
    """Rebuild a registry from a :meth:`MetricsRegistry.snapshot` payload.

    The inverse of :meth:`snapshot`, up to help text (not carried by
    snapshots): ``registry_from_snapshot(r.snapshot()).prometheus_text()``
    equals ``r.prometheus_text()`` for help-less registries.  With
    ``into=`` the series are folded into an existing registry (later
    snapshots overwrite same-name/same-label series), which is how
    ``fleet metrics`` merges per-process snapshot records.
    """
    registry = into if into is not None else MetricsRegistry(namespace)
    for name, entry in snapshot.items():
        if not isinstance(entry, dict):
            continue
        kind = entry.get("kind")
        for row in entry.get("series", []):
            if not isinstance(row, dict):
                continue
            labels = {
                str(k): str(v) for k, v in (row.get("labels") or {}).items()
            }
            if kind == "counter":
                registry.counter(name, **labels).value = float(
                    row.get("value", 0.0)
                )
            elif kind == "gauge":
                registry.gauge(name, **labels).set(float(row.get("value", 0.0)))
            elif kind == "histogram":
                pairs = row.get("buckets") or []
                bounds = tuple(
                    float(b) for b, _ in pairs if b != "+Inf"
                )
                # An explicit empty bucket list (just +Inf) must round-trip
                # as-is; only a snapshot with *no* bucket data at all falls
                # back to the defaults.
                hist = registry.histogram(
                    name, buckets=bounds if pairs else DEFAULT_BUCKETS, **labels
                )
                hist.total = float(row.get("sum", 0.0))
                hist.count = int(row.get("count", 0))
                previous = 0
                counts = []
                for _bound, cumulative in pairs:
                    counts.append(int(cumulative) - previous)
                    previous = int(cumulative)
                if len(counts) == len(hist.counts):
                    hist.counts = counts
    return registry


def snapshot_totals(snapshot: dict[str, Any]) -> dict[str, float]:
    """Label-summed scalars of a :meth:`MetricsRegistry.snapshot` payload
    (the inverse-direction helper for readers of ``metrics`` records)."""
    totals: dict[str, float] = {}
    for name, entry in snapshot.items():
        if not isinstance(entry, dict):
            continue
        total = 0.0
        for row in entry.get("series", []):
            if not isinstance(row, dict):
                continue
            value = row.get("value", row.get("count", 0))
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total += value
        totals[name] = total
    return totals


# -- ambient registry -----------------------------------------------------


def get_registry() -> MetricsRegistry | None:
    """The ambient registry, or ``None`` when fleet metrics are off."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or clear) the ambient registry; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextlib.contextmanager
def activate_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` ambient for the duration of the block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# -- fast helpers (one global load + None check when disabled) ------------


def counter(name: str, amount: float = 1.0, **labels: str) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: str) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name, **labels).observe(value)
