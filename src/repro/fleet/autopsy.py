"""Campaign autopsy: reconstruct what a fabric run actually did.

After (or mid-way through) a fabric campaign, the lease store's audit
log is the ground truth: every claim, takeover, fenced commit and
rejection is a row.  :func:`autopsy` replays that log into a
per-chunk, per-worker timeline and checks the fencing contract from
the *evidence* rather than trusting the implementation:

* every committed chunk is attributable to **exactly one** fenced
  holder — the worker whose grant held the current fencing token at
  commit time;
* fences are monotonic by exactly one per grant; nothing commits
  twice; nothing legitimate is rejected;
* optionally, the journal splice cross-checks byte-for-byte against
  the store's committed payloads (the journal is what downstream
  consumers resume from — it must not diverge from the audit trail);
* optionally, a merged telemetry log cross-checks event coverage and
  the final fleet-metrics snapshot against the store's counts.

The report renders as byte-stable text and JSON (timestamps are
relative to the campaign's first audit event, so two invocations over
the same store produce identical bytes), as an HTML timeline
dashboard (:func:`render_autopsy_html`), and as obs-store rows
(:func:`land_autopsy`) so ``obs trend`` sees fabric health across
campaigns.  ``python -m repro fabric autopsy`` is the front end.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError

__all__ = [
    "ChunkAutopsy",
    "AutopsyReport",
    "autopsy",
    "land_autopsy",
    "render_autopsy_html",
]

_LEASE_KINDS = frozenset({"claim", "takeover", "commit", "fence_reject"})


def _rel(ts: Any, base: float) -> float:
    if isinstance(ts, bool) or not isinstance(ts, (int, float)):
        return 0.0
    return round(float(ts) - base, 3)


@dataclass
class ChunkAutopsy:
    """Everything the audit log says happened to one chunk."""

    index: int
    grants: list[dict[str, Any]] = field(default_factory=list)
    commit: dict[str, Any] | None = None
    rejects: list[dict[str, Any]] = field(default_factory=list)
    #: What the chunks table itself records (cross-checked vs events).
    committed_by: str | None = None
    committed_fence: int | None = None
    attempts: int = 0

    @property
    def holder(self) -> str | None:
        """The one fenced holder this chunk's data is attributed to."""
        if self.commit is not None:
            return str(self.commit.get("worker"))
        return None

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "grants": self.grants,
            "commit": self.commit,
            "rejects": self.rejects,
            "committed_by": self.committed_by,
            "committed_fence": self.committed_fence,
            "attempts": self.attempts,
            "holder": self.holder,
        }


@dataclass
class AutopsyReport:
    """The reconstructed timeline and its contract verdicts."""

    store: str
    fingerprint: str
    spec: str | None
    items: int
    chunksize: int
    chunks: int
    base_ts: float  # first audit event (absolute); render uses deltas
    chunk_detail: list[ChunkAutopsy]
    workers: dict[str, dict[str, Any]]
    timeline: list[dict[str, Any]]  # all events, ts relative to base
    takeovers: int = 0
    fence_rejects: int = 0
    violations: list[str] = field(default_factory=list)
    journal_check: dict[str, Any] | None = None
    telemetry_check: dict[str, Any] | None = None

    @property
    def passed(self) -> bool:
        if self.violations:
            return False
        if self.journal_check is not None and not self.journal_check["matched"]:
            return False
        return True

    def attribution(self) -> dict[int, tuple[str, int]]:
        """``chunk index -> (worker, fence)`` for every committed chunk."""
        out: dict[int, tuple[str, int]] = {}
        for chunk in self.chunk_detail:
            if chunk.commit is not None:
                out[chunk.index] = (
                    str(chunk.commit.get("worker")),
                    int(chunk.commit.get("fence") or 0),
                )
        return out

    def obs_metrics(self) -> dict[str, float]:
        """Scalar rollup for the obs store (``fabric.*`` namespace)."""
        attempts = sum(c.attempts for c in self.chunk_detail)
        committed = sum(1 for c in self.chunk_detail if c.commit is not None)
        metrics = {
            "fabric.chunks": float(self.chunks),
            "fabric.chunks_committed": float(committed),
            "fabric.attempts": float(attempts),
            "fabric.takeovers": float(self.takeovers),
            "fabric.fence_rejects": float(self.fence_rejects),
            "fabric.workers": float(len(self.workers)),
            "fabric.violations": float(len(self.violations)),
        }
        if self.journal_check is not None:
            metrics["fabric.journal_matched"] = float(
                bool(self.journal_check["matched"])
            )
        return metrics

    def to_json(self) -> dict[str, Any]:
        return {
            "store": self.store,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "items": self.items,
            "chunksize": self.chunksize,
            "chunks": self.chunks,
            "takeovers": self.takeovers,
            "fence_rejects": self.fence_rejects,
            "workers": self.workers,
            "chunk_detail": [c.to_json() for c in self.chunk_detail],
            "timeline": self.timeline,
            "violations": self.violations,
            "journal_check": self.journal_check,
            "telemetry_check": self.telemetry_check,
            "attribution": {
                str(k): list(v) for k, v in sorted(self.attribution().items())
            },
            "passed": self.passed,
        }

    def render(self) -> str:
        """Byte-stable text rendering (same store ⇒ identical bytes)."""
        lines = [
            f"fabric autopsy — campaign {self.fingerprint[:12]}",
            f"store: {self.store}",
            f"geometry: {self.items} item(s) in {self.chunks} chunk(s) "
            f"of {self.chunksize} (spec: {self.spec or '<unknown>'})",
            f"events: {len(self.timeline)}  takeovers: {self.takeovers}  "
            f"fence rejects: {self.fence_rejects}",
            "",
            "workers:",
        ]
        for worker in sorted(self.workers):
            stats = self.workers[worker]
            line = (
                f"  {worker:<12} claims {stats['claims']}  "
                f"takeovers {stats['takeovers']}  commits {stats['commits']}  "
                f"rejects {stats['fence_rejects']}  faults {stats['faults']}"
            )
            if stats.get("exit_detail"):
                line += f"  exit: {stats['exit_detail']}"
            lines.append(line)
        lines.append("")
        lines.append("chunk attribution (index -> fenced holder):")
        for chunk in self.chunk_detail:
            if chunk.commit is not None:
                commit = chunk.commit
                lines.append(
                    f"  chunk {chunk.index}: committed by "
                    f"{commit.get('worker')} under fence {commit.get('fence')} "
                    f"at t+{commit.get('ts'):.3f}s "
                    f"({chunk.attempts} grant(s), {len(chunk.rejects)} reject(s))"
                )
            else:
                lines.append(
                    f"  chunk {chunk.index}: NEVER COMMITTED "
                    f"({chunk.attempts} grant(s))"
                )
        lines.append("")
        lines.append("timeline:")
        for event in self.timeline:
            where = f"chunk {event['index']}" if event.get("index") is not None else "-"
            detail = f"  ({event['detail']})" if event.get("detail") else ""
            fence = f" fence={event['fence']}" if event.get("fence") is not None else ""
            lines.append(
                f"  t+{event['ts']:8.3f}s  {event['kind']:<13} "
                f"{str(event.get('worker') or '-'):<12} {where}{fence}{detail}"
            )
        lines.append("")
        if self.journal_check is not None:
            check = self.journal_check
            verdict = "byte-identical" if check["matched"] else "MISMATCH"
            lines.append(
                f"journal splice vs store payloads: {verdict} "
                f"({check['path']}, {check['chunks']} chunk(s))"
            )
            for problem in check.get("problems", []):
                lines.append(f"  ! {problem}")
        if self.telemetry_check is not None:
            check = self.telemetry_check
            lines.append(
                f"telemetry coverage: {check['lease_records']} lease record(s) "
                f"in {check['log']} vs {check['store_events']} store event(s)"
            )
            for problem in check.get("problems", []):
                lines.append(f"  ! {problem}")
        for violation in self.violations:
            lines.append(f"FENCING VIOLATION: {violation}")
        lines.append("autopsy " + ("PASSED" if self.passed else "FAILED"))
        return "\n".join(lines)


def _replay(
    events: list[dict[str, Any]],
    chunk_detail: dict[int, ChunkAutopsy],
) -> list[str]:
    """The fencing-contract replay, from raw audit rows (cf.
    :func:`repro.fabric.verify._audit_fencing`, which replays the
    coordinator's in-memory copy — this one works from the store alone,
    so crashed coordinators can be audited too)."""
    errors: list[str] = []
    current_fence: dict[int, int] = {}
    committed: dict[int, int] = {}
    for event in events:
        kind = event["kind"]
        if kind not in _LEASE_KINDS:
            continue
        index = int(event["idx"])
        fence = int(event["fence"] or 0)
        if kind in ("claim", "takeover"):
            previous = current_fence.get(index, 0)
            if fence != previous + 1:
                errors.append(
                    f"chunk {index}: grant fence jumped {previous} -> {fence}"
                )
            current_fence[index] = fence
            if index in committed:
                errors.append(
                    f"chunk {index}: re-granted (fence {fence}) after commit "
                    f"at fence {committed[index]}"
                )
        elif kind == "commit":
            if fence != current_fence.get(index):
                errors.append(
                    f"chunk {index}: committed under fence {fence} but the "
                    f"current fence was {current_fence.get(index)}"
                )
            if index in committed:
                errors.append(f"chunk {index}: committed twice")
            committed[index] = fence
        elif kind == "fence_reject":
            if fence == current_fence.get(index) and index not in committed:
                errors.append(
                    f"chunk {index}: commit under the current fence {fence} "
                    "was rejected"
                )
    # Attribution: the chunks table must agree with the replayed events.
    for index, chunk in chunk_detail.items():
        if chunk.commit is None:
            continue
        worker = str(chunk.commit.get("worker"))
        fence = int(chunk.commit.get("fence") or 0)
        if chunk.committed_by is not None and chunk.committed_by != worker:
            errors.append(
                f"chunk {index}: events attribute the commit to {worker} but "
                f"the chunks table records {chunk.committed_by}"
            )
        if chunk.committed_fence is not None and chunk.committed_fence != fence:
            errors.append(
                f"chunk {index}: committed fence disagrees (events {fence}, "
                f"table {chunk.committed_fence})"
            )
    return errors


def _check_journal(
    journal_path: Path, fingerprint: str, payloads: dict[int, str]
) -> dict[str, Any]:
    """Byte-compare the journal's chunk payloads with the store's."""
    problems: list[str] = []
    journal_payloads: dict[int, str] = {}
    header: dict[str, Any] | None = None
    if not journal_path.exists():
        return {
            "path": str(journal_path),
            "matched": False,
            "chunks": 0,
            "problems": [f"no journal at {journal_path}"],
        }
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail: the journal loader tolerates it too
        if record.get("kind") == "header":
            header = record
        elif record.get("kind") == "chunk":
            journal_payloads[int(record["index"])] = str(record["payload"])
    if header is None:
        problems.append("journal has no header record")
    elif header.get("fingerprint") != fingerprint:
        problems.append(
            f"journal belongs to campaign "
            f"{str(header.get('fingerprint'))[:12]}, not {fingerprint[:12]}"
        )
    for index in sorted(set(payloads) | set(journal_payloads)):
        ours = payloads.get(index)
        theirs = journal_payloads.get(index)
        if ours is None:
            problems.append(f"journal chunk {index} is not committed in the store")
        elif theirs is None:
            problems.append(f"store chunk {index} is missing from the journal")
        elif ours != theirs:
            problems.append(f"chunk {index}: journal payload differs from store")
    return {
        "path": str(journal_path),
        "matched": not problems,
        "chunks": len(journal_payloads),
        "problems": problems,
    }


def _check_telemetry(
    log_path: Path, events: list[dict[str, Any]]
) -> dict[str, Any]:
    """How much of the store's audit trail the telemetry stream carries,
    and whether the final metrics snapshot agrees with the store."""
    from repro.fleet.metrics import snapshot_totals
    from repro.telemetry.summary import read_records

    problems: list[str] = []
    records = read_records(log_path)
    lease_records = [r for r in records if r.get("kind") == "lease"]
    store_lease_events = sum(1 for e in events if e["kind"] in _LEASE_KINDS)
    store_rejects = sum(1 for e in events if e["kind"] == "fence_reject")
    store_takeovers = sum(1 for e in events if e["kind"] == "takeover")

    snapshots = [r for r in records if r.get("kind") == "metrics"]
    totals: dict[str, float] = {}
    if snapshots:
        snapshot = snapshots[-1].get("snapshot")
        if isinstance(snapshot, dict):
            totals = snapshot_totals(snapshot)
        for name, expected in (
            ("fence_reject_total", store_rejects),
            ("takeover_total", store_takeovers),
        ):
            if name in totals and totals[name] != float(expected):
                problems.append(
                    f"metrics snapshot says {name}={totals[name]:g} but the "
                    f"store records {expected}"
                )
    return {
        "log": str(log_path),
        "lease_records": len(lease_records),
        "store_events": store_lease_events,
        "metric_totals": totals,
        "problems": problems,
    }


def autopsy(
    store: str | os.PathLike[str],
    campaign: str | None = None,
    *,
    journal: str | os.PathLike[str] | None = None,
    telemetry_log: str | os.PathLike[str] | None = None,
) -> AutopsyReport:
    """Reconstruct and audit one campaign from its lease store.

    ``campaign`` is a fingerprint (prefix); when omitted the store must
    hold exactly one campaign.  ``journal``/``telemetry_log`` add the
    splice and telemetry cross-checks.
    """
    from repro.fabric.store import LeaseStore

    store_path = Path(store)
    if not store_path.exists():
        raise ExperimentError(f"no lease store at {store_path}")
    lease_store = LeaseStore(store_path)
    try:
        rows = lease_store.conn.execute(
            "SELECT * FROM campaigns ORDER BY id"
        ).fetchall()
        if not rows:
            raise ExperimentError(f"{store_path}: the lease store is empty")
        if campaign is None:
            if len(rows) > 1:
                options = ", ".join(str(r["fingerprint"])[:12] for r in rows)
                raise ExperimentError(
                    f"{store_path} holds {len(rows)} campaigns ({options}); "
                    "pass --campaign to pick one"
                )
            row = rows[0]
        else:
            matches = [
                r for r in rows if str(r["fingerprint"]).startswith(campaign)
            ]
            if not matches:
                raise ExperimentError(
                    f"{store_path}: no campaign fingerprint starts "
                    f"with {campaign!r}"
                )
            if len(matches) > 1:
                raise ExperimentError(
                    f"{store_path}: campaign prefix {campaign!r} is ambiguous"
                )
            row = matches[0]
        campaign_id = int(row["id"])
        fingerprint = str(row["fingerprint"])

        events = lease_store.events(campaign_id)
        base_ts = min(
            (float(e["ts"]) for e in events if e.get("ts") is not None),
            default=float(row.get("created") or 0.0),
        )

        chunk_rows = lease_store.conn.execute(
            "SELECT * FROM chunks WHERE campaign_id = ? ORDER BY idx",
            (campaign_id,),
        ).fetchall()
        chunk_detail: dict[int, ChunkAutopsy] = {
            int(r["idx"]): ChunkAutopsy(
                index=int(r["idx"]),
                committed_by=r["committed_by"],
                committed_fence=(
                    int(r["committed_fence"])
                    if r["committed_fence"] is not None
                    else None
                ),
                attempts=int(r["attempts"] or 0),
            )
            for r in chunk_rows
        }

        workers: dict[str, dict[str, Any]] = {}
        timeline: list[dict[str, Any]] = []

        def lane(worker: Any) -> dict[str, Any] | None:
            if not isinstance(worker, str) or not worker:
                return None
            return workers.setdefault(
                worker,
                {
                    "claims": 0,
                    "takeovers": 0,
                    "commits": 0,
                    "fence_rejects": 0,
                    "faults": 0,
                    "exit_detail": None,
                },
            )

        takeovers = 0
        fence_rejects = 0
        for event in events:
            kind = str(event["kind"])
            index = int(event["idx"]) if event.get("idx") is not None else None
            entry = {
                "ts": _rel(event.get("ts"), base_ts),
                "kind": kind,
                "worker": event.get("worker"),
                "index": index,
                "fence": event.get("fence"),
                "detail": event.get("detail"),
            }
            timeline.append(entry)
            stats = lane(event.get("worker"))
            chunk = chunk_detail.get(index) if index is not None else None
            if kind in ("claim", "takeover"):
                if stats is not None:
                    stats["claims"] += 1
                if chunk is not None:
                    chunk.grants.append(entry)
                if kind == "takeover":
                    takeovers += 1
                    if stats is not None:
                        stats["takeovers"] += 1
            elif kind == "commit":
                if stats is not None:
                    stats["commits"] += 1
                if chunk is not None:
                    chunk.commit = entry
            elif kind == "fence_reject":
                fence_rejects += 1
                if stats is not None:
                    stats["fence_rejects"] += 1
                if chunk is not None:
                    chunk.rejects.append(entry)
            elif kind == "fault":
                if stats is not None:
                    stats["faults"] += 1
            elif kind == "worker_exit":
                if stats is not None:
                    stats["exit_detail"] = event.get("detail")

        num_chunks = int(row["chunks"])
        violations = _replay(events, chunk_detail)
        for index in range(num_chunks):
            chunk = chunk_detail.get(index)
            if chunk is None or chunk.commit is None:
                # Mid-campaign autopsies are legitimate; an uncommitted
                # chunk is reported in the rendering, not a violation,
                # unless the table claims it is done.
                if chunk is not None and chunk.committed_by is not None:
                    violations.append(
                        f"chunk {index}: table says committed by "
                        f"{chunk.committed_by} but no commit event exists"
                    )

        journal_check = None
        if journal is not None:
            payloads = lease_store.completed_payloads(campaign_id)
            journal_check = _check_journal(Path(journal), fingerprint, payloads)
        telemetry_check = None
        if telemetry_log is not None:
            telemetry_check = _check_telemetry(Path(telemetry_log), events)

        return AutopsyReport(
            store=str(store_path),
            fingerprint=fingerprint,
            spec=row.get("spec"),
            items=int(row["items"]),
            chunksize=int(row["chunksize"]),
            chunks=num_chunks,
            base_ts=base_ts,
            chunk_detail=[chunk_detail[i] for i in sorted(chunk_detail)],
            workers=workers,
            timeline=timeline,
            takeovers=takeovers,
            fence_rejects=fence_rejects,
            violations=violations,
            journal_check=journal_check,
            telemetry_check=telemetry_check,
        )
    finally:
        lease_store.close()


def land_autopsy(report: AutopsyReport, store: Any) -> int:
    """Land the autopsy as obs-store rows (idempotent per campaign).

    The run row is keyed on the campaign fingerprint, so re-running the
    autopsy refreshes the same row instead of duplicating it.  Returns
    the run id.
    """
    run_id, _replaced = store.upsert_run(
        report.fingerprint[:16],
        {
            "command": "fabric autopsy",
            "source_path": report.store,
            "records": len(report.timeline),
            "config_json": json.dumps(
                {
                    "spec": report.spec,
                    "items": report.items,
                    "chunksize": report.chunksize,
                },
                sort_keys=True,
            ),
        },
    )
    store.add_metrics(run_id, report.obs_metrics())
    return run_id


_HTML_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#9c755f",
)


def render_autopsy_html(report: AutopsyReport) -> str:
    """A self-contained HTML timeline dashboard of the autopsy.

    One horizontal lane per chunk; each grant renders as a bar from its
    grant time to the commit/rejection that resolved it, coloured by
    worker; fence rejections and takeovers are flagged markers.  Pure
    deterministic HTML+CSS — no scripts, no external assets — so the
    bytes are stable and the file archives well as a CI artifact.
    """
    span = max((e["ts"] for e in report.timeline), default=0.0) or 1.0
    colors = {
        worker: _HTML_PALETTE[i % len(_HTML_PALETTE)]
        for i, worker in enumerate(sorted(report.workers))
    }

    def pct(ts: float) -> float:
        return round(100.0 * ts / span, 2)

    rows: list[str] = []
    for chunk in report.chunk_detail:
        bars: list[str] = []
        resolved: list[dict[str, Any]] = []
        if chunk.commit is not None:
            resolved.append(chunk.commit)
        resolved.extend(chunk.rejects)
        for grant in chunk.grants:
            worker = str(grant.get("worker"))
            end = next(
                (
                    r["ts"]
                    for r in resolved
                    if r.get("worker") == grant.get("worker")
                    and r.get("fence") == grant.get("fence")
                ),
                span,
            )
            left = pct(grant["ts"])
            width = max(0.5, pct(end) - left)
            kind = "takeover" if grant["kind"] == "takeover" else "claim"
            bars.append(
                f'<div class="bar {kind}" style="left:{left}%;'
                f'width:{width}%;background:{colors.get(worker, "#888")}"'
                f' title="{html.escape(worker)} fence {grant.get("fence")}'
                f' ({kind})"></div>'
            )
        for reject in chunk.rejects:
            bars.append(
                f'<div class="mark reject" style="left:{pct(reject["ts"])}%"'
                f' title="fence_reject by {html.escape(str(reject.get("worker")))}'
                f' (fence {reject.get("fence")})">&#10007;</div>'
            )
        if chunk.commit is not None:
            bars.append(
                f'<div class="mark commit" style="left:{pct(chunk.commit["ts"])}%"'
                f' title="commit by {html.escape(str(chunk.commit.get("worker")))}'
                f' (fence {chunk.commit.get("fence")})">&#10003;</div>'
            )
        holder = html.escape(chunk.holder or "—")
        rows.append(
            f'<tr><th>chunk {chunk.index}</th>'
            f'<td class="lane">{"".join(bars)}</td>'
            f"<td>{holder}</td></tr>"
        )

    legend = " ".join(
        f'<span class="key"><i style="background:{colors[w]}"></i>'
        f"{html.escape(w)}</span>"
        for w in sorted(report.workers)
    )
    verdict = "PASSED" if report.passed else "FAILED"
    violations = "".join(
        f"<li>{html.escape(v)}</li>" for v in report.violations
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>fabric autopsy — {html.escape(report.fingerprint[:12])}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }}
table {{ border-collapse: collapse; width: 100%; }}
th {{ text-align: left; padding-right: 1em; white-space: nowrap; }}
td.lane {{ position: relative; height: 22px; background: #f4f4f4;
           border: 1px solid #ddd; min-width: 480px; }}
.bar {{ position: absolute; top: 3px; height: 14px; opacity: .85;
        border-radius: 2px; }}
.bar.takeover {{ outline: 2px dashed #e15759; }}
.mark {{ position: absolute; top: 0; font-weight: bold; }}
.mark.reject {{ color: #e15759; }}
.mark.commit {{ color: #2a7d2a; }}
.key i {{ display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; }}
.key {{ margin-right: 1em; }}
.verdict-PASSED {{ color: #2a7d2a; }} .verdict-FAILED {{ color: #e15759; }}
</style></head><body>
<h1>fabric autopsy — campaign {html.escape(report.fingerprint[:12])}</h1>
<p>{report.items} item(s) in {report.chunks} chunk(s) of
{report.chunksize}; {len(report.workers)} worker(s);
takeovers {report.takeovers}; fence rejects {report.fence_rejects}.
Verdict: <strong class="verdict-{verdict}">{verdict}</strong></p>
<p>{legend}</p>
<table><tbody>
{"".join(rows)}
</tbody></table>
<ul>{violations}</ul>
<p>Time axis spans t+0.000s to t+{span:.3f}s from the first audit
event. Dashed outline = takeover grant; &#10003; commit;
&#10007; fence rejection.</p>
</body></html>
"""
