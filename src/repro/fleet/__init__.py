"""Fleet-wide observability for the distributed campaign fabric.

PRs 3–5 built a single-process observability stack: a telemetry
recorder, theorem-bound SLO monitoring, and a cross-run store.  The
fabric (PR 7) runs campaigns across worker *subprocesses*, and this
package lifts the stack to that fleet:

* :mod:`~repro.fleet.tracectx` — **distributed trace context**: one
  campaign-level trace id with span parentage (coordinator → worker →
  chunk lease), propagated to worker processes through the environment
  and stamped on every telemetry record each process writes, so N
  per-worker logs merge into *one* causally-connected trace;
* :mod:`~repro.fleet.metrics` — a stdlib-only **metrics registry**
  (counters / gauges / histograms with labels) with Prometheus-text
  exposition and JSONL snapshots riding the telemetry stream.  Like
  the telemetry recorder it is strictly zero-cost when no registry is
  active — one module-global load plus a ``None`` check;
* :mod:`~repro.fleet.board` — the **live fleet board**: follow the
  lease store's audit log plus every worker's telemetry log
  concurrently, render per-worker health lanes, and feed the merged
  stream through the existing conformance SLO gates;
* :mod:`~repro.fleet.autopsy` — **campaign autopsy**: reconstruct the
  full lease/fence/takeover timeline of a finished (or crashed) fabric
  campaign from the store's audit events, cross-check it against the
  journal splice (every committed chunk attributable to exactly one
  fenced holder), and render it as text, JSON, obs-store rows, or an
  HTML timeline dashboard.

Front ends: ``python -m repro fleet board|trace|metrics`` and
``python -m repro fabric autopsy``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "TraceContext",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_snapshot",
    "snapshot_totals",
    "get_registry",
    "set_registry",
    "activate_metrics",
    "FleetBoard",
    "follow_fleet",
    "store_event_record",
    "AutopsyReport",
    "autopsy",
    "land_autopsy",
    "render_autopsy_html",
]

# Lazy exports (PEP 562), mirroring repro.fabric: board/autopsy import
# fabric modules which must stay import-light for worker subprocesses.
_EXPORTS = {
    "TraceContext": "repro.fleet.tracectx",
    "Counter": "repro.fleet.metrics",
    "Gauge": "repro.fleet.metrics",
    "Histogram": "repro.fleet.metrics",
    "MetricsRegistry": "repro.fleet.metrics",
    "registry_from_snapshot": "repro.fleet.metrics",
    "snapshot_totals": "repro.fleet.metrics",
    "get_registry": "repro.fleet.metrics",
    "set_registry": "repro.fleet.metrics",
    "activate_metrics": "repro.fleet.metrics",
    "FleetBoard": "repro.fleet.board",
    "follow_fleet": "repro.fleet.board",
    "store_event_record": "repro.fleet.board",
    "AutopsyReport": "repro.fleet.autopsy",
    "autopsy": "repro.fleet.autopsy",
    "land_autopsy": "repro.fleet.autopsy",
    "render_autopsy_html": "repro.fleet.autopsy",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
