"""Distributed trace context for fleet campaigns.

One fabric campaign is one **trace**; each participant (coordinator,
worker process, chunk lease) is one **span** inside it.  The context
crosses the coordinator → worker process boundary through two
environment variables, and every telemetry record written while a
context is installed on a recorder carries ``trace``/``span`` (and
``parent`` where applicable) fields — which is what lets the Chrome
trace exporter merge N per-worker logs into one causally-connected
trace, and the autopsy attribute any record to the process and lease
that produced it.

Ids are **derived, not drawn**: the trace id is a digest of the
campaign fingerprint, and span ids are digests of ``(trace id, span
name)``.  Determinism here is load-bearing — a resumed campaign lands
in the *same* trace as its first attempt, replayed drills produce
byte-stable autopsies, and no RNG stream is consumed (seed purity).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Mapping

__all__ = ["TraceContext", "ENV_TRACE_ID", "ENV_TRACE_PARENT"]

#: Environment variables carrying the context into worker subprocesses.
ENV_TRACE_ID = "REPRO_TRACE_ID"
ENV_TRACE_PARENT = "REPRO_TRACE_PARENT"


def _digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a campaign-level trace."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    #: Human-readable span name ("coordinator", "worker w0", ...).
    name: str = ""

    # -- construction ---------------------------------------------------

    @classmethod
    def root(cls, campaign: str, *, name: str = "coordinator") -> "TraceContext":
        """The campaign's root span, derived from its fingerprint."""
        trace_id = _digest("trace", campaign)
        return cls(trace_id, _digest(trace_id, name), None, name)

    def child(self, name: str) -> "TraceContext":
        """A child span of this one (worker under coordinator, chunk
        lease under worker)."""
        return TraceContext(
            self.trace_id, _digest(self.trace_id, name), self.span_id, name
        )

    # -- process-boundary propagation -----------------------------------

    def to_env(self, env: dict[str, str] | None = None) -> dict[str, str]:
        """Write the propagation variables into ``env`` (or a new dict)."""
        target = env if env is not None else {}
        target[ENV_TRACE_ID] = self.trace_id
        target[ENV_TRACE_PARENT] = self.span_id
        return target

    @classmethod
    def from_env(
        cls, name: str, env: Mapping[str, str] | None = None
    ) -> "TraceContext | None":
        """Rebuild the child context a worker process should run under.

        Returns ``None`` when no trace is being propagated (the worker
        was launched stand-alone) — trace stamping then stays off, the
        same strict no-op discipline the telemetry recorder follows.
        """
        source = env if env is not None else os.environ
        trace_id = source.get(ENV_TRACE_ID)
        if not trace_id:
            return None
        parent = source.get(ENV_TRACE_PARENT) or None
        return cls(trace_id, _digest(trace_id, name), parent, name)

    # -- record stamping -------------------------------------------------

    def stamp(self, record: dict) -> None:
        """Tag one telemetry record with this span's identity.

        Pre-stamped records (a worker's records shipped back to the
        coordinator) keep their own span fields — only ``trace`` is
        normalized, so a merged stream stays attributable per process.
        """
        record.setdefault("trace", self.trace_id)
        record.setdefault("span", self.span_id)
        if self.parent_id is not None:
            record.setdefault("parent", self.parent_id)
