"""The epoch-based emulation of a single-hop CD channel.

One emulated channel round = ``id_bits + 2`` *sub-epochs*, each hosting
one multi-initiator Broadcast_scheme over the (arbitrary, no-CD)
network:

1. **data** — the round's transmitters initiate broadcasts of their
   (station-tagged) messages; every node relays the first one it
   receives and ends the sub-epoch *holding* at most one message.
2. **arbitration** (× ``id_bits``) — the transmitting stations bit-probe
   their station IDs, most significant bit first, exactly as in
   Willard-style election: in the sub-epoch for bit ``b``, still-standing
   transmitters with bit ``b`` set initiate the identical token; every
   node relays; "heard the token" decodes bit 1.  After all bits,
   **every node** knows the maximum transmitter ID (or that there was
   none).
3. **conflict** — every transmitter whose ID lost the arbitration knows
   the round had ≥ 2 transmitters; the losers initiate the identical
   conflict token, which reaches everyone w.h.p.

Feedback assembly at each node: conflict token seen → **collision**;
else data held (and consistent with the arbitration winner) →
**message**; else nothing happened anywhere → **silence** (this case is
deterministic: zero transmitters means zero transmissions in every
sub-epoch).  Each sub-epoch succeeds with probability ≥ 1 − ε′ by
Theorem 4 (multi-initiator Remark), so a union bound over sub-epochs
gives the per-round guarantee; failures show up as wrong feedback with
probability ≤ ε per round, which is the [BGI89] contract.

Overhead per emulated round: ``(id_bits + 2) · O((D + log n/ε)·log Δ)``
slots — the polylogarithmic emulation factor.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.bounds import (
    decay_phase_length,
    log2_ceil,
    num_phases,
    theorem4_slot_bound,
)
from repro.core.decay import DecayProcess
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter as true_diameter
from repro.graphs.properties import max_degree as true_max_degree
from repro.sim.engine import Engine, RunResult
from repro.sim.medium import COLLISION, SILENCE
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit
from repro.emulation.singlehop import ChannelFeedback, SingleHopProtocol

__all__ = ["EmulatedChannelProgram", "run_emulated"]

Node = Hashable


class _EpochBroadcaster:
    """One sub-epoch's worth of Broadcast_scheme relaying for one node."""

    def __init__(self, k: int, phases: int, p_continue: float) -> None:
        self.k = k
        self.phases = phases
        self.p_continue = p_continue
        self.message: Any = None
        self._decay: DecayProcess | None = None
        self._phases_done = 0

    def begin(self, message: Any = None) -> None:
        """Start a sub-epoch; ``message`` non-None makes us an initiator."""
        self.message = message
        self._decay = None
        self._phases_done = 0

    def note_received(self, message: Any) -> None:
        """Join the relay once the sub-epoch's token arrives."""
        if self.message is None:
            self.message = message

    def intent(self, slot_in_subepoch: int, rng) -> Intent:
        if self.message is None or self._phases_done >= self.phases:
            return Receive()
        if self._decay is None:
            if slot_in_subepoch % self.k != 0:
                return Receive()
            self._decay = DecayProcess(
                self.k, self.message, rng, p_continue=self.p_continue
            )
        transmit = self._decay.wants_transmit()
        if slot_in_subepoch % self.k == self.k - 1:
            self._decay = None
            self._phases_done += 1
        return Transmit(self.message) if transmit else Receive()


class EmulatedChannelProgram(NodeProgram):
    """Runs one station's :class:`SingleHopProtocol` over the emulation."""

    def __init__(
        self,
        protocol: SingleHopProtocol,
        *,
        k: int,
        phases: int,
        subepoch_len: int,
        id_bits: int,
        max_rounds: int,
        p_continue: float = 0.5,
    ) -> None:
        if subepoch_len < k * phases:
            raise ProtocolError("subepoch_len must fit `phases` aligned Decays")
        self.protocol = protocol
        self.k = k
        self.phases = phases
        self.subepoch_len = subepoch_len
        self.id_bits = id_bits
        self.max_rounds = max_rounds
        self.subepochs_per_round = id_bits + 2  # data, arb x bits, conflict
        self.round_len = self.subepochs_per_round * subepoch_len
        self._caster = _EpochBroadcaster(k, phases, p_continue)
        self._round = 0
        self._done = False
        # Per-round state:
        self._held: tuple[int, Any] | None = None  # (station, payload)
        self._i_transmitted = False
        self._arb_prefix: list[int] = []
        self._arb_candidate = False
        self._conflict = False
        self._begin_round()

    # -- round / sub-epoch transitions ---------------------------------

    def _begin_round(self) -> None:
        if self._round >= self.max_rounds or self.protocol.is_done(self._round):
            self._done = True
            return
        payload = self.protocol.round_message(self._round)
        self._i_transmitted = payload is not None
        self._held = (
            (self._station_id(), payload) if self._i_transmitted else None
        )
        self._arb_prefix = []
        self._arb_candidate = self._i_transmitted
        self._conflict = False
        self._caster.begin(
            ("data", self._round, self._station_id(), payload)
            if self._i_transmitted
            else None
        )

    def _station_id(self) -> int:
        station = self.protocol.station
        if not isinstance(station, int) or station < 0:
            raise ProtocolError("emulation requires non-negative integer station IDs")
        return station

    def _begin_subepoch(self, index: int) -> None:
        if 1 <= index <= self.id_bits:
            bit = self.id_bits - index  # MSB first
            initiate = self._arb_candidate and bool(self._station_id() >> bit & 1)
            self._caster.begin(("arb", self._round, bit) if initiate else None)
        elif index == self.id_bits + 1:
            winner = self._arb_winner()
            lost = (
                self._i_transmitted
                and winner is not None
                and winner != self._station_id()
            )
            self._caster.begin(("conflict", self._round) if lost else None)

    def _end_subepoch(self, index: int) -> None:
        if 1 <= index <= self.id_bits:
            bit = self.id_bits - index
            token_present = self._caster.message is not None
            self._arb_prefix.append(1 if token_present else 0)
            if self._arb_candidate and token_present:
                if not (self._station_id() >> bit & 1):
                    self._arb_candidate = False
        elif index == self.id_bits + 1:
            if self._caster.message is not None:
                self._conflict = True
            self._finish_round()

    def _arb_winner(self) -> int | None:
        """The arbitration-decoded max transmitter ID (None if silence)."""
        if not any(self._arb_prefix) and self._held is None:
            return None
        value = 0
        for bit_value in self._arb_prefix:
            value = value << 1 | bit_value
        if not any(self._arb_prefix):
            # No arbitration token at all: at most one transmitter; its
            # identity is whatever data we hold.
            return self._held[0] if self._held else None
        return value

    def _finish_round(self) -> None:
        feedback = self._assemble_feedback()
        self.protocol.on_feedback(self._round, feedback)
        self._round += 1
        self._begin_round()

    def _assemble_feedback(self) -> ChannelFeedback:
        if self._conflict:
            return ChannelFeedback("collision")
        if self._held is not None:
            winner = self._arb_winner()
            if winner is not None and winner != self._held[0]:
                # Inconsistent evidence: a broadcast failed somewhere.
                return ChannelFeedback("collision")
            return ChannelFeedback("message", self._held[1])
        if any(self._arb_prefix):
            # Arbitration heard but no data: the data broadcast failed
            # to reach us; report collision (the conservative error).
            return ChannelFeedback("collision")
        return ChannelFeedback("silence")

    # -- NodeProgram interface -------------------------------------------

    def act(self, ctx: Context) -> Intent:
        if self._done:
            return Idle()
        slot_in_round = ctx.slot % self.round_len
        subepoch = slot_in_round // self.subepoch_len
        slot_in_subepoch = slot_in_round % self.subepoch_len
        if slot_in_subepoch == 0 and subepoch > 0:
            self._end_subepoch(subepoch - 1)
            if self._done:
                return Idle()
            self._begin_subepoch(subepoch)
        intent = self._caster.intent(slot_in_subepoch, ctx.rng)
        if slot_in_round == self.round_len - 1:
            self._end_subepoch(self.subepochs_per_round - 1)
        return intent

    def on_observe(self, ctx: Context, heard: Any) -> None:
        if heard is SILENCE or heard is COLLISION:
            return
        if not (isinstance(heard, tuple) and len(heard) >= 2):
            return
        tag, round_index = heard[0], heard[1]
        if round_index != self._round:
            return  # stale token from a concluded sub-epoch's stragglers
        if tag == "data":
            _tag, _round, station, payload = heard
            if self._held is None:
                self._held = (station, payload)
            self._caster.note_received(heard)
        elif tag in ("arb", "conflict"):
            self._caster.note_received(heard)

    def is_done(self, ctx: Context) -> bool:
        return self._done

    def result(self) -> Any:
        return self.protocol.result()


def run_emulated(
    graph: Graph,
    protocols: dict[Node, SingleHopProtocol],
    max_rounds: int,
    *,
    seed: int = 0,
    epsilon: float = 0.1,
    diameter_bound: int | None = None,
    max_degree_bound: int | None = None,
    id_bits: int | None = None,
) -> RunResult:
    """Run single-hop protocols over ``graph`` via the emulation.

    ``protocols`` must cover every node (every node is both a station
    and a relay).  Returns the engine result; per-station outputs are
    in ``result.node_results()``.
    """
    if set(protocols) != set(graph.nodes):
        raise ProtocolError("protocols must cover exactly the graph's nodes")
    nodes = graph.nodes
    if not all(isinstance(node, int) and node >= 0 for node in nodes):
        raise ProtocolError("emulation requires non-negative integer node IDs")
    n = graph.num_nodes()
    d = diameter_bound if diameter_bound is not None else true_diameter(graph)
    delta = (
        max_degree_bound
        if max_degree_bound is not None
        else max(1, true_max_degree(graph))
    )
    bits = id_bits if id_bits is not None else max(1, log2_ceil(max(nodes) + 1))
    # Budget each sub-epoch's failure at epsilon / (sub-epochs per round).
    per_sub_eps = epsilon / (bits + 2)
    k = decay_phase_length(delta)
    phases = num_phases(n, per_sub_eps)
    slot_bound = theorem4_slot_bound(n, d, delta, per_sub_eps)
    subepoch_len = -(-max(slot_bound, 2 * k * phases) // k) * k
    programs = {
        node: EmulatedChannelProgram(
            protocols[node],
            k=k,
            phases=phases,
            subepoch_len=subepoch_len,
            id_bits=bits,
            max_rounds=max_rounds,
        )
        for node in nodes
    }
    engine = Engine(
        graph,
        programs,
        seed=seed,
        initiators=frozenset(nodes),  # single-hop stations act spontaneously
        enforce_no_spontaneous=False,
    )
    round_len = (bits + 2) * subepoch_len
    return engine.run(max_rounds * round_len)
