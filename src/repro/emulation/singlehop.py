"""The single-hop channel abstraction and its reference executor.

A *single-hop radio network with collision detection* ([A70]-style, the
model of Willard [W86]) is one shared channel: in each round every
station either transmits or listens, and every station observes the
same three-way feedback:

* ``("silence", None)`` — nobody transmitted;
* ``("message", m)`` — exactly one station transmitted ``m``;
* ``("collision", None)`` — two or more transmitted.

(In the classical model transmitters also learn the outcome — e.g. via
an acknowledging base station or full-duplex hardware; we adopt that
convention, which is what Willard's protocol needs.)

:class:`SingleHopProtocol` is the per-station state machine;
:func:`run_single_hop` executes it directly on the abstract channel.
The multi-hop emulator (:mod:`repro.emulation.emulator`) runs the very
same protocol objects on an arbitrary no-CD network — the tests assert
both substrates produce identical outputs (up to the emulator's ε).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Literal

from repro.errors import ProtocolError

__all__ = ["ChannelFeedback", "SingleHopProtocol", "run_single_hop"]

Node = Hashable


@dataclass(frozen=True)
class ChannelFeedback:
    """What every station observes at the end of a single-hop round."""

    kind: Literal["silence", "message", "collision"]
    message: Any = None

    def __post_init__(self) -> None:
        if self.kind == "message" and self.message is None:
            raise ProtocolError("message feedback must carry the message")
        if self.kind != "message" and self.message is not None:
            raise ProtocolError(f"{self.kind} feedback carries no message")


SILENCE_FEEDBACK = ChannelFeedback("silence")
COLLISION_FEEDBACK = ChannelFeedback("collision")


class SingleHopProtocol:
    """Per-station logic for a single-hop CD channel.

    Subclasses override :meth:`round_message` (return the message to
    transmit this round, or ``None`` to listen) and
    :meth:`on_feedback` (digest the common channel feedback).  The
    driver — direct or emulated — calls them alternately until
    :meth:`is_done`.
    """

    def __init__(self, station: Node) -> None:
        self.station = station

    def round_message(self, round_index: int) -> Any | None:
        """The message to transmit in this round (None = listen)."""
        raise NotImplementedError

    def on_feedback(self, round_index: int, feedback: ChannelFeedback) -> None:
        """Observe the round's common feedback."""

    def is_done(self, round_index: int) -> bool:
        return False

    def result(self) -> Any:
        return None


def run_single_hop(
    protocols: dict[Node, SingleHopProtocol],
    max_rounds: int,
) -> dict[Node, Any]:
    """Execute the protocols directly on an ideal single-hop CD channel.

    This is the reference semantics the emulator is validated against.
    Returns each station's ``result()``.
    """
    if not protocols:
        raise ProtocolError("need at least one station")
    for round_index in range(max_rounds):
        if all(p.is_done(round_index) for p in protocols.values()):
            break
        transmissions = {
            node: message
            for node, p in protocols.items()
            if not p.is_done(round_index)
            and (message := p.round_message(round_index)) is not None
        }
        if len(transmissions) == 0:
            feedback = SILENCE_FEEDBACK
        elif len(transmissions) == 1:
            feedback = ChannelFeedback("message", next(iter(transmissions.values())))
        else:
            feedback = COLLISION_FEEDBACK
        for p in protocols.values():
            if not p.is_done(round_index):
                p.on_feedback(round_index, feedback)
    return {node: p.result() for node, p in protocols.items()}
