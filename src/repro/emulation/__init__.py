"""Single-hop-with-CD on multi-hop-without-CD: the [BGI89] emulation.

The paper's Concluding Remarks: "*This point is further pursued in our
emulation of single-hop radio network with collision detection on
multi-hop radio networks without collision detection [BGI89].*"  The
idea: one slot of a single-hop channel with collision detection has a
three-way outcome (SILENCE / a message / COLLISION); an *epoch* of
multi-initiator Broadcast_scheme can reproduce that outcome at every
node of an arbitrary multi-hop network, with high probability.

* :mod:`repro.emulation.singlehop` — the single-hop protocol
  abstraction plus a reference executor (a clique with the CD medium).
* :mod:`repro.emulation.emulator` — the epoch-based emulation that
  runs the same protocols on any connected no-CD network.
* :mod:`repro.emulation.protocols` — single-hop protocols to run on
  either substrate: Willard-style maximum finding and binary-search
  presence counting.
"""

from repro.emulation.emulator import EmulatedChannelProgram, run_emulated
from repro.emulation.protocols import (
    ActiveCountProtocol,
    MaxFindingProtocol,
)
from repro.emulation.singlehop import (
    ChannelFeedback,
    SingleHopProtocol,
    run_single_hop,
)

__all__ = [
    "SingleHopProtocol",
    "ChannelFeedback",
    "run_single_hop",
    "EmulatedChannelProgram",
    "run_emulated",
    "MaxFindingProtocol",
    "ActiveCountProtocol",
]
