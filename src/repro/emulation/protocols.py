"""Single-hop CD protocols to run directly or under the emulation.

Both protocols drive their control flow entirely off the *common*
channel feedback, so every station's termination decision is common
knowledge — the property the emulator needs (all relays stay active
until the computation ends everywhere).

* :class:`MaxFindingProtocol` — Willard-style bit probing: the active
  stations binary-search the ID space, MSB first; "someone transmitted"
  (message or collision — CD's presence bit) decodes a 1.  After
  ``id_bits`` rounds **every** station knows the maximum active ID.
  This is exactly the primitive [BGI89] emulates to get multi-hop
  leader election.
* :class:`ActiveCountProtocol` — Capetanakis-style tree splitting used
  as a *counter*: walk the ID-interval stack; SUCCESS pops and
  increments, SILENCE pops, COLLISION splits.  Every station ends up
  knowing the exact number of active stations (and the full roster).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import ProtocolError
from repro.emulation.singlehop import ChannelFeedback, SingleHopProtocol

__all__ = ["MaxFindingProtocol", "ActiveCountProtocol"]

Node = Hashable


class MaxFindingProtocol(SingleHopProtocol):
    """Find the maximum ID among the *active* stations (see module docs).

    Round 0 is a *presence* round (all active stations transmit): it
    disambiguates "only station 0 is active" from "nobody is active",
    which pure bit probing cannot tell apart.  Rounds ``1..id_bits``
    probe the ID bits, MSB first.  Total: ``id_bits + 1`` rounds.
    """

    def __init__(self, station: int, id_bits: int, *, active: bool = True) -> None:
        super().__init__(station)
        if station < 0 or station >= (1 << id_bits):
            raise ProtocolError(f"station {station} does not fit in {id_bits} bits")
        self.id_bits = id_bits
        self.active = active
        self.candidate = active
        self.anyone_active: bool | None = None
        self.prefix_bits: list[int] = []

    def _bit(self, round_index: int) -> int:
        return self.id_bits - round_index  # round 1 probes the MSB

    def round_message(self, round_index: int) -> Any | None:
        if round_index == 0:
            return ("here", self.station) if self.active else None
        bit = self._bit(round_index)
        if self.candidate and self.station >> bit & 1:
            return ("probe", bit, self.station)
        return None

    def on_feedback(self, round_index: int, feedback: ChannelFeedback) -> None:
        present = feedback.kind in ("message", "collision")
        if round_index == 0:
            self.anyone_active = present
            return
        bit = self._bit(round_index)
        self.prefix_bits.append(1 if present else 0)
        if self.candidate and present != bool(self.station >> bit & 1):
            self.candidate = False

    def is_done(self, round_index: int) -> bool:
        if self.anyone_active is False:
            return True
        return len(self.prefix_bits) >= self.id_bits

    def result(self) -> dict[str, Any]:
        if self.anyone_active is False:
            return {"winner": None, "is_winner": False}
        if self.anyone_active is None or len(self.prefix_bits) < self.id_bits:
            return {"winner": None, "is_winner": False}
        value = 0
        for bit_value in self.prefix_bits:
            value = value << 1 | bit_value
        return {
            "winner": value,
            "is_winner": self.active and value == self.station,
        }


class ActiveCountProtocol(SingleHopProtocol):
    """Count (and enumerate) the active stations by tree splitting."""

    def __init__(
        self,
        station: int,
        id_space: tuple[int, int],
        *,
        active: bool = True,
    ) -> None:
        super().__init__(station)
        lo, hi = id_space
        if lo >= hi:
            raise ProtocolError("id_space must be a non-empty interval [lo, hi)")
        if not lo <= station < hi:
            raise ProtocolError(f"station {station} outside id_space {id_space}")
        self.active = active
        self._stack: list[tuple[int, int]] = [(lo, hi)]
        self._resolved = False
        self._i_transmitted = False
        self.roster: list[int] = []

    def round_message(self, round_index: int) -> Any | None:
        if not self._stack:
            return None
        lo, hi = self._stack[-1]
        mine = self.active and not self._resolved and lo <= self.station < hi
        self._i_transmitted = mine
        if mine:
            return ("count", self.station)
        return None

    def on_feedback(self, round_index: int, feedback: ChannelFeedback) -> None:
        if not self._stack:
            return
        lo, hi = self._stack.pop()
        if feedback.kind == "message":
            _tag, who = feedback.message
            self.roster.append(who)
            if self._i_transmitted:
                self._resolved = True
        elif feedback.kind == "collision":
            mid = (lo + hi) // 2
            self._stack.append((mid, hi))
            self._stack.append((lo, mid))
        # silence: plain pop

    def is_done(self, round_index: int) -> bool:
        return not self._stack

    def result(self) -> dict[str, Any]:
        return {"count": len(self.roster), "roster": sorted(self.roster)}
