"""Deterministic randomness plumbing.

Every stochastic component in this library draws from a
:class:`random.Random` instance that is derived — reproducibly — from a
single master seed.  Two disciplines are enforced:

* **Seed splitting.**  A run's master seed is split into independent
  per-purpose streams with :func:`spawn`, so adding a new consumer of
  randomness never perturbs the draws seen by existing consumers.  This
  matters for honest Monte-Carlo comparisons: the same master seed must
  produce the same network topology regardless of which protocol runs
  on it.

* **Per-node streams.**  The radio model requires each processor's coin
  flips to be independent.  :func:`spawn_for_node` derives one stream
  per node from the run stream.

The splitting function is a stable hash (SHA-256 over a tagged byte
string), not Python's salted ``hash()``, so derived seeds are identical
across processes and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["derive_seed", "spawn", "spawn_for_node", "seed_sequence"]

_SEED_BYTES = 8


def derive_seed(master_seed: int, *tags: object) -> int:
    """Derive a child seed from ``master_seed`` and a tag path.

    The same ``(master_seed, *tags)`` always yields the same child seed;
    distinct tag paths yield (with overwhelming probability) distinct,
    statistically independent seeds.

    Parameters
    ----------
    master_seed:
        Any Python int (negative values are allowed).
    tags:
        Hashable-as-text labels identifying the consumer, e.g.
        ``("run", 3, "node", 17)``.
    """
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode("utf-8"))
    for tag in tags:
        hasher.update(b"\x1f")  # unit separator: ("a", "b") != ("ab",)
        hasher.update(repr(tag).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")


def spawn(master_seed: int, *tags: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded from a tag path."""
    return random.Random(derive_seed(master_seed, *tags))


def spawn_for_node(run_seed: int, node: object) -> random.Random:
    """Return the coin-flip stream for one node within one run."""
    return spawn(run_seed, "node", node)


def seed_sequence(master_seed: int, count: int, *tags: object) -> Iterator[int]:
    """Yield ``count`` independent child seeds (one per repetition)."""
    for index in range(count):
        yield derive_seed(master_seed, *tags, "rep", index)
