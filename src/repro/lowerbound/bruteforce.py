"""Exhaustive engine-level verification of Theorem 12 at small ``n``.

The reduction chain (Lemmas 5–7) and the ``find_set`` adversary prove
the Ω(n) bound for *abstract* protocols.  This module closes the loop
at the concrete level: for a deterministic :class:`NodeProgram`-based
protocol, it enumerates **every** non-empty hidden set
``S ⊆ {1, .., n}`` (all ``2^n − 1`` of them — hence small ``n``), runs
the protocol on each ``G_S`` on the real engine, and reports the
worst-case completion slot.

Theorem 12 says this worst case is ≥ n/8 for every deterministic
protocol; the tests check it for each deterministic protocol in the
library, and also that the randomized protocol's *typical* time beats
the deterministic *worst* case even at these tiny sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.errors import ExperimentError
from repro.graphs.generators import c_n
from repro.graphs.graph import Graph
from repro.protocols.base import run_broadcast
from repro.sim.node import NodeProgram

__all__ = ["WorstCase", "exhaustive_cn_worst_case", "all_hidden_sets"]

Node = Hashable
ProgramFactory = Callable[[Graph], Mapping[Node, NodeProgram]]


def all_hidden_sets(n: int):
    """Every non-empty subset of {1..n}, smallest first."""
    universe = range(1, n + 1)
    for size in range(1, n + 1):
        yield from (frozenset(c) for c in itertools.combinations(universe, size))


@dataclass(frozen=True)
class WorstCase:
    """The exhaustive worst case of a protocol over ``C_n``."""

    n: int
    worst_slots: int
    worst_set: frozenset[int]
    mean_slots: float
    instances: int
    all_completed: bool

    def satisfies_theorem12(self) -> bool:
        """Theorem 12: worst case ≥ n/8 slots (completion is counted as
        the first slot index by which all nodes have received, so the
        slot *count* is ``worst_slots + 1``)."""
        return (self.worst_slots + 1) >= self.n / 8


def exhaustive_cn_worst_case(
    make_programs: ProgramFactory,
    n: int,
    *,
    max_slots: int | None = None,
    limit_sets: int | None = None,
) -> WorstCase:
    """Run ``make_programs`` on every ``G_S`` and take the worst case.

    ``limit_sets`` truncates the enumeration (for sweeps at larger n
    where exhaustiveness is impossible); ``None`` means all ``2^n − 1``
    subsets — keep ``n ≤ 14`` or so.
    """
    if n < 1:
        raise ExperimentError("n must be >= 1")
    if limit_sets is None and n > 16:
        raise ExperimentError(
            f"2^{n} instances is too many; pass limit_sets for n > 16"
        )
    cap = max_slots if max_slots is not None else 4 * (n + 2)
    worst = -1
    worst_set: frozenset[int] = frozenset()
    total = 0
    count = 0
    all_completed = True
    for s in itertools.islice(all_hidden_sets(n), limit_sets):
        g = c_n(n, s)
        result = run_broadcast(
            g, make_programs(g), initiators={0}, max_slots=cap, stop="informed"
        )
        slot = result.broadcast_completion_slot(source=0)
        if slot is None:
            slot = cap
            all_completed = False
        if slot > worst:
            worst = slot
            worst_set = s
        total += slot
        count += 1
    return WorstCase(
        n=n,
        worst_slots=worst,
        worst_set=worst_set,
        mean_slots=total / count,
        instances=count,
        all_completed=all_completed,
    )
