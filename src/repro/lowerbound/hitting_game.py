"""The n-th hitting game (paper Definition 5).

Two parties: an **explorer** and a **referee**.  The referee privately
holds a non-empty set ``S ⊆ {1, .., n}``.  In each move the explorer
names a set ``M ⊆ {1, .., n}``:

* if ``|M ∩ S| = 1`` the referee reveals that element and the game
  ends — the explorer has *hit*;
* else if ``|M ∩ S̄| = 1`` the referee reveals that element (a *miss*)
  and the game continues;
* otherwise the referee says nothing.

The referee's behaviour is fully determined by ``S`` and the moves, so
:class:`Referee` is a pure function plus an "ended" flag.  An explorer
strategy (see :mod:`repro.lowerbound.strategies`) maps game history to
the next move; :func:`play_game` runs the interaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Protocol

from repro.errors import GameError

__all__ = ["Answer", "Referee", "HittingGame", "play_game", "GameOutcome"]


@dataclass(frozen=True)
class Answer:
    """The referee's reply to one move.

    ``kind`` is ``"hit"`` (revealed an element of S — game over),
    ``"miss"`` (revealed an element of S̄ — game continues) or
    ``"nothing"``.
    """

    kind: Literal["hit", "miss", "nothing"]
    element: int | None = None

    def __post_init__(self) -> None:
        if self.kind in ("hit", "miss") and self.element is None:
            raise GameError(f"{self.kind} answers must carry an element")
        if self.kind == "nothing" and self.element is not None:
            raise GameError("'nothing' answers carry no element")


NOTHING = Answer("nothing")


class Referee:
    """Answers explorer moves for a fixed hidden set ``S``."""

    def __init__(self, n: int, hidden_set: Iterable[int]) -> None:
        if n < 1:
            raise GameError("the game needs n >= 1")
        s = frozenset(hidden_set)
        if not s:
            raise GameError("the hidden set S must be non-empty")
        if not s <= frozenset(range(1, n + 1)):
            raise GameError(f"S must be a subset of 1..{n}")
        self.n = n
        self.hidden_set = s
        self.complement = frozenset(range(1, n + 1)) - s
        self.ended = False

    def answer(self, move: Iterable[int]) -> Answer:
        """Apply Definition 5's rules to one move."""
        if self.ended:
            raise GameError("the game has already ended")
        m = frozenset(move)
        if not m <= frozenset(range(1, self.n + 1)):
            raise GameError(f"moves must be subsets of 1..{self.n}")
        inter_s = m & self.hidden_set
        if len(inter_s) == 1:
            self.ended = True
            return Answer("hit", next(iter(inter_s)))
        inter_comp = m & self.complement
        if len(inter_comp) == 1:
            return Answer("miss", next(iter(inter_comp)))
        return NOTHING


class ExplorerStrategyProtocol(Protocol):
    """Structural interface for explorer strategies."""

    def reset(self, n: int) -> None: ...

    def next_move(self, history: list[tuple[frozenset[int], Answer]]) -> frozenset[int]: ...


@dataclass
class GameOutcome:
    """Result of one played game."""

    won: bool
    moves_used: int
    history: list[tuple[frozenset[int], Answer]]
    hit_element: int | None


class HittingGame:
    """A playable n-th hitting game against a fixed hidden set."""

    def __init__(self, n: int, hidden_set: Iterable[int]) -> None:
        self.n = n
        self.referee = Referee(n, hidden_set)
        self.history: list[tuple[frozenset[int], Answer]] = []

    def move(self, move: Iterable[int]) -> Answer:
        answer = self.referee.answer(move)
        self.history.append((frozenset(move), answer))
        return answer

    @property
    def moves_used(self) -> int:
        return len(self.history)

    @property
    def won(self) -> bool:
        return self.referee.ended


def play_game(
    strategy: ExplorerStrategyProtocol,
    n: int,
    hidden_set: Iterable[int],
    max_moves: int,
) -> GameOutcome:
    """Run ``strategy`` against the referee for ``hidden_set``.

    The game is cut off after ``max_moves`` moves (counting as a loss),
    which is how the experiments measure "needs more than t moves".
    """
    game = HittingGame(n, hidden_set)
    strategy.reset(n)
    hit: int | None = None
    while game.moves_used < max_moves and not game.won:
        move = strategy.next_move(game.history)
        answer = game.move(move)
        if answer.kind == "hit":
            hit = answer.element
    return GameOutcome(
        won=game.won,
        moves_used=game.moves_used,
        history=game.history,
        hit_element=hit,
    )
