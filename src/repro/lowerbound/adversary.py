"""The adversary of Section 3.3: ``find_set`` and strategy foiling.

``find_set`` (the paper's ``procedure find_set``) takes a sequence of
explorer moves and constructs a non-empty hidden set ``S`` on which
*none* of those moves elicits a useful answer: every non-singleton move
``M_i`` has both ``|M_i ∩ S| ≠ 1`` and ``|M_i ∩ S̄| ≠ 1``, and every
singleton move lies outside ``S`` (Lemma 9).  The charging argument of
Lemma 10 shows at most ``2(t-1)+1`` elements are ever removed from
``S``, so for ``t ≤ n/2`` moves the output is non-empty.

:func:`foil_strategy` lifts this to *adaptive* strategies via the
paper's observation: feed the strategy the canonical answers it would
receive on such an ``S`` — each singleton move ``{x}`` is answered
"miss x", every other move "nothing" — which makes its move sequence
oblivious, then run ``find_set`` on that induced sequence.  Replaying
the real game against the constructed ``S`` confirms the strategy
makes no progress (the E4 experiment does exactly this check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import GameError
from repro.lowerbound.hitting_game import Answer, ExplorerStrategyProtocol, Referee

__all__ = ["find_set", "foil_strategy", "FoilResult", "audit_charges"]


def find_set(moves: Sequence[Iterable[int]], n: int) -> frozenset[int]:
    """The paper's ``find_set``: a hidden set foiling ``moves``.

    Returns the constructed ``S`` (possibly empty when ``t > n/2`` —
    Lemma 10 only guarantees non-emptiness for ``t ≤ n/2``).

    Implementation note: the paper removes, for each move whose
    residual first shrinks, one *arbitrary* element of ``M_j ∩ S``; we
    remove the smallest for determinism.
    """
    universe = frozenset(range(1, n + 1))
    move_sets = [frozenset(m) for m in moves]
    for i, m in enumerate(move_sets):
        if not m <= universe:
            raise GameError(f"move {i} is not a subset of 1..{n}")
    s = set(universe)
    # shrunk[j] marks that non-singleton move j already lost an element
    # (its residual was "updated for the first time"), so its
    # complement-intersection has been padded to size >= 2.
    shrunk = [False] * len(move_sets)

    def singleton_index() -> int | None:
        for j, m in enumerate(move_sets):
            inter = m & s
            if len(inter) == 1:
                return j
        return None

    def first_shrunk_index() -> int | None:
        for j, m in enumerate(move_sets):
            if shrunk[j] or len(m) <= 1:
                continue
            inter = m & s
            if len(inter) == len(m) - 1 and inter:
                return j
        return None

    while (i := singleton_index()) is not None:
        (x,) = move_sets[i] & s
        s.discard(x)
        while (j := first_shrunk_index()) is not None:
            shrunk[j] = True
            inter = move_sets[j] & s
            if len(inter) == 1:
                # Removing any element would empty the move's residual;
                # the outer loop handles singletons, so re-queue there.
                break
            p = min(inter)
            s.discard(p)
    return frozenset(s)


@dataclass
class FoilResult:
    """Outcome of foiling one adaptive strategy."""

    hidden_set: frozenset[int]
    induced_moves: list[frozenset[int]]
    survived_moves: int  # moves answered without a hit on replay
    consistent: bool  # canonical answers matched the real referee's


def foil_strategy(
    strategy: ExplorerStrategyProtocol,
    n: int,
    max_moves: int,
) -> FoilResult:
    """Construct a hidden set defeating ``strategy`` for ``max_moves`` moves.

    Follows the paper's recipe: induce the strategy's move sequence
    under canonical answers, build ``S = find_set(moves)``, then replay
    the genuine game against ``S`` and record how long the strategy
    survives without hitting.  For ``max_moves ≤ n/2`` the replay is
    guaranteed hit-free and fully consistent (Lemmas 9–10).
    """
    if max_moves < 1:
        raise GameError("max_moves must be >= 1")
    # Stage 1: induce the oblivious move sequence.
    strategy.reset(n)
    history: list[tuple[frozenset[int], Answer]] = []
    induced: list[frozenset[int]] = []
    for _ in range(max_moves):
        move = frozenset(strategy.next_move(history))
        induced.append(move)
        if len(move) == 1:
            answer = Answer("miss", next(iter(move)))
        else:
            answer = Answer("nothing")
        history.append((move, answer))
    # Stage 2: the adversarial hidden set.
    hidden = find_set(induced, n)
    if not hidden:
        # find_set may drain S past n/2 moves; fall back to any
        # element never probed usefully, else give up gracefully.
        return FoilResult(hidden, induced, 0, consistent=False)
    # Stage 3: replay for real and audit consistency.
    referee = Referee(n, hidden)
    strategy.reset(n)
    replay_history: list[tuple[frozenset[int], Answer]] = []
    survived = 0
    consistent = True
    for expected_move in induced:
        move = frozenset(strategy.next_move(replay_history))
        answer = referee.answer(move)
        replay_history.append((move, answer))
        if answer.kind == "hit":
            break
        survived += 1
        if move != expected_move:
            consistent = False
            break
    return FoilResult(hidden, induced, survived, consistent)


def audit_charges(moves: Sequence[Iterable[int]], n: int) -> dict[str, int]:
    """Instrumented re-run of the Lemma 10 charging argument.

    Returns the number of removals charged per rule — at most one per
    singleton-residual event and one per first-shrink event — so tests
    can check ``removed ≤ 2·(t-1) + 1`` directly.
    """
    universe = frozenset(range(1, n + 1))
    move_sets = [frozenset(m) for m in moves]
    s = set(universe)
    shrunk = [False] * len(move_sets)
    charges_singleton = 0
    charges_shrink = 0

    def singleton_index() -> int | None:
        for j, m in enumerate(move_sets):
            if len(m & s) == 1:
                return j
        return None

    def first_shrunk_index() -> int | None:
        for j, m in enumerate(move_sets):
            if shrunk[j] or len(m) <= 1:
                continue
            inter = m & s
            if len(inter) == len(m) - 1 and inter:
                return j
        return None

    while (i := singleton_index()) is not None:
        (x,) = move_sets[i] & s
        s.discard(x)
        charges_singleton += 1
        while (j := first_shrunk_index()) is not None:
            shrunk[j] = True
            inter = move_sets[j] & s
            if len(inter) == 1:
                break
            s.discard(min(inter))
            charges_shrink += 1
    return {
        "removed": n - len(s),
        "charged_singleton": charges_singleton,
        "charged_shrink": charges_shrink,
        "final_size": len(s),
    }
