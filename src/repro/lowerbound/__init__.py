"""The deterministic lower bound machinery (paper Section 3).

The paper reduces broadcast on the network class ``C_n`` to the
**hitting game** (Definition 5) via three lemmas, then defeats every
explorer strategy of fewer than ``n/2`` moves with the ``find_set``
adversary, yielding the ``Ω(n)`` time bound (Theorem 12).

* :mod:`repro.lowerbound.hitting_game` — the game and its referee.
* :mod:`repro.lowerbound.adversary` — ``find_set`` plus the
  oblivious-strategy foiling pipeline.
* :mod:`repro.lowerbound.strategies` — a suite of explorer strategies.
* :mod:`repro.lowerbound.reduction` — abstract broadcast protocols on
  ``C_n`` and their compilation into explorer strategies (Lemma 7).
"""

from repro.lowerbound.adversary import find_set, foil_strategy
from repro.lowerbound.hitting_game import (
    Answer,
    HittingGame,
    Referee,
    play_game,
)
from repro.lowerbound.reduction import (
    AbstractBroadcastProtocol,
    RoundRobinAbstractProtocol,
    BinarySplitAbstractProtocol,
    explorer_from_protocol,
    run_abstract_protocol,
)
from repro.lowerbound.strategies import (
    BinarySplittingStrategy,
    DoublingStrategy,
    ExplorerStrategy,
    RandomStrategy,
    SingletonSweepStrategy,
)

__all__ = [
    "Answer",
    "Referee",
    "HittingGame",
    "play_game",
    "find_set",
    "foil_strategy",
    "ExplorerStrategy",
    "SingletonSweepStrategy",
    "BinarySplittingStrategy",
    "DoublingStrategy",
    "RandomStrategy",
    "AbstractBroadcastProtocol",
    "RoundRobinAbstractProtocol",
    "BinarySplitAbstractProtocol",
    "explorer_from_protocol",
    "run_abstract_protocol",
]
