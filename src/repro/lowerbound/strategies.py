"""Explorer strategies for the hitting game.

None of these can beat the adversary in fewer than ``n/2`` moves —
that is Proposition 11 — but they realise the natural attacks a
protocol designer would try, and the E4 experiment measures how the
``find_set`` adversary defeats each of them:

* :class:`SingletonSweepStrategy` — probe ``{1}, {2}, ...``; the
  optimal-order brute force (wins in ≤ n moves against *any* set, the
  matching upper bound for the game).
* :class:`DoublingStrategy` — deterministic blocks of sizes
  ``1, 2, 4, ...`` cycling over the universe (the pattern a Decay-like
  deterministic protocol would produce).
* :class:`BinarySplittingStrategy` — adaptive group-testing-style
  halving, pruning elements the referee reveals as misses.
* :class:`RandomStrategy` — random subsets of a fixed density.

All implement the structural interface
:class:`~repro.lowerbound.hitting_game.ExplorerStrategyProtocol`:
``reset(n)`` then ``next_move(history)``.
"""

from __future__ import annotations

import random

from repro.errors import GameError
from repro.lowerbound.hitting_game import Answer

__all__ = [
    "ExplorerStrategy",
    "SingletonSweepStrategy",
    "DoublingStrategy",
    "BinarySplittingStrategy",
    "RandomStrategy",
]

History = list[tuple[frozenset[int], Answer]]


class ExplorerStrategy:
    """Base class: tracks ``n`` and elements revealed as misses."""

    def __init__(self) -> None:
        self.n = 0

    def reset(self, n: int) -> None:
        if n < 1:
            raise GameError("n must be >= 1")
        self.n = n

    def next_move(self, history: History) -> frozenset[int]:
        raise NotImplementedError

    @staticmethod
    def known_misses(history: History) -> frozenset[int]:
        """Elements the referee has revealed to be outside S."""
        return frozenset(
            answer.element
            for _move, answer in history
            if answer.kind == "miss" and answer.element is not None
        )


class SingletonSweepStrategy(ExplorerStrategy):
    """Probe singletons in increasing order, skipping revealed misses."""

    def next_move(self, history: History) -> frozenset[int]:
        misses = self.known_misses(history)
        probed = frozenset().union(*(move for move, _ in history)) if history else frozenset()
        for x in range(1, self.n + 1):
            if x not in misses and x not in probed:
                return frozenset({x})
        return frozenset({self.n})  # exhausted: repeat the last element


class DoublingStrategy(ExplorerStrategy):
    """Fixed blocks of doubling sizes: {1}, {2,3}, {4..7}, ... wrapping."""

    def reset(self, n: int) -> None:
        super().reset(n)
        self._cursor = 1
        self._size = 1

    def next_move(self, history: History) -> frozenset[int]:
        move = frozenset(
            (self._cursor + offset - 1) % self.n + 1 for offset in range(self._size)
        )
        self._cursor += self._size
        self._size *= 2
        if self._size > self.n:
            self._size = 1
        if self._cursor > self.n:
            self._cursor = (self._cursor - 1) % self.n + 1
        return move


class BinarySplittingStrategy(ExplorerStrategy):
    """Adaptive halving over a candidate pool.

    Maintains a pool of elements not yet revealed as misses.  Each move
    probes half the pool; a "nothing" answer is ambiguous (that is the
    crux of the lower bound), so the strategy alternates which half it
    probes and falls back to singletons when the pool is small.
    """

    def reset(self, n: int) -> None:
        super().reset(n)
        self._flip = False

    def next_move(self, history: History) -> frozenset[int]:
        pool = [x for x in range(1, self.n + 1) if x not in self.known_misses(history)]
        if not pool:
            return frozenset({1})
        if len(pool) <= 2:
            return frozenset({pool[0]})
        half = len(pool) // 2
        self._flip = not self._flip
        chosen = pool[:half] if self._flip else pool[half:]
        return frozenset(chosen)


class RandomStrategy(ExplorerStrategy):
    """Pseudo-random subsets of expected size ``density * n``.

    Seeded at ``reset`` so the strategy is formally *deterministic*
    (the coin sequence is part of its description) — which is what lets
    the ``find_set`` adversary defeat it like any other deterministic
    strategy, and keeps :func:`~repro.lowerbound.adversary.foil_strategy`'s
    induce/replay stages consistent.
    """

    def __init__(self, seed: int, *, density: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < density <= 1.0:
            raise GameError("density must be in (0, 1]")
        self.seed = seed
        self.density = density
        self._rng = random.Random(seed)

    def reset(self, n: int) -> None:
        super().reset(n)
        self._rng = random.Random(self.seed)

    def next_move(self, history: History) -> frozenset[int]:
        misses = self.known_misses(history)
        move = frozenset(
            x
            for x in range(1, self.n + 1)
            if x not in misses and self._rng.random() < self.density
        )
        if move:
            return move
        candidates = [x for x in range(1, self.n + 1) if x not in misses]
        if not candidates:
            candidates = list(range(1, self.n + 1))
        return frozenset({self._rng.choice(candidates)})
