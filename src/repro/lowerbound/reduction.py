"""The reduction chain of Section 3.2, made executable.

The paper proves (Lemmas 5–7) that any deterministic broadcast protocol
for the class ``C_n`` induces a winning explorer strategy for the
hitting game using at most twice as many moves.  This module implements
the forward direction so experiments can *run* it:

* :class:`AbstractBroadcastProtocol` — Definition 4's abstract model,
  captured by the paper's predicate ``π(p, χ, H)``: given a processor
  ``p``, its S-indicator ``χ`` and the common history ``H``, should
  ``p`` transmit this round?  Concrete subclasses provide two natural
  deterministic protocols:

  - :class:`RoundRobinAbstractProtocol` — processor ``p`` transmits in
    round ``p`` (the abstract image of TDMA broadcast; hits in ≤ n
    rounds);
  - :class:`BinarySplitAbstractProtocol` — rounds probe ID-bit groups
    (the abstract image of a binary-splitting protocol).

* :func:`run_abstract_protocol` — execute an abstract protocol against
  a hidden set ``S`` per Definition 4's round rules, returning the
  round at which broadcast completes (first successful round whose
  transmitter is in ``S``).

* :func:`explorer_from_protocol` — Lemma 7's compilation: round ``i``
  becomes game moves ``T_i^(1) = {p : π(p, 1, H)}`` and
  ``T_i^(0) = {p : π(p, 0, H)}``.  Combined with the
  :mod:`~repro.lowerbound.adversary`, this closes the loop: the
  adversary defeats *the protocol itself* for ``n/4`` rounds.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GameError
from repro.lowerbound.strategies import ExplorerStrategy, History

__all__ = [
    "AbstractBroadcastProtocol",
    "RoundRobinAbstractProtocol",
    "BinarySplitAbstractProtocol",
    "run_abstract_protocol",
    "explorer_from_protocol",
    "ProtocolStrategy",
]

#: The common history: per round, either the transmitting processor's
#: (ID, indicator) pair for a successful round, or None.
AbstractHistory = tuple[tuple[int, int] | None, ...]


class AbstractBroadcastProtocol:
    """Definition 4 protocols, described by the predicate ``π``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise GameError("n must be >= 1")
        self.n = n

    def pi(self, p: int, indicator: int, history: AbstractHistory) -> bool:
        """Does processor ``p`` (with S-indicator ``indicator``) transmit
        in the round following ``history``?"""
        raise NotImplementedError

    def transmit_set(self, indicator: int, history: AbstractHistory) -> frozenset[int]:
        """``T^(σ) = {p : π(p, σ, H)}`` — the paper's notation."""
        return frozenset(
            p for p in range(1, self.n + 1) if self.pi(p, indicator, history)
        )


class RoundRobinAbstractProtocol(AbstractBroadcastProtocol):
    """Processor ``p`` transmits in round ``p`` (1-indexed), regardless
    of its indicator — the abstract image of TDMA broadcast.  Always
    completes within ``n`` rounds: the round of the smallest element of
    ``S`` is successful with an ``S``-transmitter."""

    def pi(self, p: int, indicator: int, history: AbstractHistory) -> bool:
        return p == len(history) + 1


class BinarySplitAbstractProtocol(AbstractBroadcastProtocol):
    """Non-adaptive binary splitting by ID bits.

    Round index enumerates (bit, value) pairs then single IDs: early
    rounds transmit all ``p`` whose bit ``b`` equals ``v`` *and* whose
    indicator is 1 (only processors that can complete the broadcast
    bother), falling back to an indicator-1 singleton sweep.  A natural
    "fast if lucky" deterministic attempt — the adversary's ``S`` makes
    every group round collide and drives it to Θ(n).
    """

    def pi(self, p: int, indicator: int, history: AbstractHistory) -> bool:
        round_index = len(history)
        bits = max(1, (self.n).bit_length())
        if round_index < 2 * bits:
            bit, value = divmod(round_index, 2)
            return indicator == 1 and (p >> bit) & 1 == value
        return indicator == 1 and p == round_index - 2 * bits + 1


def run_abstract_protocol(
    protocol: AbstractBroadcastProtocol,
    hidden_set: Iterable[int],
    max_rounds: int,
) -> int | None:
    """Execute the abstract protocol against ``S``; return the round at
    which broadcast completes, or None if ``max_rounds`` pass first.

    Round semantics (the *strengthened* abstract model — strengthening
    the protocol's feedback is legitimate in a lower-bound reduction,
    which is the whole point of Lemma 6):

    * the transmitters are ``T = (T^(1) ∩ S) ∪ (T^(0) ∩ S̄)`` where
      ``T^(σ) = {p : π(p, σ, H)}``;
    * if ``|T^(1) ∩ S| = 1`` the sink hears that lone ``S``-transmitter
      and broadcast **completes**;
    * else if ``|T^(0) ∩ S̄| = 1`` that transmitter's message reaches
      the source side and is appended to the common history as
      ``(p, 0)`` (the paper notes every successful round before the
      last has indicator 0);
    * otherwise the round fails and ``None`` is appended.

    This feedback is, by construction, exactly what the hitting-game
    referee reveals on the move pair ``(T^(1), T^(0))``, which makes
    :class:`ProtocolStrategy`'s simulation exact: the compiled explorer
    and the protocol see identical histories for as long as the game
    continues.
    """
    s = frozenset(hidden_set)
    if not s or not s <= frozenset(range(1, protocol.n + 1)):
        raise GameError("S must be a non-empty subset of 1..n")
    complement = frozenset(range(1, protocol.n + 1)) - s
    history: list[tuple[int, int] | None] = []
    for round_number in range(1, max_rounds + 1):
        h = tuple(history)
        t1 = protocol.transmit_set(1, h)
        t0 = protocol.transmit_set(0, h)
        if len(t1 & s) == 1:
            return round_number
        lone_zero = t0 & complement
        if len(lone_zero) == 1:
            history.append((next(iter(lone_zero)), 0))
        else:
            history.append(None)
    return None


class ProtocolStrategy(ExplorerStrategy):
    """Lemma 7's compilation of an abstract protocol into an explorer.

    Game move ``2i - 1`` is ``T_i^(1)`` and move ``2i`` is ``T_i^(0)``.
    The protocol history is reconstructed from the referee's answers:
    a hit ends the game; revealed misses and "nothing" answers are
    folded into the abstract history exactly as in the paper's function
    ``g`` (a revealed element of a round's transmitter pair becomes the
    successful transmitter; two unrevealed moves mean the round failed).
    """

    def __init__(self, protocol_factory) -> None:
        super().__init__()
        self._factory = protocol_factory
        self.protocol: AbstractBroadcastProtocol | None = None

    def reset(self, n: int) -> None:
        super().reset(n)
        self.protocol = self._factory(n)

    def next_move(self, history: History) -> frozenset[int]:
        if self.protocol is None:
            raise GameError("reset() must be called before next_move()")
        abstract_history = self._abstract_history(history)
        if len(history) % 2 == 0:
            return self.protocol.transmit_set(1, abstract_history)
        return self.protocol.transmit_set(0, abstract_history)

    def _abstract_history(self, history: History) -> AbstractHistory:
        """Fold pairs of game answers back into protocol rounds.

        The paper's ``g``: a revealed lone element of ``T^(0) ∩ S̄`` is
        the round's successful transmitter; anything else (including a
        miss on the ``T^(1)`` move, which the protocol's channel never
        reports) folds to an unsuccessful round.
        """
        rounds: list[tuple[int, int] | None] = []
        for i in range(0, len(history) - len(history) % 2, 2):
            _move0_set, answer0 = history[i + 1]  # T^(0) move's answer
            if answer0.kind == "miss" and answer0.element is not None:
                rounds.append((answer0.element, 0))
            else:
                rounds.append(None)
        return tuple(rounds)


def explorer_from_protocol(protocol_factory) -> ProtocolStrategy:
    """Convenience wrapper matching the paper's Lemma 7 statement."""
    return ProtocolStrategy(protocol_factory)
