"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can distinguish library-level failures
(bad parameters, malformed graphs, protocol misuse) from programming
errors in their own code with a single ``except ReproError`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFound",
    "EdgeNotFound",
    "SimulationError",
    "ProtocolError",
    "GameError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph operation received invalid input (duplicate node, self-loop, ...)."""


class NodeNotFound(GraphError, KeyError):
    """A node referenced by an operation does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its args; give a readable message.
        return f"node {self.node!r} is not in the graph"


class EdgeNotFound(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__((u, v))
        self.edge = (u, v)

    def __str__(self) -> str:
        return f"edge {self.edge!r} is not in the graph"


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ProtocolError(ReproError):
    """A protocol/node program violated the engine's contract."""


class GameError(ReproError):
    """The hitting game was played out of turn or with illegal moves."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
