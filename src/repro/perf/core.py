""":class:`PerfSession` and the ambient active-session registry.

The registry mirrors :mod:`repro.telemetry.core` exactly: one module
global, ``None`` meaning "perf disabled", and every fast helper gated
on a single load-plus-``None``-check.  Instrumented code in the engine
hot path snapshots :func:`get_active` once per run and branches on a
local, so with perf off the per-slot cost is one pointer comparison —
the same zero-cost discipline ``bench_engine.py --check`` enforces for
telemetry.

A session owns:

* a :class:`~repro.perf.sampler.Sampler` (wall-clock folded stacks);
* optional :mod:`tracemalloc` accounting, folded into span peaks at
  every span boundary (``reset_peak`` windows, parent peaks updated
  before each reset so nesting never loses a maximum);
* per-label **span statistics** — entry count, wall seconds, samples
  attributed by the sampler, and peak/net traced memory — keyed by the
  labels pushed with :func:`perf_span` / :meth:`PerfSession.span_push`.

``Telemetry.span`` forwards its block into :func:`span_push` /
:func:`span_pop` (see :mod:`repro.telemetry.core`), so existing
telemetry spans become perf attribution points for free; the engine,
the vectorized kernels, the pool, and the fabric add their own labels
directly.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import tracemalloc
from typing import Any, Iterator, Mapping, MutableMapping

from repro.perf.sampler import _SPANS, Sampler

__all__ = [
    "DEFAULT_HZ",
    "ENV_VAR",
    "PerfSession",
    "SpanStat",
    "activate",
    "get_active",
    "hz_from_env",
    "perf_span",
    "set_active",
    "span_push",
    "span_pop",
]

#: Default sampling rate.  Prime, so the sampler does not beat against
#: 100 Hz timers or the engine's power-of-two slot batches.
DEFAULT_HZ = 97

#: Environment gate: set to the sampling hz to ask subprocesses (pool
#: workers, fabric workers) to profile themselves.  Empty/``0`` = off.
ENV_VAR = "REPRO_PERF"


def hz_from_env(env: Mapping[str, str] | None = None) -> float | None:
    """The hz requested by :data:`ENV_VAR`, or ``None`` when unset/off."""
    raw = (env if env is not None else os.environ).get(ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        hz = float(raw)
    except ValueError:
        return float(DEFAULT_HZ)
    return hz if hz > 0 else None


class SpanStat:
    """Accumulated cost of one span label."""

    __slots__ = ("count", "secs", "samples", "mem_peak_kb", "mem_net_kb")

    def __init__(self) -> None:
        self.count = 0
        self.secs = 0.0
        self.samples = 0
        self.mem_peak_kb = 0.0
        self.mem_net_kb = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "secs": round(self.secs, 6),
            "samples": self.samples,
            "mem_peak_kb": round(self.mem_peak_kb, 3),
            "mem_net_kb": round(self.mem_net_kb, 3),
        }


class PerfSession:
    """One profiling session: sampler + tracemalloc + span accounting.

    ``start()``/``stop()`` are idempotent.  The session is safe to run
    alongside telemetry activation/deactivation in other threads — the
    two registries are independent and the sampler never touches the
    recorder.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        memory: bool = True,
        tag: str | None = None,
    ) -> None:
        self.hz = float(hz)
        self.tag = tag
        self.sampler = Sampler(self.hz, on_label=self._label_hit)
        self._memory = memory
        self._owns_tracemalloc = False
        self._stats: dict[str, SpanStat] = {}
        self._stats_lock = threading.Lock()
        # tid -> open frames [label, t0, mem0_bytes, peak_bytes_seen]
        self._frames: dict[int, list[list[Any]]] = {}
        self._started = False
        self._stopped = False

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    def start(self) -> "PerfSession":
        if self._started:
            return self
        self._started = True
        if self._memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self.sampler.start()
        return self

    def stop(self) -> "PerfSession":
        if not self._started or self._stopped:
            return self
        self._stopped = True
        self.sampler.stop()
        # Close any spans left open (e.g. a KeyboardInterrupt mid-run)
        # so their time is not silently lost.
        for tid in list(self._frames):
            while self._frames.get(tid):
                self.span_pop(tid=tid)
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False
        return self

    def __enter__(self) -> "PerfSession":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- span attribution ---------------------------------------------------

    def _label_hit(self, label: str) -> None:
        self._stat(label).samples += 1

    def _stat(self, label: str) -> SpanStat:
        stat = self._stats.get(label)
        if stat is None:
            with self._stats_lock:
                stat = self._stats.setdefault(label, SpanStat())
        return stat

    def _mem_mark(self, frames: list[list[Any]]) -> int | None:
        """Fold the current tracemalloc peak into every open frame and
        reset the peak window; returns current traced bytes."""
        if not self._memory or not tracemalloc.is_tracing():
            return None
        current, peak = tracemalloc.get_traced_memory()
        for frame in frames:
            if peak > frame[3]:
                frame[3] = peak
        if hasattr(tracemalloc, "reset_peak"):
            tracemalloc.reset_peak()
        return current

    def span_push(self, label: str) -> None:
        """Attribute subsequent samples/allocations on this thread to
        ``label`` until the matching :meth:`span_pop`."""
        tid = threading.get_ident()
        _SPANS[tid] = _SPANS.get(tid, ()) + (label,)
        frames = self._frames.setdefault(tid, [])
        mem0 = self._mem_mark(frames)
        frames.append([label, time.perf_counter(), mem0, 0])

    def span_pop(self, *, tid: int | None = None) -> None:
        """Close the innermost span on this (or the given) thread."""
        if tid is None:
            tid = threading.get_ident()
        frames = self._frames.get(tid)
        if not frames:
            return
        current = self._mem_mark(frames)
        label, t0, mem0, peak = frames.pop()
        stack = _SPANS.get(tid)
        if stack:
            _SPANS[tid] = stack[:-1]
            if not _SPANS[tid]:
                _SPANS.pop(tid, None)
        stat = self._stat(label)
        stat.count += 1
        stat.secs += time.perf_counter() - t0
        if current is not None and mem0 is not None:
            peak_kb = max(0.0, (peak - mem0) / 1024.0)
            if peak_kb > stat.mem_peak_kb:
                stat.mem_peak_kb = peak_kb
            stat.mem_net_kb += (current - mem0) / 1024.0

    # -- results --------------------------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        return self.sampler.counts

    def folded_text(self) -> str:
        return self.sampler.folded_text()

    def span_table(self) -> list[dict[str, Any]]:
        """Per-label statistics, heaviest (by seconds) first."""
        rows = [
            {"label": label, **stat.as_dict()}
            for label, stat in self._stats.items()
        ]
        rows.sort(key=lambda row: (-row["secs"], row["label"]))
        return rows

    def summary(self) -> dict[str, Any]:
        return {
            "samples": self.sampler.samples,
            "hz": self.hz,
            "wall_s": round(self.sampler.wall_s, 6),
            "stacks": len(self.sampler.counts),
            "spans": self.span_table(),
        }

    def emit(self, recorder: Any, *, top_stacks: int = 200, **extra: Any) -> None:
        """Write ``perf_profile`` + ``perf_span`` records to a telemetry
        recorder (duck-typed: anything with ``emit(kind, **fields)``).

        The profile record carries the ``top_stacks`` heaviest folded
        stacks (deterministic order) so logs stay bounded; the dropped
        remainder is reported in ``stacks_dropped``.
        """
        ranked = sorted(self.sampler.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = dict(ranked[:top_stacks])
        fields: dict[str, Any] = {
            "samples": self.sampler.samples,
            "hz": self.hz,
            "dur_s": round(self.sampler.wall_s, 6),
            "stacks": kept,
            "stacks_dropped": max(0, len(ranked) - len(kept)),
        }
        if self.tag:
            fields["tag"] = self.tag
        fields.update(extra)
        recorder.emit("perf_profile", **fields)
        for row in self.span_table():
            span_fields = dict(row)
            if self.tag:
                span_fields.setdefault("tag", self.tag)
            span_fields.update(extra)
            recorder.emit("perf_span", **span_fields)

    def to_env(self, env: MutableMapping[str, str]) -> MutableMapping[str, str]:
        """Stamp the subprocess gate so workers profile themselves."""
        env[ENV_VAR] = f"{self.hz:g}"
        return env


# -- ambient registry -------------------------------------------------------

#: The ambient session; ``None`` means perf is disabled and every fast
#: helper below is a no-op (one global load + None check).
_ACTIVE: PerfSession | None = None


def get_active() -> PerfSession | None:
    """The ambient session, or ``None`` when perf is disabled."""
    return _ACTIVE


def set_active(session: PerfSession | None) -> PerfSession | None:
    """Install (or clear, with ``None``) the ambient session; returns
    the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    return previous


@contextlib.contextmanager
def activate(session: PerfSession) -> Iterator[PerfSession]:
    """Make ``session`` ambient (and running) for the block."""
    previous = set_active(session)
    session.start()
    try:
        yield session
    finally:
        session.stop()
        set_active(previous)


# -- fast helpers (one global load + None check when disabled) ---------------


def span_push(label: str) -> None:
    session = _ACTIVE
    if session is not None:
        session.span_push(label)


def span_pop() -> None:
    session = _ACTIVE
    if session is not None:
        session.span_pop()


@contextlib.contextmanager
def perf_span(label: str) -> Iterator[None]:
    """Attribute the block's samples/allocations to ``label``.

    Strict no-op when no session is active — hot paths that cannot
    afford even the context-manager allocation should instead snapshot
    :func:`get_active` once and call ``span_push``/``span_pop`` behind
    a local ``None`` check (see ``repro/sim/vectorized.py``).
    """
    session = _ACTIVE
    if session is None:
        yield
        return
    session.span_push(label)
    try:
        yield
    finally:
        session.span_pop()
