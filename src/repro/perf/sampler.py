"""The wall-clock sampling profiler: a daemon thread over
``sys._current_frames()``.

Each tick the sampler walks every thread's live stack (except its own)
into a **folded stack** — frames root→leaf joined with ``;``, each
frame rendered ``file.py:function`` — and bumps that stack's sample
count.  If the sampled thread has perf span labels live (see
:data:`_SPANS`, pushed by :meth:`repro.perf.core.PerfSession.span_push`),
the folded stack is prefixed with them, so span-attributed time falls
out of the same aggregation that feeds the flamegraph.

Safety properties the rest of the repo relies on:

* **No signal handlers.**  Sampling rides a plain
  ``threading.Event.wait`` loop, so it composes with SIGTERM draining
  in fabric workers and never interrupts syscalls in the program.
* **Never raises into the program.**  A thread that exits between
  ``sys._current_frames()`` and the stack walk is simply skipped.
* **Idempotent start/stop.**  ``start()`` on a running sampler and
  ``stop()`` on a stopped one are no-ops, so CLI teardown paths can be
  sloppy about ordering.
* **Zero cost when not running.**  The only ambient state is the span
  registry, and nothing touches it unless a session is active.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable

__all__ = ["Sampler", "MAX_STACK_DEPTH"]

#: Deepest stack the sampler will record; frames below are dropped
#: (the folded stack gets a ``<truncated>`` root so the loss is visible).
MAX_STACK_DEPTH = 128

#: tid -> tuple of live perf span labels, innermost last.  Tuples are
#: swapped whole (never mutated) so the sampler thread always reads a
#: consistent snapshot without a lock.
_SPANS: dict[int, tuple[str, ...]] = {}


def _frame_name(code) -> str:
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class Sampler:
    """Aggregating wall-clock sampler.

    ``counts`` maps folded stacks to sample counts; ``samples`` is the
    grand total; ``wall_s`` is the sampled wall time (set on stop).
    """

    def __init__(
        self,
        hz: float = 97.0,
        *,
        on_label: Callable[[str], None] | None = None,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = float(hz)
        self.interval = 1.0 / float(hz)
        self.counts: dict[str, int] = {}
        self.samples = 0
        self.wall_s = 0.0
        self._on_label = on_label
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> None:
        """Begin sampling (idempotent: a second start is a no-op)."""
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._started_at = time.perf_counter()
        thread = threading.Thread(
            target=self._loop, name="repro-perf-sampler", daemon=True
        )
        self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop sampling and join the thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self.wall_s += time.perf_counter() - self._started_at
            self._started_at = None

    # -- the sampling loop --------------------------------------------------

    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            try:
                self._sample(own)
            except Exception:  # noqa: BLE001 - never raise into the program
                continue

    def _sample(self, own_tid: int) -> None:
        for tid, frame in sys._current_frames().items():
            if tid == own_tid:
                continue
            parts: list[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                parts.append(_frame_name(frame.f_code))
                frame = frame.f_back
                depth += 1
            if not parts:
                continue
            if frame is not None:  # bottomed out on the depth cap
                parts.append("<truncated>")
            parts.reverse()
            labels = _SPANS.get(tid)
            if labels:
                folded = ";".join(labels) + ";" + ";".join(parts)
                if self._on_label is not None:
                    self._on_label(labels[-1])
            else:
                folded = ";".join(parts)
            self.counts[folded] = self.counts.get(folded, 0) + 1
            self.samples += 1

    # -- output -------------------------------------------------------------

    def folded_text(self) -> str:
        """The profile in folded-stack text format, sorted for determinism."""
        lines = [f"{stack} {count}" for stack, count in sorted(self.counts.items())]
        return "\n".join(lines) + ("\n" if lines else "")
