"""``repro.perf`` — the performance plane: sampling profiler, memory
observability, and span-attributed cost accounting.

Three pieces, all stdlib-only:

* :mod:`repro.perf.sampler` — a wall-clock **sampling profiler**: a
  daemon thread snapshots ``sys._current_frames()`` at a configurable
  rate and aggregates folded stacks (Brendan Gregg's one-line-per-stack
  format).  It installs no signal handlers, never raises into the
  sampled program, and costs nothing when not running.
* :mod:`repro.perf.core` — :class:`PerfSession`, which owns a sampler
  plus optional :mod:`tracemalloc` accounting, and the ambient
  active-session registry (:func:`get_active` / :func:`set_active` /
  :func:`activate`) mirroring :mod:`repro.telemetry.core`: when no
  session is active every helper is one module-global load plus a
  ``None`` check, so the engine hot-path numbers survive untouched
  (``bench_engine.py --check`` guards this).  Samples and memory peaks
  are **attributed to spans**: :func:`perf_span` (or
  ``Telemetry.span``, which forwards automatically) labels the running
  thread, and every sample taken while the label is live is credited
  to it — per engine slot-batch, Decay phase, vectorized kernel, pool
  chunk, and fabric worker.
* :mod:`repro.perf.flame` — a deterministic, self-contained (no
  scripts, no timestamps, no randomness) **flamegraph HTML** renderer
  over folded stacks, plus folded-profile parsing/merging/diffing for
  ``perf flame`` / ``perf diff`` and the bench regression gate.

Cross-process: ``REPRO_PERF=<hz>`` in the environment asks pool
workers (:mod:`repro.parallel`) and fabric workers
(:mod:`repro.fabric.worker`) to sample themselves; their ``perf_*``
records ship back / land in worker logs exactly like the rest of the
telemetry stream and are merged chunk-tagged.
"""

from repro.perf.core import (
    DEFAULT_HZ,
    ENV_VAR,
    PerfSession,
    activate,
    get_active,
    hz_from_env,
    perf_span,
    set_active,
)
from repro.perf.flame import (
    diff_folded,
    load_stacks,
    merge_folded,
    parse_folded,
    render_flamegraph,
    top_frames,
)
from repro.perf.sampler import Sampler

__all__ = [
    "DEFAULT_HZ",
    "ENV_VAR",
    "PerfSession",
    "Sampler",
    "activate",
    "diff_folded",
    "get_active",
    "hz_from_env",
    "load_stacks",
    "merge_folded",
    "parse_folded",
    "perf_span",
    "render_flamegraph",
    "set_active",
    "top_frames",
]
