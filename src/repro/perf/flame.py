"""Deterministic flamegraph rendering and folded-profile algebra.

The renderer emits a **self-contained, scriptless HTML** document —
nested flexbox ``<div>`` rows (icicle layout, root on top), colors
derived from a stable hash of the frame name, every float formatted to
fixed precision, children iterated in sorted order, and nothing drawn
from the clock or an RNG.  Rendering the same profile twice therefore
produces byte-identical output; the CI perf job asserts this, and the
campaign-autopsy HTML set the precedent for scriptless artifacts.

Folded profiles (``stack;frames;joined count`` lines) are the exchange
format between the sampler, ``perf flame``/``perf diff``, and the
bench regression gate: :func:`parse_folded` / :func:`merge_folded` /
:func:`diff_folded` / :func:`top_frames` operate on plain
``dict[str, int]`` mappings so every layer can share them.
"""

from __future__ import annotations

import hashlib
import html
import json
from pathlib import Path
from typing import Any

__all__ = [
    "parse_folded",
    "merge_folded",
    "diff_folded",
    "top_frames",
    "load_stacks",
    "render_flamegraph",
]


def parse_folded(text: str) -> dict[str, int]:
    """Parse folded-stack lines (``frames;joined count``) into a mapping.

    Malformed lines are skipped — folded files may be concatenations of
    partial captures and a torn tail must not poison the whole profile.
    """
    stacks: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count_text = line.rpartition(" ")
        if not stack:
            continue
        try:
            count = int(count_text)
        except ValueError:
            continue
        if count <= 0:
            continue
        stacks[stack] = stacks.get(stack, 0) + count
    return stacks


def merge_folded(*profiles: dict[str, int]) -> dict[str, int]:
    """Sum several folded profiles (e.g. per-chunk worker captures)."""
    merged: dict[str, int] = {}
    for profile in profiles:
        for stack, count in profile.items():
            merged[stack] = merged.get(stack, 0) + count
    return merged


def top_frames(stacks: dict[str, int], top: int = 10) -> list[dict[str, Any]]:
    """Per-frame totals: samples in stacks containing the frame
    (``total``) and samples with the frame on top (``self``).

    A frame appearing several times in one stack (recursion) is counted
    once, so ``total`` never exceeds the profile's sample count.
    """
    total_samples = sum(stacks.values()) or 1
    totals: dict[str, int] = {}
    selfs: dict[str, int] = {}
    for stack, count in stacks.items():
        frames = stack.split(";")
        for frame in set(frames):
            totals[frame] = totals.get(frame, 0) + count
        leaf = frames[-1]
        selfs[leaf] = selfs.get(leaf, 0) + count
    rows = [
        {
            "frame": frame,
            "total": total,
            "self": selfs.get(frame, 0),
            "share": round(total / total_samples, 6),
        }
        for frame, total in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self"], -row["total"], row["frame"]))
    return rows[:top]


def diff_folded(
    before: dict[str, int], after: dict[str, int], top: int = 20
) -> list[dict[str, Any]]:
    """Per-frame share drift between two profiles, biggest growth first.

    Shares are normalized by each profile's own sample count, so a
    longer capture does not read as a regression; ``delta_share > 0``
    means the frame takes a larger fraction of the wall time in
    ``after``.
    """
    base_total = sum(before.values()) or 1
    new_total = sum(after.values()) or 1

    def shares(stacks: dict[str, int], total: int) -> dict[str, float]:
        acc: dict[str, int] = {}
        for stack, count in stacks.items():
            for frame in set(stack.split(";")):
                acc[frame] = acc.get(frame, 0) + count
        return {frame: count / total for frame, count in acc.items()}

    before_share = shares(before, base_total)
    after_share = shares(after, new_total)
    rows = [
        {
            "frame": frame,
            "before_share": round(before_share.get(frame, 0.0), 6),
            "after_share": round(after_share.get(frame, 0.0), 6),
            "delta_share": round(
                after_share.get(frame, 0.0) - before_share.get(frame, 0.0), 6
            ),
        }
        for frame in sorted(set(before_share) | set(after_share))
    ]
    rows.sort(key=lambda row: (-row["delta_share"], row["frame"]))
    return rows[:top]


def load_stacks(path: str | Path) -> dict[str, int]:
    """Folded stacks from a ``.folded`` file **or** a telemetry JSONL
    log (merging every ``perf_profile`` record's ``stacks``)."""
    text = Path(path).read_text(encoding="utf-8")
    first = text.lstrip()[:1]
    if first != "{":
        return parse_folded(text)
    profiles: list[dict[str, int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail
        if isinstance(record, dict) and record.get("kind") == "perf_profile":
            stacks = record.get("stacks")
            if isinstance(stacks, dict):
                profiles.append(
                    {
                        str(stack): int(count)
                        for stack, count in stacks.items()
                        if isinstance(count, (int, float)) and count > 0
                    }
                )
    return merge_folded(*profiles)


# -- rendering ----------------------------------------------------------------

#: Stop recursing into children narrower than this share of the root;
#: keeps pathological profiles from emitting megabytes of 0.01% boxes.
_MIN_SHARE = 0.001


def _hue(name: str) -> int:
    digest = hashlib.md5(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:2], "big") % 360


class _Node:
    __slots__ = ("children", "total", "self_count")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.total = 0
        self.self_count = 0


def _build_tree(stacks: dict[str, int]) -> _Node:
    root = _Node()
    for stack in sorted(stacks):
        count = stacks[stack]
        root.total += count
        node = root
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node()
            child.total += count
            node = child
        node.self_count += count
    return root


def _render_children(node: _Node, root_total: int, out: list[str]) -> None:
    parent_total = node.total or 1
    if node.self_count and node.children:
        pct = 100.0 * node.self_count / parent_total
        out.append(f'<div class="pad" style="width:{pct:.4f}%"></div>')
    for name in sorted(node.children):
        child = node.children[name]
        if child.total / (root_total or 1) < _MIN_SHARE:
            continue
        pct = 100.0 * child.total / parent_total
        share = 100.0 * child.total / (root_total or 1)
        label = html.escape(name, quote=True)
        out.append(
            f'<div class="col" style="width:{pct:.4f}%">'
            f'<div class="box" style="background:hsl({_hue(name)},62%,74%)" '
            f'title="{label} — {child.total} samples ({share:.2f}%)">'
            f"<span>{label}</span></div>"
        )
        if child.children:
            out.append('<div class="row">')
            _render_children(child, root_total, out)
            out.append("</div>")
        out.append("</div>")


_STYLE = """\
body{font:13px/1.4 sans-serif;margin:1.2em;background:#fafafa;color:#222}
h1{font-size:1.15em;margin:0 0 .25em}
.meta{color:#666;margin:0 0 1em}
.fg{font:11px monospace;border:1px solid #ddd;background:#fff;padding:2px}
.row{display:flex;width:100%}
.col{display:flex;flex-direction:column;min-width:0}
.pad{flex:none}
.box{height:17px;line-height:17px;overflow:hidden;white-space:nowrap;
     text-overflow:ellipsis;border:1px solid rgba(0,0,0,.18);
     border-radius:2px;padding:0 3px;box-sizing:border-box}
.box:hover{filter:brightness(.85)}
details{margin-top:1em}
pre{font:11px monospace;background:#fff;border:1px solid #ddd;padding:.6em;
    overflow-x:auto}
table{border-collapse:collapse;margin-top:1em}
td,th{border:1px solid #ddd;padding:2px 8px;font:12px monospace;text-align:left}
"""


def render_flamegraph(
    stacks: dict[str, int],
    *,
    title: str = "repro perf profile",
    subtitle: str | None = None,
) -> str:
    """A self-contained scriptless flamegraph HTML document.

    Byte-stable: the same ``stacks`` mapping always renders to the same
    bytes (sorted iteration, fixed float precision, no timestamps).
    """
    root = _build_tree(stacks)
    total = root.total
    parts: list[str] = []
    title_html = html.escape(title)
    parts.append(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{title_html}</title><style>{_STYLE}</style></head><body>"
    )
    parts.append(f"<h1>{title_html}</h1>")
    meta = f"{total} samples · {len(stacks)} distinct stacks"
    if subtitle:
        meta += f" · {html.escape(subtitle)}"
    parts.append(f'<p class="meta">{meta}</p>')
    if total == 0:
        parts.append('<p class="meta">(no samples captured)</p>')
    else:
        parts.append('<div class="fg"><div class="row">')
        _render_children(root, total, parts)
        parts.append("</div></div>")
        rows = top_frames(stacks, top=15)
        parts.append(
            "<table><tr><th>frame</th><th>self</th><th>total</th>"
            "<th>share</th></tr>"
        )
        for row in rows:
            parts.append(
                f"<tr><td>{html.escape(str(row['frame']))}</td>"
                f"<td>{row['self']}</td><td>{row['total']}</td>"
                f"<td>{100.0 * row['share']:.2f}%</td></tr>"
            )
        parts.append("</table>")
        folded = "\n".join(f"{stack} {stacks[stack]}" for stack in sorted(stacks))
        parts.append(
            "<details><summary>folded stacks</summary>"
            f"<pre>{html.escape(folded)}</pre></details>"
        )
    parts.append("</body></html>\n")
    return "".join(parts)
