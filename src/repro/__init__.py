"""repro — Bar-Yehuda, Goldreich & Itai (PODC 1987), reproduced in Python.

The paper: *On the Time-Complexity of Broadcast in Multi-Hop Radio
Networks: An Exponential Gap Between Determinism and Randomization.*

Public surface (see README for a guided tour):

* ``repro.graphs`` — graph structures, the paper's ``C_n``/``C*_n``
  families, standard topologies.
* ``repro.sim`` — the synchronous radio model (Definition 1): engine,
  media with/without collision detection, traces, faults.
* ``repro.core`` — Decay and the paper's analytic bounds/schedules.
* ``repro.protocols`` — the randomized Broadcast/BFS/leader-election/
  multi-broadcast protocols and the deterministic baselines.
* ``repro.lowerbound`` — the hitting game, the ``find_set`` adversary,
  and the protocol-to-game reduction behind Theorem 12.
* ``repro.experiments`` — one module per reproduced result (E1–E12).
* ``repro.parallel`` — the process-pool backend for Monte-Carlo
  repetition (``ExperimentConfig(jobs=N)`` / ``REPRO_JOBS``).

Quick start::

    from repro.graphs import random_gnp
    from repro.protocols import run_decay_broadcast
    import random

    g = random_gnp(64, 0.1, random.Random(7))
    result = run_decay_broadcast(g, source=0, seed=7, epsilon=0.05)
    print(result.broadcast_completion_slot(source=0))
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["__version__", "ReproError"]
