"""The shared SQLite lease store behind the campaign fabric.

One database file coordinates any number of worker processes (on one
host or a shared filesystem): it pins the campaign identity and chunk
geometry, hands out chunk **leases**, receives **heartbeats**, and
accepts committed chunk payloads — all under WAL mode with a busy
timeout, so concurrent workers queue on the write lock instead of
failing.

Crash safety rests on two rules, both enforced *inside* single
``BEGIN IMMEDIATE`` transactions so no interleaving can violate them:

* **Lease takeover** — a chunk may be (re)claimed iff it is pending or
  its lease has expired.  Every grant increments the chunk's
  **fencing token**, a per-chunk monotonic counter.
* **Fenced commit** — a commit is accepted iff the committing fence is
  the chunk's *current* fence.  A worker that stalled past its lease
  and was superseded holds a stale fence; its late commit matches zero
  rows and is recorded as a ``fence_reject`` event instead of data.
  (A lease that expired but was never taken over keeps its fence, so
  its commit still lands — the result is deterministic either way.)

Every grant, commit, rejection, and worker lifecycle transition is
appended to an ``events`` table, which the coordinator drains into
telemetry (``lease``/``worker`` records) and the verification harness
audits for fencing violations.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ExperimentError

__all__ = ["LEASE_SCHEMA_VERSION", "Lease", "LeaseStore", "DEFAULT_BUSY_TIMEOUT_MS"]

#: Bumped whenever the table layout changes incompatibly.
LEASE_SCHEMA_VERSION = 1

#: Default wait (ms) for a competing worker's transaction to finish.
DEFAULT_BUSY_TIMEOUT_MS = 10_000

_TABLES = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL UNIQUE,
    spec TEXT,
    params TEXT,
    items INTEGER NOT NULL,
    chunksize INTEGER NOT NULL,
    chunks INTEGER NOT NULL,
    created REAL
);
CREATE TABLE IF NOT EXISTS chunks (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    idx INTEGER NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    fence INTEGER NOT NULL DEFAULT 0,
    owner TEXT,
    lease_expires REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    payload TEXT,
    committed_by TEXT,
    committed_fence INTEGER,
    completed REAL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE INDEX IF NOT EXISTS chunks_claimable
    ON chunks(campaign_id, state, lease_expires);
CREATE TABLE IF NOT EXISTS events (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL,
    ts REAL NOT NULL,
    worker TEXT,
    kind TEXT NOT NULL,
    idx INTEGER,
    fence INTEGER,
    detail TEXT
);
CREATE INDEX IF NOT EXISTS events_campaign ON events(campaign_id, id);
"""


@dataclass(frozen=True)
class Lease:
    """One granted chunk lease: *this fence* owns *this chunk* until
    *expires* (or until a heartbeat extends it)."""

    campaign_id: int
    index: int
    fence: int
    expires: float


def _row_to_dict(cursor: sqlite3.Cursor, row: tuple) -> dict[str, Any]:
    return {desc[0]: value for desc, value in zip(cursor.description, row)}


class LeaseStore:
    """Open (creating if needed) the lease store at ``path``.

    Each process (and each thread — sqlite connections are not shared
    across threads) opens its own :class:`LeaseStore` on the same
    path; SQLite's locking does the rest.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.conn = sqlite3.connect(str(self.path))
        self.conn.row_factory = _row_to_dict
        self.conn.execute("PRAGMA foreign_keys = ON")
        self.conn.execute("PRAGMA journal_mode=WAL")
        self.conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        self.conn.execute("PRAGMA synchronous = NORMAL")
        self._init_schema()

    def _init_schema(self) -> None:
        (row,) = self.conn.execute("PRAGMA user_version").fetchall()
        version = row["user_version"]
        if version > LEASE_SCHEMA_VERSION:
            raise ExperimentError(
                f"{self.path} uses lease-store schema v{version}, newer than "
                f"this build's v{LEASE_SCHEMA_VERSION}; upgrade the package"
            )
        self.conn.executescript(_TABLES)
        if version < LEASE_SCHEMA_VERSION:
            self.conn.execute(f"PRAGMA user_version = {LEASE_SCHEMA_VERSION}")
        self.conn.commit()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with contextlib.suppress(sqlite3.Error):
            self.conn.close()

    def __enter__(self) -> "LeaseStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @contextlib.contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One immediate (write-locked) transaction; commits or rolls back."""
        if not self.conn.in_transaction:
            self.conn.execute("BEGIN IMMEDIATE")
        try:
            yield self.conn
        except BaseException:
            self.conn.rollback()
            raise
        self.conn.commit()

    # -- campaigns ------------------------------------------------------

    def create_campaign(
        self,
        fingerprint: str,
        *,
        spec: str,
        params: dict[str, Any] | None,
        items: int,
        chunksize: int,
    ) -> int:
        """Register a campaign (idempotent) and seed its chunk rows.

        Re-registering the same fingerprint is a *resume*: the existing
        chunk states (done chunks, live leases) are kept, so a crashed
        coordinator restarts where the fabric left off.  A fingerprint
        collision with different geometry is a caller bug and raises.
        """
        if items < 0 or chunksize < 1:
            raise ExperimentError(
                f"invalid campaign geometry: items={items} chunksize={chunksize}"
            )
        num_chunks = -(-items // chunksize) if items else 0
        with self._txn() as conn:
            existing = conn.execute(
                "SELECT * FROM campaigns WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if existing is not None:
                if existing["items"] != items or existing["chunksize"] != chunksize:
                    raise ExperimentError(
                        f"campaign {fingerprint[:12]} already registered with "
                        f"different geometry (items {existing['items']} vs "
                        f"{items}, chunksize {existing['chunksize']} vs "
                        f"{chunksize}); refusing to resume"
                    )
                return int(existing["id"])
            cursor = conn.execute(
                "INSERT INTO campaigns"
                " (fingerprint, spec, params, items, chunksize, chunks, created)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    spec,
                    json.dumps(params or {}, sort_keys=True, default=repr),
                    items,
                    chunksize,
                    num_chunks,
                    time.time(),
                ),
            )
            campaign_id = int(cursor.lastrowid)
            conn.executemany(
                "INSERT INTO chunks (campaign_id, idx) VALUES (?, ?)",
                [(campaign_id, index) for index in range(num_chunks)],
            )
        return campaign_id

    def campaign(self, fingerprint: str) -> dict[str, Any] | None:
        row = self.conn.execute(
            "SELECT * FROM campaigns WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is not None and row["params"]:
            row["params"] = json.loads(row["params"])
        return row

    def campaign_by_id(self, campaign_id: int) -> dict[str, Any] | None:
        row = self.conn.execute(
            "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is not None and row["params"]:
            row["params"] = json.loads(row["params"])
        return row

    # -- leases ---------------------------------------------------------

    def claim(
        self, campaign_id: int, worker: str, *, ttl: float, now: float | None = None
    ) -> Lease | None:
        """Atomically claim the lowest claimable chunk, if any.

        Claimable: ``pending``, or ``leased`` with an expired lease
        (that grant is a **takeover** — the previous owner stopped
        heartbeating).  Every grant increments the chunk's fencing
        token.  Returns ``None`` when nothing is claimable right now
        (all done, or all leased and alive).
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            row = conn.execute(
                "SELECT idx, state, fence, owner FROM chunks"
                " WHERE campaign_id = ? AND (state = 'pending' OR"
                "   (state = 'leased' AND lease_expires < ?))"
                " ORDER BY idx LIMIT 1",
                (campaign_id, now),
            ).fetchone()
            if row is None:
                return None
            fence = int(row["fence"]) + 1
            expires = now + ttl
            conn.execute(
                "UPDATE chunks SET state = 'leased', fence = ?, owner = ?,"
                " lease_expires = ?, attempts = attempts + 1"
                " WHERE campaign_id = ? AND idx = ?",
                (fence, worker, expires, campaign_id, row["idx"]),
            )
            takeover = row["state"] == "leased"
            self._log(
                conn,
                campaign_id,
                worker,
                "takeover" if takeover else "claim",
                idx=row["idx"],
                fence=fence,
                detail=(f"expired lease of {row['owner']}" if takeover else None),
            )
            return Lease(campaign_id, int(row["idx"]), fence, expires)

    def heartbeat(
        self, lease: Lease, worker: str, *, ttl: float, now: float | None = None
    ) -> bool:
        """Extend a live lease; returns False when the fence is stale
        (the chunk was taken over or already committed) — the caller
        should stop wasting cycles on it."""
        now = time.time() if now is None else now
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE chunks SET lease_expires = ?"
                " WHERE campaign_id = ? AND idx = ? AND fence = ?"
                "   AND state = 'leased'",
                (now + ttl, lease.campaign_id, lease.index, lease.fence),
            )
            return cursor.rowcount == 1

    def commit(
        self,
        lease: Lease,
        worker: str,
        payload: str,
        *,
        now: float | None = None,
    ) -> bool:
        """Commit a completed chunk **iff** the lease's fence is current.

        This is the fencing guarantee: a worker that was presumed dead
        and superseded holds an old fence, so its late commit updates
        zero rows and is logged as ``fence_reject`` — the campaign's
        data can never be written under an expired fencing token.
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE chunks SET state = 'done', payload = ?,"
                " committed_by = ?, committed_fence = ?, completed = ?,"
                " owner = NULL, lease_expires = NULL"
                " WHERE campaign_id = ? AND idx = ? AND fence = ?"
                "   AND state = 'leased'",
                (
                    payload,
                    worker,
                    lease.fence,
                    now,
                    lease.campaign_id,
                    lease.index,
                    lease.fence,
                ),
            )
            accepted = cursor.rowcount == 1
            self._log(
                conn,
                lease.campaign_id,
                worker,
                "commit" if accepted else "fence_reject",
                idx=lease.index,
                fence=lease.fence,
                detail=None if accepted else "stale fence: lease was superseded",
            )
            return accepted

    # -- queries --------------------------------------------------------

    def chunk_state(self, campaign_id: int, index: int) -> dict[str, Any]:
        row = self.conn.execute(
            "SELECT * FROM chunks WHERE campaign_id = ? AND idx = ?",
            (campaign_id, index),
        ).fetchone()
        if row is None:
            raise ExperimentError(
                f"campaign {campaign_id} has no chunk {index}"
            )
        return row

    def counts(self, campaign_id: int) -> dict[str, int]:
        """Chunk-state histogram, e.g. ``{'pending': 2, 'done': 10}``."""
        rows = self.conn.execute(
            "SELECT state, COUNT(*) AS n FROM chunks WHERE campaign_id = ?"
            " GROUP BY state",
            (campaign_id,),
        ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    def all_done(self, campaign_id: int) -> bool:
        row = self.conn.execute(
            "SELECT COUNT(*) AS n FROM chunks"
            " WHERE campaign_id = ? AND state != 'done'",
            (campaign_id,),
        ).fetchone()
        return int(row["n"]) == 0

    def completed_payloads(self, campaign_id: int) -> dict[int, str]:
        rows = self.conn.execute(
            "SELECT idx, payload FROM chunks"
            " WHERE campaign_id = ? AND state = 'done' ORDER BY idx",
            (campaign_id,),
        ).fetchall()
        return {int(row["idx"]): row["payload"] for row in rows}

    # -- event log ------------------------------------------------------

    def _log(
        self,
        conn: sqlite3.Connection,
        campaign_id: int,
        worker: str | None,
        kind: str,
        *,
        idx: int | None = None,
        fence: int | None = None,
        detail: str | None = None,
    ) -> None:
        conn.execute(
            "INSERT INTO events (campaign_id, ts, worker, kind, idx, fence, detail)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (campaign_id, time.time(), worker, kind, idx, fence, detail),
        )

    def log_worker_event(
        self,
        campaign_id: int,
        worker: str,
        kind: str,
        *,
        idx: int | None = None,
        fence: int | None = None,
        detail: str | None = None,
    ) -> None:
        """Record a worker lifecycle/fault event (own transaction)."""
        with self._txn() as conn:
            self._log(
                conn, campaign_id, worker, kind, idx=idx, fence=fence, detail=detail
            )

    def events(
        self, campaign_id: int, *, after_id: int = 0
    ) -> list[dict[str, Any]]:
        """All events (optionally only those newer than ``after_id``)."""
        return self.conn.execute(
            "SELECT * FROM events WHERE campaign_id = ? AND id > ? ORDER BY id",
            (campaign_id, after_id),
        ).fetchall()
