"""The fabric worker loop: claim → heartbeat → compute → fenced commit.

One worker is one OS process (``python -m repro fabric worker``).  It
rebuilds the campaign's ``(fn, items)`` from the spec registry, then
loops: claim a chunk lease from the shared store, heartbeat from a
background thread while computing, and commit the encoded results
under the lease's fencing token.  Everything that can kill it —
``kill -9``, stalls past the lease, store partitions — is survivable
by construction: the lease expires, a peer takes the chunk over, and
the fencing token guarantees the resurrected worker's late commit is
rejected rather than spliced.

Graceful drain: SIGTERM sets a flag; the worker finishes (and
commits) the chunk in flight, then exits 0 without claiming another.

Fault-plan hooks (:mod:`repro.fabric.faultplan`) fire at deterministic
points — addressed by the worker's *claim ordinal*, not wall time — so
chaos runs are replayable:

* ``kill``      — SIGKILL self right after claiming (lease dies with us);
* ``stall``     — sleep mid-chunk with heartbeats suppressed;
* ``stale``     — compute, then *wait to be superseded* before
  attempting the commit: the canonical fencing-token test;
* ``partition`` — a window in which no store traffic happens
  (heartbeats suppressed, commit deferred past the window).
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError
from repro.fabric.faultplan import FaultAction, FaultPlan
from repro.fabric.specs import resolve_spec
from repro.fabric.splice import encode_chunk, make_chunks
from repro.fabric.store import Lease, LeaseStore
from repro.fleet.metrics import MetricsRegistry, get_registry, set_registry
from repro.fleet.metrics import counter as metric_count
from repro.fleet.metrics import gauge as metric_gauge
from repro.fleet.metrics import observe as metric_observe
from repro.fleet.tracectx import TraceContext
from repro.parallel import backoff_delay
from repro.perf import core as perf_core
from repro.rng import derive_seed
from repro.telemetry import get_active

__all__ = ["WorkerConfig", "run_worker"]

logger = logging.getLogger("repro.fabric.worker")


@dataclass
class WorkerConfig:
    """Everything one worker process needs (all CLI-expressible)."""

    store: str | os.PathLike[str]
    campaign: str  # campaign fingerprint in the lease store
    worker_id: str
    lease_ttl: float = 5.0
    poll_interval: float = 0.1
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    heartbeat_interval: float | None = None  # default: lease_ttl / 3
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    stale_timeout: float = 30.0
    campaign_wait: float = 10.0
    install_signal_handler: bool = True
    #: Per-worker telemetry log (the coordinator points each worker at
    #: ``<store>.<worker>.telemetry.jsonl`` when fleet mode is on).
    telemetry: str | os.PathLike[str] | None = None

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ExperimentError(f"lease_ttl must be positive, got {self.lease_ttl}")


class _Heartbeat(threading.Thread):
    """Extends one lease periodically from its own store connection.

    ``suppress_until`` simulates a worker that stopped talking to the
    store (stall / partition faults): heartbeats are skipped until the
    deadline passes, letting the lease expire while the worker is, in
    fact, alive — exactly the condition fencing tokens exist for.
    """

    def __init__(
        self,
        store_path: Path,
        lease: Lease,
        worker_id: str,
        *,
        interval: float,
        ttl: float,
    ) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{worker_id}-c{lease.index}")
        self._store_path = store_path
        self._lease = lease
        self._worker_id = worker_id
        self._interval = interval
        self._ttl = ttl
        self._halt = threading.Event()
        self.suppress_until = 0.0
        self.lost = False  # fence went stale under us

    def run(self) -> None:
        try:
            store = LeaseStore(self._store_path)
        except Exception:  # pragma: no cover - store vanished mid-run
            return
        try:
            last_tick = time.monotonic()
            while not self._halt.wait(self._interval):
                # Scheduling lag: how far past the intended interval this
                # tick fired.  A loaded host shows up here long before it
                # shows up as an expired lease.
                now = time.monotonic()
                metric_observe(
                    "heartbeat_lag_seconds",
                    max(0.0, now - last_tick - self._interval),
                    worker=self._worker_id,
                )
                last_tick = now
                if time.time() < self.suppress_until:
                    continue
                try:
                    alive = store.heartbeat(
                        self._lease, self._worker_id, ttl=self._ttl
                    )
                except Exception:  # transient lock/partition trouble
                    continue
                if not alive:
                    self.lost = True
                    return
        finally:
            store.close()

    def stop(self) -> None:
        self._halt.set()


def _fault(actions: list[FaultAction], kind: str) -> FaultAction | None:
    for action in actions:
        if action.kind == kind:
            return action
    return None


def run_worker(config: WorkerConfig) -> int:
    """Run one worker until the campaign is done (or drained).  Returns
    a process exit code (0 = clean)."""
    drain = threading.Event()
    if config.install_signal_handler:
        try:
            signal.signal(signal.SIGTERM, lambda *_: drain.set())
        except ValueError:  # not the main thread (in-process embedding)
            pass

    store = LeaseStore(config.store)
    deadline = time.monotonic() + config.campaign_wait
    campaign = store.campaign(config.campaign)
    while campaign is None and time.monotonic() < deadline:
        time.sleep(config.poll_interval)
        campaign = store.campaign(config.campaign)
    if campaign is None:
        logger.error(
            "worker %s: no campaign %s in %s",
            config.worker_id,
            config.campaign[:12],
            config.store,
        )
        return 2

    campaign_id = int(campaign["id"])
    spec = resolve_spec(campaign["spec"], campaign["params"])
    chunks = make_chunks(spec.items, int(campaign["chunksize"]))
    if len(chunks) != int(campaign["chunks"]):
        raise ExperimentError(
            f"worker {config.worker_id}: spec resolves to {len(chunks)} chunks "
            f"but the store registered {campaign['chunks']} — spec and store "
            "disagree about the campaign"
        )
    heartbeat_interval = (
        config.heartbeat_interval
        if config.heartbeat_interval is not None
        else config.lease_ttl / 3.0
    )
    my_plan = config.fault_plan.for_worker(config.worker_id)
    jitter_stream = derive_seed(0, "fabric-idle", config.worker_id) % (2**31)

    # Fleet wiring: adopt the coordinator's trace (propagated through
    # the environment) and make sure a metrics registry is ambient, so
    # the instrumentation below lands somewhere.  Both are strict
    # no-ops when this worker runs without telemetry.
    recorder = get_active()
    own_registry: MetricsRegistry | None = None
    if recorder is not None:
        if recorder.trace is None:
            context = TraceContext.from_env(f"worker:{config.worker_id}")
            if context is not None:
                recorder.set_trace(context)
        if get_registry() is None:
            own_registry = MetricsRegistry()
            set_registry(own_registry)

    # Performance plane: the coordinator propagates REPRO_PERF=<hz>
    # when sampling is on, so each worker profiles itself for its whole
    # lifetime under a "fabric.worker:<id>" span; the perf records land
    # in the worker's own telemetry log on exit, tagged with the worker
    # id, and the obs layer aggregates them like any other record.
    perf_session = None
    perf_hz = perf_core.hz_from_env()
    if perf_hz is not None and perf_core.get_active() is None:
        perf_session = perf_core.PerfSession(
            perf_hz, memory=True, tag=f"worker:{config.worker_id}"
        )
        perf_core.set_active(perf_session)
        perf_session.start()
        perf_session.span_push(f"fabric.worker:{config.worker_id}")

    store.log_worker_event(
        campaign_id, config.worker_id, "worker_start", detail=f"pid={os.getpid()}"
    )
    if recorder is not None:
        recorder.emit(
            "worker",
            worker=config.worker_id,
            event="worker_start",
            pid=os.getpid(),
            campaign=config.campaign[:16],
        )
    ordinal = 0  # chunks claimed by THIS worker (fault-plan address)
    committed = 0
    idle_attempts = 0
    exit_reason = "done"
    try:
        while True:
            if drain.is_set():
                exit_reason = "drained"
                break
            if store.all_done(campaign_id):
                break
            lease = store.claim(
                campaign_id, config.worker_id, ttl=config.lease_ttl
            )
            if lease is None:
                # Nothing claimable: peers hold live leases.  Back off
                # with seeded jitter and re-poll (they may yet die).
                idle_attempts += 1
                delay = min(
                    config.backoff_cap,
                    backoff_delay(
                        config.backoff_base, idle_attempts, chunk_index=jitter_stream
                    ),
                )
                time.sleep(max(config.poll_interval, delay))
                continue
            idle_attempts = 0
            metric_count("claim_total", worker=config.worker_id)
            metric_gauge("leases_held", 1.0, worker=config.worker_id)
            actions = my_plan.at(config.worker_id, ordinal)
            ordinal += 1
            if _fault(actions, "kill") is not None:
                store.log_worker_event(
                    campaign_id,
                    config.worker_id,
                    "fault",
                    idx=lease.index,
                    fence=lease.fence,
                    detail="kill",
                )
                os.kill(os.getpid(), signal.SIGKILL)  # never returns

            heartbeat = _Heartbeat(
                Path(config.store),
                lease,
                config.worker_id,
                interval=heartbeat_interval,
                ttl=config.lease_ttl,
            )
            heartbeat.start()
            try:
                partition = _fault(actions, "partition")
                if partition is not None:
                    heartbeat.suppress_until = time.time() + partition.duration
                    store.log_worker_event(
                        campaign_id,
                        config.worker_id,
                        "fault",
                        idx=lease.index,
                        fence=lease.fence,
                        detail=f"partition {partition.duration:g}s",
                    )
                stall = _fault(actions, "stall")
                if stall is not None:
                    store.log_worker_event(
                        campaign_id,
                        config.worker_id,
                        "fault",
                        idx=lease.index,
                        fence=lease.fence,
                        detail=f"stall {stall.duration:g}s",
                    )
                    heartbeat.suppress_until = time.time() + stall.duration
                    time.sleep(stall.duration)

                chunk_started = time.perf_counter()
                perf_core.span_push("fabric.chunk")
                try:
                    results = [spec.fn(item) for item in chunks[lease.index]]
                finally:
                    perf_core.span_pop()
                payload = encode_chunk(results)
                chunk_wall = time.perf_counter() - chunk_started

                stale = _fault(actions, "stale")
                if stale is not None:
                    # The canonical fencing drill: stop heartbeating,
                    # wait until someone supersedes our lease, and only
                    # then attempt the commit.  The store MUST reject it.
                    heartbeat.stop()
                    store.log_worker_event(
                        campaign_id,
                        config.worker_id,
                        "fault",
                        idx=lease.index,
                        fence=lease.fence,
                        detail="stale-commit: waiting to be superseded",
                    )
                    stale_deadline = time.monotonic() + config.stale_timeout
                    while time.monotonic() < stale_deadline and not drain.is_set():
                        current = store.chunk_state(campaign_id, lease.index)
                        if int(current["fence"]) > lease.fence:
                            break
                        time.sleep(config.poll_interval)
                if partition is not None:
                    # No store traffic until the partition heals.
                    remaining = heartbeat.suppress_until - time.time()
                    if remaining > 0:
                        time.sleep(remaining)

                accepted = store.commit(lease, config.worker_id, payload)
                metric_gauge("leases_held", 0.0, worker=config.worker_id)
                metric_observe("chunk_seconds", chunk_wall, worker=config.worker_id)
                if accepted:
                    committed += 1
                    metric_count("commit_total", worker=config.worker_id)
                    metric_count(
                        "splice_bytes_total",
                        float(len(payload)),
                        worker=config.worker_id,
                    )
                    if chunk_wall > 0:
                        metric_gauge(
                            "slots_per_second",
                            len(chunks[lease.index]) / chunk_wall,
                            worker=config.worker_id,
                        )
                else:
                    metric_count("fence_reject_total", worker=config.worker_id)
                    logger.warning(
                        "worker %s: commit of chunk %d rejected (stale fence %d)",
                        config.worker_id,
                        lease.index,
                        lease.fence,
                    )
                if recorder is not None:
                    recorder.emit(
                        "chunk",
                        index=lease.index,
                        size=len(chunks[lease.index]),
                        wall_s=chunk_wall,
                        worker=config.worker_id,
                        fence=lease.fence,
                        accepted=accepted,
                        bytes=len(payload),
                    )
            finally:
                heartbeat.stop()
                heartbeat.join(timeout=2.0)
    finally:
        store.log_worker_event(
            campaign_id,
            config.worker_id,
            "worker_exit",
            detail=f"{exit_reason}, committed={committed}",
        )
        if perf_session is not None:
            perf_session.span_pop()
            perf_session.stop()
            perf_core.set_active(None)
            if recorder is not None:
                perf_session.emit(recorder, worker=config.worker_id)
        if recorder is not None:
            recorder.emit(
                "worker",
                worker=config.worker_id,
                event="worker_exit",
                detail=f"{exit_reason}, committed={committed}",
            )
            if own_registry is not None:
                own_registry.emit(recorder, worker=config.worker_id)
        if own_registry is not None:
            set_registry(None)
        store.close()
    return 0


def worker_argv(config: WorkerConfig) -> list[str]:
    """The ``python -m repro fabric worker`` argv for this config."""
    import sys

    argv = [
        sys.executable,
        "-m",
        "repro",
        "fabric",
        "worker",
        "--store",
        str(config.store),
        "--campaign",
        config.campaign,
        "--worker-id",
        config.worker_id,
        "--lease-ttl",
        str(config.lease_ttl),
        "--poll-interval",
        str(config.poll_interval),
        "--stale-timeout",
        str(config.stale_timeout),
    ]
    if config.telemetry is not None:
        argv += ["--telemetry", str(config.telemetry)]
    plan = config.fault_plan.for_worker(config.worker_id)
    if plan:
        argv += ["--fault-plan-json", plan.to_json()]
    return argv
