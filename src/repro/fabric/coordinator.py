"""The fabric coordinator: register the campaign, run the workers,
splice the survivors' commits.

``run_fabric`` is what ``python -m repro fabric run`` executes: it pins
the campaign (spec + params → fingerprint + chunk geometry) in the
lease store, launches N worker subprocesses (``python -m repro fabric
worker``), then supervises — draining the store's event log into
telemetry as it goes — until every chunk is committed.  Dead workers
are simply reaped: their leases expire and the survivors take the
chunks over.  If *every* worker dies with chunks still open (a fault
plan can arrange that), the coordinator degrades to running the worker
loop in-process, so the campaign still completes.

The splice is byte-identical to a serial run by construction: chunk
payloads are ``base64(pickle(results))`` of deterministic functions of
the chunk items, reassembled in index order.  With ``journal=`` the
coordinator also writes a :class:`repro.parallel.CampaignJournal` from
the committed payloads — the same bytes ``resilient_map`` would have
journaled, so pool and fabric checkpoints are interchangeable.

SIGTERM drains gracefully: workers get SIGTERM (finish the chunk in
flight, then exit), and the coordinator raises instead of returning a
partial splice.
"""

from __future__ import annotations

import logging
import os
import signal
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro
from repro.errors import ExperimentError
from repro.fabric.faultplan import FaultPlan
from repro.fabric.specs import FabricSpec, resolve_spec
from repro.fabric.splice import (
    campaign_fingerprint,
    decode_chunk,
    default_chunksize,
    make_chunks,
    splice,
)
from repro.fabric.store import LeaseStore
from repro.fabric.worker import WorkerConfig, run_worker, worker_argv
from repro.fleet.board import store_event_record
from repro.fleet.metrics import MetricsRegistry, get_registry, set_registry
from repro.fleet.metrics import counter as metric_count
from repro.fleet.metrics import gauge as metric_gauge
from repro.fleet.tracectx import TraceContext
from repro.perf import core as perf_core
from repro.telemetry import get_active

__all__ = ["FabricConfig", "FabricResult", "run_fabric"]

logger = logging.getLogger("repro.fabric.coordinator")

#: Store event kinds forwarded to telemetry as ``lease`` records.
_LEASE_EVENT_KINDS = frozenset({"claim", "takeover", "commit", "fence_reject"})


@dataclass
class FabricConfig:
    """One fabric campaign: what to run, with how many workers, and
    which harness faults to inject while it runs."""

    spec: str
    params: dict[str, Any] = field(default_factory=dict)
    store: str | os.PathLike[str] = "fabric.db"
    workers: int = 3
    chunksize: int | None = None
    lease_ttl: float = 5.0
    poll_interval: float = 0.1
    stale_timeout: float = 30.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    journal: str | os.PathLike[str] | None = None
    #: Overall campaign deadline (seconds); exceeded ⇒ terminate + raise.
    timeout: float = 300.0
    #: Capture each worker's stderr/stdout to ``<store>.<worker>.log``.
    capture_logs: bool = True
    install_signal_handler: bool = True
    #: Give each worker its own telemetry log
    #: (``<store>.<worker>.telemetry.jsonl``), stamped with the
    #: campaign's trace context — the fleet-mode input for the merged
    #: Chrome trace and the autopsy cross-check.
    worker_telemetry: bool = False
    #: Write the coordinator registry's Prometheus text exposition here
    #: after the campaign.
    prom: str | os.PathLike[str] | None = None
    #: Serve a :mod:`repro.tower` gateway for the campaign's lifetime on
    #: this port (0 = ephemeral).  The tower bridges the coordinator's
    #: recorder bus and tail-follows every worker telemetry log, so the
    #: campaign is watchable live (SSE, Prometheus, dashboard) from any
    #: other process.  ``None`` = no tower.
    tower_port: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ExperimentError(f"workers must be >= 0, got {self.workers}")


@dataclass
class FabricResult:
    """What a completed fabric campaign produced, and how it got there."""

    results: list[Any]
    fingerprint: str
    chunks: int
    chunksize: int
    workers: list[str]
    wall_s: float
    takeovers: int
    fence_rejects: int
    worker_exits: dict[str, int | None]
    events: list[dict[str, Any]]
    journal: Path | None = None
    trace_id: str | None = None
    worker_logs: dict[str, Path] = field(default_factory=dict)
    prom: Path | None = None
    tower_port: int | None = None

    def summary(self) -> str:
        return (
            f"fabric campaign {self.fingerprint[:12]}: {self.chunks} chunks "
            f"spliced from {len(self.workers)} worker(s) in {self.wall_s:.1f}s "
            f"(takeovers={self.takeovers}, fence_rejects={self.fence_rejects})"
        )


def _worker_ids(count: int) -> list[str]:
    return [f"w{index}" for index in range(count)]


def _child_env() -> dict[str, str]:
    """Worker subprocess env with this checkout importable."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


def _forward_events(
    store: LeaseStore, campaign_id: int, after_id: int
) -> tuple[int, list[dict[str, Any]]]:
    """Drain new store events; mirror them into active telemetry and
    count lease transitions in the ambient metrics registry."""
    fresh = store.events(campaign_id, after_id=after_id)
    recorder = get_active()
    for event in fresh:
        after_id = max(after_id, int(event["id"]))
        if event["kind"] in _LEASE_EVENT_KINDS:
            metric_count(f"{event['kind']}_total", worker=str(event["worker"] or ""))
        if recorder is None:
            continue
        # One shared translation (the fleet board uses the same one),
        # so the live view and the forwarded log can never drift.
        record = store_event_record(event)
        kind = record.pop("kind")
        record["store_ts"] = record.pop("ts")
        recorder.emit(kind, **record)
    return after_id, fresh


def run_fabric(config: FabricConfig) -> FabricResult:
    """Run one campaign across worker subprocesses; return the splice."""
    started = time.perf_counter()
    spec: FabricSpec = resolve_spec(config.spec, config.params)
    fingerprint = campaign_fingerprint(spec.fn, spec.items)
    chunksize = config.chunksize or default_chunksize(
        len(spec.items), max(1, config.workers)
    )
    num_chunks = len(make_chunks(spec.items, chunksize))
    worker_ids = _worker_ids(config.workers)

    planned = config.fault_plan.faulted_workers()
    unknown = planned - set(worker_ids)
    if unknown:
        raise ExperimentError(
            f"fault plan targets unknown worker(s) {sorted(unknown)}; "
            f"this fabric runs {worker_ids or ['<in-process only>']}"
        )

    store_path = Path(config.store)
    store = LeaseStore(store_path)
    campaign_id = store.create_campaign(
        fingerprint,
        spec=config.spec,
        params=config.params,
        items=len(spec.items),
        chunksize=chunksize,
    )

    # Fleet wiring: one campaign = one trace, rooted at the coordinator
    # and propagated to every worker through the environment; counters
    # for the store's audit events accumulate in an ambient registry.
    # All of it is inert when telemetry is off.
    recorder = get_active()
    trace = TraceContext.root(fingerprint)
    trace_installed = False
    previous_trace: Any = None
    own_registry: MetricsRegistry | None = None
    if recorder is not None:
        if recorder.trace is None:
            previous_trace = recorder.set_trace(trace)
            trace_installed = True
        if get_registry() is None:
            own_registry = MetricsRegistry()
            set_registry(own_registry)
    if recorder is not None:
        recorder.emit(
            "fabric_begin",
            spec=config.spec,
            workers=config.workers,
            chunks=num_chunks,
            chunksize=chunksize,
            fingerprint=fingerprint,
            fault_plan=config.fault_plan.spec() or None,
        )

    # Live observability gateway: serves this campaign's bus + worker
    # logs over HTTP for the duration of the run.  The bound port lands
    # in <store>.tower.port so other processes can discover it.
    tower_thread = None
    tower_port: int | None = None
    if config.tower_port is not None:
        from repro.tower import TowerConfig, TowerThread

        tower_thread = TowerThread(
            TowerConfig(
                port=config.tower_port,
                recorder=recorder,
                follow=[store_path.parent],
                follow_pattern=f"{store_path.name}.*.telemetry.jsonl",
                port_file=store_path.with_name(f"{store_path.name}.tower.port"),
            )
        )
        tower_port = tower_thread.start()
        logger.info(
            "fabric tower serving campaign at http://127.0.0.1:%d", tower_port
        )

    drain = threading.Event()
    if config.install_signal_handler:
        try:
            signal.signal(signal.SIGTERM, lambda *_: drain.set())
        except ValueError:  # not the main thread
            pass

    procs: dict[str, subprocess.Popen] = {}
    log_handles: list[Any] = []
    exits: dict[str, int | None] = {}
    worker_logs: dict[str, Path] = {}
    env = _child_env()
    trace.to_env(env)
    # Performance plane: a session activated programmatically (not via
    # the CLI's REPRO_PERF env save/restore) still reaches the workers —
    # each samples itself and ships perf records via its telemetry log.
    perf_session = perf_core.get_active()
    if perf_session is not None:
        perf_session.to_env(env)
    for worker_id in worker_ids:
        worker_config = WorkerConfig(
            store=store_path,
            campaign=fingerprint,
            worker_id=worker_id,
            lease_ttl=config.lease_ttl,
            poll_interval=config.poll_interval,
            fault_plan=config.fault_plan,
            stale_timeout=config.stale_timeout,
        )
        if config.worker_telemetry:
            worker_config.telemetry = store_path.with_name(
                f"{store_path.name}.{worker_id}.telemetry.jsonl"
            )
            worker_logs[worker_id] = Path(worker_config.telemetry)
        if config.capture_logs:
            handle = store_path.with_name(
                f"{store_path.name}.{worker_id}.log"
            ).open("w", encoding="utf-8")
            log_handles.append(handle)
        else:
            handle = subprocess.DEVNULL
        procs[worker_id] = subprocess.Popen(
            worker_argv(worker_config),
            env=env,
            stdout=handle,
            stderr=subprocess.STDOUT,
        )

    after_id = 0
    events: list[dict[str, Any]] = []
    deadline = time.monotonic() + config.timeout
    fallback_ran = False
    try:
        while True:
            after_id, fresh = _forward_events(store, campaign_id, after_id)
            events.extend(fresh)
            if store.all_done(campaign_id):
                break
            if drain.is_set():
                for proc in procs.values():
                    if proc.poll() is None:
                        proc.terminate()
                raise ExperimentError(
                    "fabric drained (SIGTERM) before the campaign completed; "
                    f"chunk states: {store.counts(campaign_id)}"
                )
            if time.monotonic() > deadline:
                raise ExperimentError(
                    f"fabric campaign exceeded its {config.timeout:g}s "
                    f"deadline; chunk states: {store.counts(campaign_id)}"
                )
            for worker_id, proc in procs.items():
                code = proc.poll()
                if code is not None and worker_id not in exits:
                    exits[worker_id] = code
                    logger.info("fabric worker %s exited with %d", worker_id, code)
            live = [w for w, p in procs.items() if p.poll() is None]
            metric_gauge("workers_live", float(len(live)))
            metric_gauge(
                "chunks_committed",
                float(sum(1 for e in events if e["kind"] == "commit")),
            )
            if not live and not store.all_done(campaign_id):
                # Every subprocess is gone with work still open.  The
                # campaign must still finish: run the worker loop right
                # here (no faults — the plan addressed the dead ones).
                logger.warning(
                    "all %d fabric worker(s) exited with chunks open; "
                    "finishing in-process",
                    len(procs) or 0,
                )
                fallback_ran = True
                run_worker(
                    WorkerConfig(
                        store=store_path,
                        campaign=fingerprint,
                        worker_id="coordinator",
                        lease_ttl=config.lease_ttl,
                        poll_interval=config.poll_interval,
                        install_signal_handler=False,
                    )
                )
                continue
            time.sleep(config.poll_interval)

        # Campaign complete: drain the stragglers (they also notice
        # all_done on their own) and collect exit codes.
        for worker_id, proc in procs.items():
            if proc.poll() is None:
                proc.terminate()
        for worker_id, proc in procs.items():
            try:
                exits[worker_id] = proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                exits[worker_id] = proc.wait()
        after_id, fresh = _forward_events(store, campaign_id, after_id)
        events.extend(fresh)

        payloads = store.completed_payloads(campaign_id)
        chunk_results = {
            index: decode_chunk(payload) for index, payload in payloads.items()
        }
        results = splice(
            num_chunks, chunk_results, where=f"fabric campaign {fingerprint[:12]}"
        )

        journal_path: Path | None = None
        if config.journal is not None:
            # Replay the commits through the pool's journal writer so
            # the file is byte-identical to a resilient_map checkpoint.
            from repro.parallel import CampaignJournal

            journal = CampaignJournal(config.journal)
            journal.start(fingerprint, len(spec.items), chunksize, resume=False)
            for index in range(num_chunks):
                journal.record_chunk(index, chunk_results[index])
            journal_path = journal.path

        takeovers = sum(1 for e in events if e["kind"] == "takeover")
        fence_rejects = sum(1 for e in events if e["kind"] == "fence_reject")
        wall_s = time.perf_counter() - started
        if recorder is not None:
            recorder.emit(
                "fabric_end",
                chunks=num_chunks,
                wall_s=wall_s,
                takeovers=takeovers,
                fence_rejects=fence_rejects,
                fallback=fallback_ran,
            )
        prom_path: Path | None = None
        registry = get_registry()
        if registry is not None:
            metric_gauge("chunks_committed", float(num_chunks))
            registry.emit(recorder)
            if config.prom is not None:
                registry.write_prometheus(config.prom)
                prom_path = Path(config.prom)
        return FabricResult(
            results=results,
            fingerprint=fingerprint,
            chunks=num_chunks,
            chunksize=chunksize,
            workers=worker_ids + (["coordinator"] if fallback_ran else []),
            wall_s=wall_s,
            takeovers=takeovers,
            fence_rejects=fence_rejects,
            worker_exits=exits,
            events=events,
            journal=journal_path,
            trace_id=trace.trace_id,
            worker_logs=worker_logs,
            prom=prom_path,
            tower_port=tower_port,
        )
    finally:
        if tower_thread is not None:
            # Drain before teardown: attached SSE clients get the
            # campaign's final records and an eof frame, not a reset.
            tower_thread.stop()
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
        for handle in log_handles:
            handle.close()
        if own_registry is not None:
            set_registry(None)
        if trace_installed and recorder is not None:
            recorder.set_trace(previous_trace)
        store.close()
