"""Seed-driven fault plans applied to *real* fabric worker processes.

:mod:`repro.chaos` injects faults into the simulated radio network;
this module injects them into the harness itself.  A plan is a set of
deterministic actions addressed by ``(worker id, chunk ordinal)`` —
the ordinal counts the chunks *that worker* has claimed, so the plan
is reproducible without wall-clock coordination however the chunk race
turns out.

Grammar (one action per comma-separated term)::

    kill@w1#0            worker w1 SIGKILLs itself (-9) at the start of
                         computing its 1st claimed chunk
    stall@w0#2=3.0       worker w0 stalls 3.0s mid-chunk with
                         heartbeats suppressed (lease expires; a live
                         worker takes the chunk over)
    stale@w2#1           worker w2 computes its 2nd chunk, then holds
                         the result until the chunk is taken over and
                         only then attempts the commit — which the
                         fencing token must reject
    partition@w1#0=2.0   worker w1 loses the store for 2.0s while
                         computing (heartbeats fail silently); the
                         chunk commit lands only if the fence survived

``FaultPlan.random(seed, workers)`` draws a plan from a master seed
via the repo's tagged seed-splitting (:mod:`repro.rng`), so a chaos
run is replayable from its seed alone.  Plans serialize to JSON to
cross the coordinator → worker process boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.rng import spawn

__all__ = ["FaultAction", "FaultPlan", "ACTION_KINDS"]

ACTION_KINDS = ("kill", "stall", "stale", "partition")

#: Actions whose grammar takes a ``=duration`` argument.
_TIMED = {"stall", "partition"}

#: Default duration (seconds) when a timed action omits ``=``.
_DEFAULT_DURATION = 2.0


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: *kind* hits *worker* at chunk *ordinal*."""

    kind: str
    worker: str
    ordinal: int
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(ACTION_KINDS)}"
            )
        if self.ordinal < 0:
            raise ExperimentError(f"chunk ordinal must be >= 0, got {self.ordinal}")
        if self.duration < 0:
            raise ExperimentError(f"duration must be >= 0, got {self.duration}")

    def spec(self) -> str:
        """The grammar term for this action (inverse of parsing)."""
        base = f"{self.kind}@{self.worker}#{self.ordinal}"
        if self.kind in _TIMED:
            return f"{base}={self.duration:g}"
        return base


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of harness faults for one campaign."""

    actions: tuple[FaultAction, ...] = field(default_factory=tuple)

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the comma-separated grammar (see module docs)."""
        actions: list[FaultAction] = []
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            try:
                kind, rest = term.split("@", 1)
            except ValueError:
                raise ExperimentError(
                    f"fault term {term!r} is missing '@worker' "
                    "(expected e.g. 'kill@w1#0')"
                ) from None
            duration = _DEFAULT_DURATION if kind.strip() in _TIMED else 0.0
            if "=" in rest:
                rest, raw_duration = rest.rsplit("=", 1)
                try:
                    duration = float(raw_duration)
                except ValueError:
                    raise ExperimentError(
                        f"fault term {term!r} has a non-numeric duration "
                        f"{raw_duration!r}"
                    ) from None
            if "#" in rest:
                worker, raw_ordinal = rest.rsplit("#", 1)
                try:
                    ordinal = int(raw_ordinal)
                except ValueError:
                    raise ExperimentError(
                        f"fault term {term!r} has a non-integer chunk "
                        f"ordinal {raw_ordinal!r}"
                    ) from None
            else:
                worker, ordinal = rest, 0
            if not worker:
                raise ExperimentError(f"fault term {term!r} has an empty worker id")
            actions.append(
                FaultAction(kind.strip(), worker.strip(), ordinal, duration)
            )
        return cls(tuple(actions))

    @classmethod
    def random(
        cls,
        seed: int,
        workers: list[str],
        *,
        kills: int = 1,
        stalls: int = 1,
        stales: int = 1,
        partitions: int = 0,
        max_ordinal: int = 2,
        stall_duration: float = 2.0,
        partition_duration: float = 2.0,
    ) -> "FaultPlan":
        """Draw a plan from a master seed (replayable, order-stable).

        Fault targets are drawn without replacement per fault kind, so
        asking for ``kills=1, stalls=1`` on three workers hits two
        *distinct* workers whenever possible — a single run can then
        demonstrate kill takeover and stall takeover at once while at
        least one worker stays healthy enough to do the taking over.
        """
        if not workers:
            raise ExperimentError("FaultPlan.random needs at least one worker id")
        rng = spawn(seed, "fabric-faultplan")
        actions: list[FaultAction] = []
        pool = list(workers)
        rng.shuffle(pool)
        cursor = 0

        def next_worker() -> str:
            nonlocal cursor
            worker = pool[cursor % len(pool)]
            cursor += 1
            return worker

        for _ in range(kills):
            actions.append(
                FaultAction("kill", next_worker(), rng.randrange(0, max_ordinal + 1))
            )
        for _ in range(stalls):
            actions.append(
                FaultAction(
                    "stall",
                    next_worker(),
                    rng.randrange(0, max_ordinal + 1),
                    stall_duration,
                )
            )
        for _ in range(stales):
            actions.append(
                FaultAction("stale", next_worker(), rng.randrange(0, max_ordinal + 1))
            )
        for _ in range(partitions):
            actions.append(
                FaultAction(
                    "partition",
                    next_worker(),
                    rng.randrange(0, max_ordinal + 1),
                    partition_duration,
                )
            )
        return cls(tuple(actions))

    # -- queries --------------------------------------------------------

    def for_worker(self, worker: str) -> "FaultPlan":
        """The sub-plan a single worker needs to carry."""
        return FaultPlan(
            tuple(action for action in self.actions if action.worker == worker)
        )

    def at(self, worker: str, ordinal: int) -> list[FaultAction]:
        """Actions that fire when ``worker`` claims its ``ordinal``-th chunk."""
        return [
            action
            for action in self.actions
            if action.worker == worker and action.ordinal == ordinal
        ]

    def count(self, kind: str) -> int:
        return sum(1 for action in self.actions if action.kind == kind)

    def faulted_workers(self, *kinds: str) -> set[str]:
        """Workers hit by any action (optionally restricted to kinds)."""
        wanted = set(kinds) if kinds else set(ACTION_KINDS)
        return {a.worker for a in self.actions if a.kind in wanted}

    def __bool__(self) -> bool:
        return bool(self.actions)

    # -- serialisation --------------------------------------------------

    def spec(self) -> str:
        """The grammar string for the whole plan."""
        return ",".join(action.spec() for action in self.actions)

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "kind": a.kind,
                    "worker": a.worker,
                    "ordinal": a.ordinal,
                    "duration": a.duration,
                }
                for a in self.actions
            ]
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw: Any = json.loads(text)
            return cls(
                tuple(
                    FaultAction(
                        entry["kind"],
                        entry["worker"],
                        int(entry["ordinal"]),
                        float(entry.get("duration", 0.0)),
                    )
                    for entry in raw
                )
            )
        except ExperimentError:
            raise
        except Exception as exc:
            raise ExperimentError(f"invalid fault-plan JSON: {exc}") from exc
