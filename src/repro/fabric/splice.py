"""Chunk geometry, payload encoding, and the byte-identical splice.

This is the shared vocabulary between the single-host pool
(:mod:`repro.parallel`) and the multi-worker fabric
(:mod:`repro.fabric`): both cut a campaign's item list into the same
contiguous chunks, encode completed chunk results the same way, and
reassemble ("splice") them into the final result list in index order.
Because every function here is deterministic in its inputs, a campaign
journaled by the pool, resumed by the fabric, and finished by a third
party still splices to exactly the bytes a serial loop would have
produced — the invariant the whole resilience story hangs on.

The payload encoding (``base64(pickle(results))``) and the campaign
fingerprint are the *on-disk contract* of
:class:`repro.parallel.CampaignJournal` and the fabric's lease store;
changing either breaks resume compatibility and must bump the journal
version.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import ExperimentError

__all__ = [
    "campaign_fingerprint",
    "default_chunksize",
    "make_chunks",
    "encode_chunk",
    "decode_chunk",
    "splice",
]

T = TypeVar("T")

#: Chunks handed to each worker; >1 smooths out uneven task durations.
CHUNKS_PER_WORKER = 4


def campaign_fingerprint(fn: Callable[..., Any], items: Sequence[Any]) -> str:
    """A stable digest of *which campaign this is*.

    Built from the callable's qualified name and the item list, so
    resuming with a different experiment or different seeds fails
    loudly instead of splicing unrelated results together.  Execution
    knobs — worker counts, backends, batch functions — deliberately do
    not enter the digest: a campaign journaled under one backend can
    resume under another (the parity suite makes that sound).
    """
    hasher = hashlib.sha256()
    hasher.update(getattr(fn, "__module__", "?").encode())
    hasher.update(b"\x1f")
    hasher.update(getattr(fn, "__qualname__", repr(fn)).encode())
    hasher.update(b"\x1f")
    try:
        hasher.update(pickle.dumps(list(items)))
    except Exception:
        hasher.update(repr(list(items)).encode())
    return hasher.hexdigest()


def default_chunksize(
    num_items: int, jobs: int, *, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> int:
    """Contiguous chunk length for dispatching ``num_items`` tasks."""
    return max(1, -(-num_items // (max(1, jobs) * chunks_per_worker)))


def make_chunks(items: Sequence[T], chunksize: int) -> list[list[T]]:
    """Cut ``items`` into the contiguous chunks a campaign dispatches."""
    if chunksize < 1:
        raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
    items = list(items)
    return [items[i : i + chunksize] for i in range(0, len(items), chunksize)]


def encode_chunk(results: Sequence[Any]) -> str:
    """Encode one chunk's results as the journal/lease-store payload."""
    return base64.b64encode(pickle.dumps(list(results))).decode("ascii")


def decode_chunk(payload: str) -> list[Any]:
    """Inverse of :func:`encode_chunk`."""
    return pickle.loads(base64.b64decode(payload))


def splice(
    num_chunks: int, results: dict[int, list[Any]], *, where: str = "campaign"
) -> list[Any]:
    """Reassemble completed chunks into the flat, in-order result list.

    Raises :class:`ExperimentError` when any chunk is missing — a
    splice must never silently drop or reorder results.
    """
    missing = [index for index in range(num_chunks) if index not in results]
    if missing:
        raise ExperimentError(
            f"{where}: cannot splice — chunk(s) {missing[:8]} of {num_chunks} "
            "never completed"
        )
    return [value for index in range(num_chunks) for value in results[index]]
