"""Crash-safe distributed campaign fabric.

``repro.parallel`` hardens one process pool; this package lifts the
same chunk checkpoint/resume machinery to a *multi-worker fabric*:
independent worker processes claim chunk **leases** from a shared
SQLite store, **heartbeat** while computing, and splice their results
back **byte-identically** into the existing campaign-journal format.
Correctness under crashes rests on three mechanisms:

* **Lease expiry + takeover** — a worker that stops heartbeating
  (killed, stalled, partitioned from the store) loses its lease after
  ``lease_ttl`` seconds and any live worker re-claims the chunk;
* **Monotonic fencing tokens** — every grant bumps the chunk's fence,
  and a commit is accepted only under the *current* fence, so an
  expired-then-resurrected worker can never land a superseded result;
* **Deterministic chunking** — chunk inputs are re-derived seeds, not
  consumed stream state, so whichever worker computes a chunk produces
  the same bytes and the final splice equals the serial reference run.

The package is exercised the same way the simulated network is: a
seed-driven :mod:`~repro.fabric.faultplan` kills ``-9``/stalls/
partitions real worker subprocesses and forces stale-commit attempts,
and :mod:`~repro.fabric.verify` asserts that *any* fault plan yields
results byte-identical to the serial run with zero fencing violations.

Front ends: ``python -m repro fabric run|worker|chaos``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "LeaseStore",
    "Lease",
    "FaultPlan",
    "FaultAction",
    "FabricSpec",
    "resolve_spec",
    "register_spec",
    "WorkerConfig",
    "run_worker",
    "FabricConfig",
    "FabricResult",
    "run_fabric",
    "FabricVerifyReport",
    "verify_fabric",
    "campaign_fingerprint",
    "default_chunksize",
    "make_chunks",
    "splice",
    "encode_chunk",
    "decode_chunk",
]

# Lazy exports (PEP 562): repro.parallel imports repro.fabric.splice,
# so the package __init__ must not eagerly pull in modules that import
# repro.parallel back (coordinator, worker, verify).
_EXPORTS = {
    "LeaseStore": "repro.fabric.store",
    "Lease": "repro.fabric.store",
    "FaultPlan": "repro.fabric.faultplan",
    "FaultAction": "repro.fabric.faultplan",
    "FabricSpec": "repro.fabric.specs",
    "resolve_spec": "repro.fabric.specs",
    "register_spec": "repro.fabric.specs",
    "WorkerConfig": "repro.fabric.worker",
    "run_worker": "repro.fabric.worker",
    "FabricConfig": "repro.fabric.coordinator",
    "FabricResult": "repro.fabric.coordinator",
    "run_fabric": "repro.fabric.coordinator",
    "FabricVerifyReport": "repro.fabric.verify",
    "verify_fabric": "repro.fabric.verify",
    "campaign_fingerprint": "repro.fabric.splice",
    "default_chunksize": "repro.fabric.splice",
    "make_chunks": "repro.fabric.splice",
    "splice": "repro.fabric.splice",
    "encode_chunk": "repro.fabric.splice",
    "decode_chunk": "repro.fabric.splice",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
