"""Chaos-style verification: a faulted fabric run must equal serial.

``verify_fabric`` runs the campaign twice:

1. **Serial reference** — a plain in-process loop over the spec's
   items, pickled with the same payload encoding the fabric uses;
2. **Fabric under faults** — :func:`repro.fabric.coordinator.run_fabric`
   with the given fault plan applied to real worker subprocesses.

and then audits three things:

* **Byte identity** — ``pickle(fabric results) == pickle(serial
  results)``.  Not "equal", *identical bytes*: the splice contract.
* **Fencing soundness** — replaying the store's event log, every chunk
  was committed exactly once, under the fence that was current at
  commit time; every stale attempt shows up as ``fence_reject``, never
  as data.  (This is the "no chunk ever committed under an expired
  fencing token" acceptance criterion, checked from the audit trail
  rather than trusted from the implementation.)
* **Fault visibility** — the plan actually bit: plans with kills or
  stalls produced at least one lease takeover, and plans with stale
  actions produced at least one fence rejection.

Used by the test suite and by ``python -m repro fabric chaos``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.fabric.coordinator import FabricConfig, FabricResult, run_fabric
from repro.fabric.specs import resolve_spec

__all__ = ["FabricVerifyReport", "verify_fabric"]


@dataclass
class FabricVerifyReport:
    """The verdict of one fabric-vs-serial verification run."""

    config: FabricConfig
    result: FabricResult
    byte_identical: bool
    fencing_errors: list[str] = field(default_factory=list)
    visibility_errors: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.byte_identical
            and not self.fencing_errors
            and not self.visibility_errors
        )

    def render(self) -> str:
        lines = [self.result.summary()]
        lines.append(
            "splice vs serial reference: "
            + ("byte-identical" if self.byte_identical else "MISMATCH")
        )
        for error in self.fencing_errors:
            lines.append(f"fencing violation: {error}")
        for error in self.visibility_errors:
            lines.append(f"fault not visible: {error}")
        plan = self.config.fault_plan
        lines.append(
            f"fault plan: {plan.spec() or '<none>'} "
            f"({len(plan.actions)} action(s) over "
            f"{len(plan.faulted_workers())} worker(s))"
        )
        lines.append("verification " + ("PASSED" if self.passed else "FAILED"))
        return "\n".join(lines)


def _audit_fencing(result: FabricResult) -> list[str]:
    """Replay the event log; return every fencing-contract violation.

    The replayed model: each chunk's fence is bumped by every
    claim/takeover, and a commit is legitimate iff its fence equals the
    fence of the *latest* grant for that chunk.  Rejections must carry
    a genuinely superseded fence.
    """
    errors: list[str] = []
    current_fence: dict[int, int] = {}
    committed: dict[int, int] = {}
    for event in result.events:
        kind = event["kind"]
        index = event["idx"]
        fence = event["fence"]
        if kind in ("claim", "takeover"):
            previous = current_fence.get(index, 0)
            if fence != previous + 1:
                errors.append(
                    f"chunk {index}: grant fence jumped {previous} -> {fence} "
                    "(fences must be monotonic by exactly 1)"
                )
            current_fence[index] = fence
            if index in committed:
                errors.append(
                    f"chunk {index}: re-granted (fence {fence}) after it "
                    f"was already committed at fence {committed[index]}"
                )
        elif kind == "commit":
            if fence != current_fence.get(index):
                errors.append(
                    f"chunk {index}: committed under fence {fence} but the "
                    f"current fence was {current_fence.get(index)} — a stale "
                    "(expired/superseded) token landed data"
                )
            if index in committed:
                errors.append(
                    f"chunk {index}: committed twice "
                    f"(fences {committed[index]} and {fence})"
                )
            committed[index] = fence
        elif kind == "fence_reject":
            if fence == current_fence.get(index) and index not in committed:
                errors.append(
                    f"chunk {index}: commit under the *current* fence {fence} "
                    "was rejected — the store refused legitimate data"
                )
    for index in range(result.chunks):
        if index not in committed:
            errors.append(f"chunk {index}: never committed")
    return errors


def _audit_visibility(config: FabricConfig, result: FabricResult) -> list[str]:
    """Check that the fault plan demonstrably happened."""
    errors: list[str] = []
    plan = config.fault_plan
    fired = {
        (event["worker"], event["detail"])
        for event in result.events
        if event["kind"] == "fault"
    }
    fired_workers = {worker for worker, _ in fired}
    missing = plan.faulted_workers() - fired_workers
    if missing:
        errors.append(
            f"worker(s) {sorted(missing)} were scheduled for faults that "
            "never fired (did they claim enough chunks? lower max_ordinal)"
        )
    if plan.count("kill") + plan.count("stall") > 0 and result.takeovers == 0:
        errors.append(
            "plan kills/stalls workers but no lease takeover was recorded"
        )
    if plan.count("stale") > 0 and result.fence_rejects < plan.count("stale"):
        errors.append(
            f"plan schedules {plan.count('stale')} stale-commit attempt(s) "
            f"but only {result.fence_rejects} fence rejection(s) were recorded"
        )
    return errors


def verify_fabric(config: FabricConfig) -> FabricVerifyReport:
    """Run serial reference + faulted fabric; audit and compare."""
    spec = resolve_spec(config.spec, config.params)
    reference = [spec.fn(item) for item in spec.items]

    result = run_fabric(config)

    byte_identical = pickle.dumps(result.results) == pickle.dumps(reference)
    return FabricVerifyReport(
        config=config,
        result=result,
        byte_identical=byte_identical,
        fencing_errors=_audit_fencing(result),
        visibility_errors=_audit_visibility(config, result),
    )
