"""The campaign-spec registry: how fabric workers know *what* to run.

A fabric worker is a separate OS process launched from the CLI; it
cannot be handed a closure.  Instead the lease store records a spec
*name* plus JSON *params*, and every worker independently rebuilds the
identical ``(fn, items)`` pair from this registry — exactly the
discipline :mod:`repro.parallel` relies on (chunk inputs are
re-derived seeds, not consumed stream state), lifted across process
and host boundaries.

Registered specs:

* ``squares`` — trivial arithmetic demo/smoke spec (``{"n": 64}``);
* ``slow-squares`` — same, with a per-item sleep (``{"n", "delay"}``)
  so tests and fault drills have wide windows to kill workers in;
* ``chaos`` — the repo's adversarial two-arm invariant campaign
  (:mod:`repro.chaos`), parameterised by ``ChaosConfig`` fields: the
  real workload the fabric exists to scale out.

Third parties register their own with :func:`register_spec`; builders
must live at module level (workers import them by name).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentError

__all__ = ["FabricSpec", "register_spec", "resolve_spec", "SPECS"]


@dataclass(frozen=True)
class FabricSpec:
    """One resolved campaign: the callable, its items, and reporting."""

    name: str
    fn: Callable[[Any], Any]
    items: list = field(default_factory=list)
    #: Optional post-splice renderer: ``summarize(results) -> (text, ok)``.
    summarize: Callable[[list], tuple[str, bool]] | None = None


def _square(x: int) -> int:
    return x * x


def _build_squares(params: dict[str, Any]) -> FabricSpec:
    n = int(params.get("n", 64))
    return FabricSpec("squares", _square, list(range(n)))


def _slow_square(task: tuple[int, float]) -> int:
    x, delay = task
    time.sleep(delay)
    return x * x


def _build_slow_squares(params: dict[str, Any]) -> FabricSpec:
    n = int(params.get("n", 24))
    delay = float(params.get("delay", 0.1))
    return FabricSpec("slow-squares", _slow_square, [(x, delay) for x in range(n)])


def _summarize_chaos(config: Any, outcomes: list) -> tuple[str, bool]:
    from repro.chaos import ChaosReport

    report = ChaosReport(config=config, outcomes=outcomes)
    lines = [report.table().render(), ""]
    verdict = "PASSED" if report.passed else "FAILED"
    lines.append(
        f"campaign {verdict} "
        f"(liveness={'ok' if report.liveness_ok else 'BROKEN'}, "
        f"control_breaks={'yes' if report.control_broken else 'NO'}, "
        f"safety_violations={len(report.safety_violations)})"
    )
    return "\n".join(lines), report.passed


def _build_chaos(params: dict[str, Any]) -> FabricSpec:
    import functools

    from repro.chaos import ChaosConfig, _run_chaos_trial, chaos_tasks

    try:
        config = ChaosConfig(**params)
    except TypeError as exc:
        raise ExperimentError(f"chaos spec params: {exc}") from exc
    return FabricSpec(
        "chaos",
        _run_chaos_trial,
        chaos_tasks(config),
        summarize=functools.partial(_summarize_chaos, config),
    )


SPECS: dict[str, Callable[[dict[str, Any]], FabricSpec]] = {
    "squares": _build_squares,
    "slow-squares": _build_slow_squares,
    "chaos": _build_chaos,
}


def register_spec(name: str, builder: Callable[[dict[str, Any]], FabricSpec]) -> None:
    """Register a campaign spec builder under ``name``."""
    SPECS[name] = builder


def resolve_spec(name: str, params: dict[str, Any] | None = None) -> FabricSpec:
    """Build the spec; every worker calling this with the same
    ``(name, params)`` derives the identical campaign."""
    builder = SPECS.get(name)
    if builder is None:
        raise ExperimentError(
            f"unknown fabric spec {name!r}; choose from {', '.join(sorted(SPECS))}"
        )
    return builder(dict(params or {}))
