"""Small, dependency-free statistics helpers.

The experiments deal in two kinds of data:

* real-valued samples (completion slots, transmission counts), for
  which we report mean, standard deviation, quantiles and a normal-
  approximation confidence interval on the mean;
* Bernoulli samples (did this run succeed?), for which we report the
  Wilson score interval — much better behaved than the Wald interval
  at the small failure probabilities the paper's ε bounds live at.

Everything here is intentionally plain Python: the library's core has
no third-party dependencies, and sample sizes are small enough that
vectorisation buys nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError

__all__ = [
    "mean",
    "stddev",
    "quantile",
    "empirical_cdf",
    "mean_confidence_interval",
    "wilson_interval",
    "SummaryStats",
    "summarize",
]

# Two-sided z for 95% confidence.
_Z95 = 1.959963984540054


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not samples:
        raise ExperimentError("mean of an empty sample is undefined")
    return sum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for a single sample."""
    n = len(samples)
    if n == 0:
        raise ExperimentError("stddev of an empty sample is undefined")
    if n == 1:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (n - 1))


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, ``0 <= q <= 1``."""
    if not samples:
        raise ExperimentError("quantile of an empty sample is undefined")
    if not 0.0 <= q <= 1.0:
        raise ExperimentError("q must be in [0, 1]")
    ordered = sorted(samples)
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    frac = position - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def empirical_cdf(samples: Sequence[float], x: float) -> float:
    """Fraction of samples ``<= x``."""
    if not samples:
        raise ExperimentError("empirical CDF of an empty sample is undefined")
    return sum(1 for s in samples if s <= x) / len(samples)


def mean_confidence_interval(
    samples: Sequence[float], *, z: float = _Z95
) -> tuple[float, float]:
    """Normal-approximation CI for the mean: ``mean ± z·s/√n``."""
    mu = mean(samples)
    half = z * stddev(samples) / math.sqrt(len(samples))
    return (mu - half, mu + half)


def wilson_interval(
    successes: int, trials: int, *, z: float = _Z95
) -> tuple[float, float]:
    """Wilson score interval for a Bernoulli success probability."""
    if trials <= 0:
        raise ExperimentError("wilson_interval needs trials >= 1")
    if not 0 <= successes <= trials:
        raise ExperimentError("successes must be within [0, trials]")
    p_hat = successes / trials
    denom = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class SummaryStats:
    """One row worth of descriptive statistics."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} sd={self.stddev:.2f} "
            f"min={self.minimum:.0f} p50={self.p50:.0f} p90={self.p90:.0f} "
            f"max={self.maximum:.0f}"
        )


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Descriptive statistics for a sample."""
    return SummaryStats(
        count=len(samples),
        mean=mean(samples),
        stddev=stddev(samples),
        minimum=float(min(samples)),
        p50=quantile(samples, 0.5),
        p90=quantile(samples, 0.9),
        maximum=float(max(samples)),
    )
