"""Statistics and reporting helpers used by the experiment harness."""

from repro.analysis.gof import (
    chi_square_pvalue,
    chi_square_statistic,
    chi_square_test,
    pool_small_bins,
)
from repro.analysis.stats import (
    SummaryStats,
    empirical_cdf,
    mean,
    mean_confidence_interval,
    quantile,
    stddev,
    summarize,
    wilson_interval,
)
from repro.analysis.tables import Table
from repro.analysis.theory import (
    chernoff_binomial_upper_tail,
    fit_linear,
    fit_loglinear,
    hoeffding_lower_tail,
)

__all__ = [
    "SummaryStats",
    "mean",
    "stddev",
    "quantile",
    "empirical_cdf",
    "mean_confidence_interval",
    "wilson_interval",
    "summarize",
    "Table",
    "hoeffding_lower_tail",
    "chernoff_binomial_upper_tail",
    "fit_linear",
    "fit_loglinear",
    "chi_square_statistic",
    "chi_square_pvalue",
    "chi_square_test",
    "pool_small_bins",
]
