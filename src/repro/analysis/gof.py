"""Goodness-of-fit checks between simulation and theory.

The reproduction's honesty hinges on the simulator matching the
analytical model *in distribution*, not just in the mean.  This module
provides a small chi-square machinery the statistical tests use to
compare empirical histograms against the paper's exact laws (the
geometric Decay transmission-count law; the ``P(k, d)`` Bernoulli):

* :func:`chi_square_statistic` — Pearson's X² with small-expected-bin
  pooling;
* :func:`chi_square_pvalue` — the survival function of the χ²
  distribution (via :mod:`scipy` when available, else a
  Wilson–Hilferty normal approximation, which is accurate to a couple
  of decimals for df ≥ 3 — plenty for pass/fail at α = 0.001).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ExperimentError

__all__ = [
    "chi_square_statistic",
    "chi_square_pvalue",
    "chi_square_test",
    "pool_small_bins",
]


def pool_small_bins(
    observed: Sequence[float],
    expected: Sequence[float],
    *,
    min_expected: float = 5.0,
) -> tuple[list[float], list[float]]:
    """Merge trailing bins until every expected count is ≥ ``min_expected``.

    The classical validity condition for Pearson's test.  Bins are
    pooled greedily from the right (where the tail mass lives in our
    geometric laws).
    """
    if len(observed) != len(expected):
        raise ExperimentError("observed and expected must align")
    obs = list(observed)
    exp = list(expected)
    while len(exp) > 1 and exp[-1] < min_expected:
        exp[-2] += exp[-1]
        obs[-2] += obs[-1]
        del exp[-1], obs[-1]
    # A leading tiny bin can also occur; pool forward if needed.
    while len(exp) > 1 and exp[0] < min_expected:
        exp[1] += exp[0]
        obs[1] += obs[0]
        del exp[0], obs[0]
    return obs, exp


def chi_square_statistic(
    observed: Sequence[float], expected: Sequence[float]
) -> tuple[float, int]:
    """Pearson's X² and its degrees of freedom (bins − 1)."""
    if len(observed) != len(expected) or not observed:
        raise ExperimentError("need equal-length, non-empty histograms")
    if any(e <= 0 for e in expected):
        raise ExperimentError("expected counts must be positive")
    total_obs = sum(observed)
    total_exp = sum(expected)
    if total_exp <= 0:
        raise ExperimentError("expected mass must be positive")
    scale = total_obs / total_exp
    statistic = sum(
        (o - e * scale) ** 2 / (e * scale) for o, e in zip(observed, expected)
    )
    return statistic, len(observed) - 1


def chi_square_pvalue(statistic: float, df: int) -> float:
    """``P(Chi2_df >= statistic)``."""
    if df < 1:
        raise ExperimentError("df must be >= 1")
    if statistic < 0:
        raise ExperimentError("statistic must be non-negative")
    try:
        from scipy import stats

        return float(stats.chi2.sf(statistic, df))
    except ImportError:  # pragma: no cover - scipy is present in CI
        # Wilson–Hilferty: (X/df)^(1/3) ~ Normal(1 - 2/(9df), 2/(9df)).
        z = ((statistic / df) ** (1 / 3) - (1 - 2 / (9 * df))) / math.sqrt(
            2 / (9 * df)
        )
        return 0.5 * math.erfc(z / math.sqrt(2))


def chi_square_test(
    observed_counts: Mapping[int, int] | Sequence[float],
    expected_probs: Sequence[float],
    *,
    min_expected: float = 5.0,
) -> dict[str, float]:
    """Full pipeline: histogram → pooled bins → X² → p-value.

    ``observed_counts`` is either a sequence aligned with
    ``expected_probs`` or a mapping ``value -> count`` over
    ``0..len(expected_probs)-1``.  ``expected_probs`` need not be
    normalised (they are scaled to the observed total).
    """
    if isinstance(observed_counts, Mapping):
        observed = [
            float(observed_counts.get(i, 0)) for i in range(len(expected_probs))
        ]
    else:
        observed = [float(x) for x in observed_counts]
    total = sum(observed)
    if total <= 0:
        raise ExperimentError("no observations")
    prob_total = sum(expected_probs)
    expected = [p / prob_total * total for p in expected_probs]
    pooled_obs, pooled_exp = pool_small_bins(
        observed, expected, min_expected=min_expected
    )
    statistic, df = chi_square_statistic(pooled_obs, pooled_exp)
    return {
        "statistic": statistic,
        "df": df,
        "p_value": chi_square_pvalue(statistic, df),
        "bins": len(pooled_obs),
    }
