"""Theory-side helpers: tail bounds and growth-law fits.

* :func:`hoeffding_lower_tail` — the Chernoff/Hoeffding bound used in
  the proof of Lemma 3: for ``X ~ Binomial(T, p)``,
  ``P(X <= a) <= exp(-2 (Tp - a)^2 / T)`` for ``a <= Tp``.  The E2
  experiment checks the measured tail of the progress process against
  it.
* :func:`fit_linear` / :func:`fit_loglinear` — least-squares fits of
  ``y = a + b·x`` and ``y = a + b·log2(x)``, used by the gap experiment
  (E5) to classify each protocol's measured growth as linear vs
  (poly)logarithmic in ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError

__all__ = [
    "hoeffding_lower_tail",
    "chernoff_binomial_upper_tail",
    "LinearFit",
    "fit_linear",
    "fit_loglinear",
]


def hoeffding_lower_tail(trials: int, p: float, threshold: float) -> float:
    """Upper bound on ``P(Binomial(trials, p) <= threshold)``.

    Valid (and 1.0 otherwise) when ``threshold <= trials * p``.
    """
    if trials <= 0:
        raise ExperimentError("trials must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ExperimentError("p must be in [0, 1]")
    gap = trials * p - threshold
    if gap <= 0:
        return 1.0
    return math.exp(-2.0 * gap * gap / trials)


def chernoff_binomial_upper_tail(trials: int, p: float, threshold: float) -> float:
    """Upper bound on ``P(Binomial(trials, p) >= threshold)`` (Hoeffding form)."""
    if trials <= 0:
        raise ExperimentError("trials must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ExperimentError("p must be in [0, 1]")
    gap = threshold - trials * p
    if gap <= 0:
        return 1.0
    return math.exp(-2.0 * gap * gap / trials)


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit ``y ≈ intercept + slope·x`` with fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares for ``y = a + b·x``."""
    if len(xs) != len(ys):
        raise ExperimentError("xs and ys must have equal length")
    n = len(xs)
    if n < 2:
        raise ExperimentError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ExperimentError("xs are all identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def fit_loglinear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """OLS for ``y = a + b·log2(x)`` (xs must be positive)."""
    if any(x <= 0 for x in xs):
        raise ExperimentError("fit_loglinear requires positive xs")
    return fit_linear([math.log2(x) for x in xs], ys)
