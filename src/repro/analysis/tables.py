"""Fixed-width tables for experiment output.

Every experiment returns a :class:`Table`; benchmarks print it and
EXPERIMENTS.md embeds the rendered text.  Cells are stored as raw
values and formatted at render time, so tables are also usable as data
(``table.column("slots")``) by tests asserting on experiment output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ExperimentError

__all__ = ["Table"]


class Table:
    """A titled table with named columns."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ExperimentError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ExperimentError("column names must be unique")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, positionally or by column name (not both)."""
        if values and named:
            raise ExperimentError("pass positional or named cells, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise ExperimentError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(col, "") for col in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ExperimentError(
                    f"expected {len(self.columns)} cells, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExperimentError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """The table as fixed-width text."""
        cells = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in cells:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting; cells must be simple)."""
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(self._format_cell(v) for v in row))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterable[list[Any]]:
        return iter(self.rows)
