"""Dynamic-topology and fault schedules.

The paper's property 3 claims the Broadcast protocol is *"adaptive to
changes in topology ... edges may be added or deleted at any time,
provided that the network of unchanged edges remains connected"* —
i.e. resilience to fail/stop edge faults.  This module provides the
machinery the E9 experiment uses to exercise that claim:

* :class:`EdgeFault` — add or remove one edge at a given slot;
* :class:`CrashFault` — silence one node permanently from a given slot
  (the node neither transmits nor receives afterwards);
* :class:`FaultSchedule` — an ordered collection applied by the engine
  at slot boundaries (before intents are gathered for that slot).

A schedule is data, not behaviour, so experiments can generate, log and
replay fault patterns deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Literal

from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["EdgeFault", "CrashFault", "FaultSchedule", "random_edge_kill_schedule"]

Node = Hashable


@dataclass(frozen=True)
class EdgeFault:
    """Add or remove the edge ``(u, v)`` at the start of slot ``slot``."""

    slot: int
    u: Node
    v: Node
    kind: Literal["remove", "add"] = "remove"

    def apply(self, g: Graph) -> None:
        if self.kind == "remove":
            if g.has_edge(self.u, self.v):
                g.remove_edge(self.u, self.v)
        elif self.kind == "add":
            g.add_edge(self.u, self.v)
        else:  # pragma: no cover - guarded by Literal, defensive only
            raise SimulationError(f"unknown edge fault kind {self.kind!r}")


@dataclass(frozen=True)
class CrashFault:
    """Node ``node`` fail-stops at the start of slot ``slot``."""

    slot: int
    node: Node


@dataclass
class FaultSchedule:
    """All faults for one run, queryable by slot."""

    edge_faults: list[EdgeFault] = field(default_factory=list)
    crash_faults: list[CrashFault] = field(default_factory=list)

    def edge_faults_at(self, slot: int) -> list[EdgeFault]:
        return [f for f in self.edge_faults if f.slot == slot]

    def crashes_at(self, slot: int) -> list[CrashFault]:
        return [f for f in self.crash_faults if f.slot == slot]

    def by_slot(self) -> tuple[dict[int, list[EdgeFault]], dict[int, list[CrashFault]]]:
        """Index the schedule by slot (one scan instead of one per slot).

        Relative order of same-slot faults is preserved, so replaying
        the index is equivalent to calling :meth:`edge_faults_at` /
        :meth:`crashes_at` slot by slot.  The index is a snapshot:
        faults added afterwards are not reflected.
        """
        edge_index: dict[int, list[EdgeFault]] = {}
        for fault in self.edge_faults:
            edge_index.setdefault(fault.slot, []).append(fault)
        crash_index: dict[int, list[CrashFault]] = {}
        for fault in self.crash_faults:
            crash_index.setdefault(fault.slot, []).append(fault)
        return edge_index, crash_index

    def is_empty(self) -> bool:
        return not self.edge_faults and not self.crash_faults

    @property
    def last_slot(self) -> int:
        slots = [f.slot for f in self.edge_faults] + [f.slot for f in self.crash_faults]
        return max(slots) if slots else -1


def random_edge_kill_schedule(
    g: Graph,
    keep: Graph,
    kill_fraction: float,
    max_slot: int,
    rng: random.Random,
) -> FaultSchedule:
    """Build a schedule that removes random edges of ``g`` not present in ``keep``.

    ``keep`` is a connected spanning subgraph whose edges are never
    killed — this realises the paper's proviso that "the network of
    unchanged edges remains connected".  Each killable edge is removed
    with probability ``kill_fraction`` at a uniformly random slot in
    ``[0, max_slot)``.
    """
    if not 0.0 <= kill_fraction <= 1.0:
        raise SimulationError("kill_fraction must be in [0, 1]")
    protected = {frozenset(edge) for edge in keep.edges}
    faults = []
    for u, v in g.edges:
        if frozenset((u, v)) in protected:
            continue
        if rng.random() < kill_fraction:
            faults.append(EdgeFault(slot=rng.randrange(max(1, max_slot)), u=u, v=v))
    return FaultSchedule(edge_faults=faults)
