"""Dynamic-topology and fault schedules.

The paper's property 3 claims the Broadcast protocol is *"adaptive to
changes in topology ... edges may be added or deleted at any time,
provided that the network of unchanged edges remains connected"* —
i.e. resilience to fail/stop edge faults.  This module provides the
machinery the E9 experiment and the :mod:`repro.chaos` harness use to
exercise (and deliberately over-stress) that claim:

* :class:`EdgeFault` — add or remove one edge at a given slot;
* :class:`CrashFault` — silence one node from a given slot (the node
  neither transmits nor receives while down), either permanently or,
  with ``until``, transiently (crash–recover);
* :class:`JamFault` — an adversarial jammer: the node transmits
  undecodable noise in every slot of a window, colliding with any
  legitimate transmission its neighbours could otherwise hear;
* :class:`LinkLossFault` — probabilistic lossy links: while active,
  each *directed* reception across a matching link is independently
  erased with probability ``p`` (the coin is a pure function of the
  engine seed, slot and endpoints, so runs stay replayable);
* :class:`FaultSchedule` — an ordered collection applied by the engine
  at slot boundaries (before intents are gathered for that slot).

A schedule is data, not behaviour, so experiments can generate, log and
replay fault patterns deterministically.  Schedules are validated
against the topology at engine construction
(:meth:`FaultSchedule.validate_for_graph`): a fault naming a node the
graph does not contain is a configuration error, not a silent no-op.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Literal

from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "EdgeFault",
    "CrashFault",
    "JamFault",
    "LinkLossFault",
    "FaultSchedule",
    "random_edge_kill_schedule",
]

Node = Hashable


@dataclass(frozen=True)
class EdgeFault:
    """Add or remove the edge ``(u, v)`` at the start of slot ``slot``."""

    slot: int
    u: Node
    v: Node
    kind: Literal["remove", "add"] = "remove"

    def apply(self, g: Graph) -> None:
        if self.kind == "remove":
            if g.has_edge(self.u, self.v):
                g.remove_edge(self.u, self.v)
        elif self.kind == "add":
            g.add_edge(self.u, self.v)
        else:  # pragma: no cover - guarded by Literal, defensive only
            raise SimulationError(f"unknown edge fault kind {self.kind!r}")


@dataclass(frozen=True)
class CrashFault:
    """Node ``node`` fail-stops at the start of slot ``slot``.

    With ``until=None`` (the default) the crash is permanent.  With an
    integer ``until`` the fault is transient: the node is down for the
    slots ``[slot, until)`` and resumes its program — state intact, as
    if no time had passed for it — at the start of slot ``until``.
    """

    slot: int
    node: Node
    until: int | None = None

    def __post_init__(self) -> None:
        if self.until is not None and self.until <= self.slot:
            raise SimulationError(
                f"crash recovery slot must follow the crash: "
                f"slot={self.slot}, until={self.until}"
            )


@dataclass(frozen=True)
class JamFault:
    """Node ``node`` jams — transmits noise — in slots ``[start, end)``.

    While jamming, the node's own program is suspended (it neither acts
    nor observes) and an undecodable signal is injected on its behalf
    every slot.  Receivers that hear *only* the jammer observe silence
    (or a collision, under a collision-detecting medium); receivers
    that hear the jammer plus a legitimate transmitter observe a
    collision.  Jam transmissions are accounted separately from
    protocol transmissions (``RunMetrics.jam_transmissions``).
    """

    node: Node
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SimulationError(f"jam window must start at slot >= 0, got {self.start}")
        if self.end <= self.start:
            raise SimulationError(
                f"jam window must be non-empty: start={self.start}, end={self.end}"
            )

    def active_at(self, slot: int) -> bool:
        return self.start <= slot < self.end


@dataclass(frozen=True)
class LinkLossFault:
    """Independently erase each directed reception with probability ``p``.

    While active (slots ``[start, end)``; ``end=None`` means for the
    rest of the run), every directed reception ``transmitter →
    receiver`` across a matching link is erased with probability ``p``,
    independently per (slot, transmitter, receiver).  An erased signal
    simply does not arrive: it neither delivers nor contributes to a
    collision at that receiver.

    ``edges`` restricts the fault to specific links, matched as
    unordered pairs (``None`` = every link).  The erasure coin is
    derived from the engine seed, the slot and the directed pair, so
    identical seeds replay identical loss patterns regardless of
    iteration order or process boundaries.
    """

    p: float
    start: int = 0
    end: int | None = None
    edges: frozenset[frozenset[Node]] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise SimulationError(f"loss probability must be in [0, 1], got {self.p}")
        if self.end is not None and self.end <= self.start:
            raise SimulationError(
                f"loss window must be non-empty: start={self.start}, end={self.end}"
            )
        if self.edges is not None:
            normalised = frozenset(frozenset(pair) for pair in self.edges)
            for pair in normalised:
                if len(pair) != 2:
                    raise SimulationError(
                        f"loss fault edges must be pairs of distinct nodes, got {sorted(map(repr, pair))}"
                    )
            object.__setattr__(self, "edges", normalised)

    def active_at(self, slot: int) -> bool:
        return self.start <= slot and (self.end is None or slot < self.end)

    def covers(self, u: Node, v: Node) -> bool:
        return self.edges is None or frozenset((u, v)) in self.edges


@dataclass
class FaultSchedule:
    """All faults for one run, queryable by slot."""

    edge_faults: list[EdgeFault] = field(default_factory=list)
    crash_faults: list[CrashFault] = field(default_factory=list)
    jam_faults: list[JamFault] = field(default_factory=list)
    link_loss_faults: list[LinkLossFault] = field(default_factory=list)

    def edge_faults_at(self, slot: int) -> list[EdgeFault]:
        return [f for f in self.edge_faults if f.slot == slot]

    def crashes_at(self, slot: int) -> list[CrashFault]:
        return [f for f in self.crash_faults if f.slot == slot]

    def by_slot(self) -> tuple[dict[int, list[EdgeFault]], dict[int, list[CrashFault]]]:
        """Index the slot-event faults (one scan instead of one per slot).

        Relative order of same-slot faults is preserved, so replaying
        the index is equivalent to calling :meth:`edge_faults_at` /
        :meth:`crashes_at` slot by slot.  The index is a snapshot:
        faults added afterwards are not reflected.  Window faults
        (jam, link loss) are not slot events and are read directly.
        """
        edge_index: dict[int, list[EdgeFault]] = {}
        for fault in self.edge_faults:
            edge_index.setdefault(fault.slot, []).append(fault)
        crash_index: dict[int, list[CrashFault]] = {}
        for fault in self.crash_faults:
            crash_index.setdefault(fault.slot, []).append(fault)
        return edge_index, crash_index

    def is_empty(self) -> bool:
        return not (
            self.edge_faults
            or self.crash_faults
            or self.jam_faults
            or self.link_loss_faults
        )

    @property
    def last_slot(self) -> int:
        """Last slot at which this schedule changes anything.

        Open-ended loss windows (``end=None``) contribute their start
        slot — they are active forever after it.
        """
        slots = [f.slot for f in self.edge_faults]
        for crash in self.crash_faults:
            slots.append(crash.slot if crash.until is None else crash.until - 1)
        slots.extend(f.end - 1 for f in self.jam_faults)
        slots.extend(
            f.start if f.end is None else f.end - 1 for f in self.link_loss_faults
        )
        return max(slots) if slots else -1

    def counts(self) -> dict[str, int]:
        """Machine-readable fault census (used by campaign journals)."""
        return {
            "edge": len(self.edge_faults),
            "crash": len(self.crash_faults),
            "jam": len(self.jam_faults),
            "link_loss": len(self.link_loss_faults),
        }

    def validate_for_graph(self, g: Graph) -> None:
        """Raise :class:`SimulationError` if any fault targets a node absent
        from ``g``.

        Called by the engine at construction so a mistyped node label
        fails loudly up front instead of silently no-opping mid-run.
        """
        nodes = set(g.nodes)

        def require(node: Node, fault: object) -> None:
            if node not in nodes:
                raise SimulationError(
                    f"fault {fault!r} targets node {node!r}, which is not in the graph"
                )

        for edge_fault in self.edge_faults:
            require(edge_fault.u, edge_fault)
            require(edge_fault.v, edge_fault)
        for crash in self.crash_faults:
            require(crash.node, crash)
        for jam in self.jam_faults:
            require(jam.node, jam)
        for loss in self.link_loss_faults:
            if loss.edges is not None:
                for pair in loss.edges:
                    for node in pair:
                        require(node, loss)


def random_edge_kill_schedule(
    g: Graph,
    keep: Graph,
    kill_fraction: float,
    max_slot: int,
    rng: random.Random,
) -> FaultSchedule:
    """Build a schedule that removes random edges of ``g`` not present in ``keep``.

    ``keep`` is a connected spanning subgraph whose edges are never
    killed — this realises the paper's proviso that "the network of
    unchanged edges remains connected".  Each killable edge is removed
    with probability ``kill_fraction`` at a uniformly random slot in
    ``[0, max_slot)``; ``max_slot`` must therefore be at least 1.
    """
    if not 0.0 <= kill_fraction <= 1.0:
        raise SimulationError("kill_fraction must be in [0, 1]")
    if max_slot < 1:
        raise SimulationError(
            f"max_slot must be >= 1 (faults are scheduled in [0, max_slot)), got {max_slot}"
        )
    protected = {frozenset(edge) for edge in keep.edges}
    faults = []
    for u, v in g.edges:
        if frozenset((u, v)) in protected:
            continue
        if rng.random() < kill_fraction:
            faults.append(EdgeFault(slot=rng.randrange(max_slot), u=u, v=v))
    return FaultSchedule(edge_faults=faults)
