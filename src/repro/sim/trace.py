"""Slot-by-slot execution traces.

A :class:`Trace` records, for each simulated time-slot, who transmitted,
who listened, what each listener heard, and how many transmitting
neighbours each listener had.  Traces power the correctness tests
(e.g. "a node was delivered a message iff exactly one neighbour
transmitted"), the message-complexity experiment (paper property 2),
and debugging output for the examples.

Recording every slot of a long run on a big graph costs memory, so the
engine only records when asked (``record_trace=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

__all__ = ["SlotRecord", "Trace"]

Node = Hashable


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one time-slot.

    Attributes
    ----------
    slot:
        The slot number.
    transmitters:
        Map from transmitting node to the message it sent.
    receivers:
        The set of nodes that acted as receivers.
    heard:
        Map from receiving node to what it observed
        (a message, ``SILENCE``, or ``COLLISION``).
    deliveries:
        Map from receiving node to ``(sender, message)`` for the
        receivers that actually got a message this slot.
    conflict_counts:
        Map from receiving node to the number of its neighbours that
        transmitted this slot (0, 1, or more).
    """

    slot: int
    transmitters: dict[Node, Any]
    receivers: frozenset[Node]
    heard: dict[Node, Any]
    deliveries: dict[Node, tuple[Node, Any]]
    conflict_counts: dict[Node, int]

    @property
    def collided_receivers(self) -> frozenset[Node]:
        """Receivers with ≥ 2 transmitting neighbours this slot."""
        return frozenset(
            node for node, count in self.conflict_counts.items() if count >= 2
        )


@dataclass
class Trace:
    """An append-only sequence of :class:`SlotRecord`."""

    records: list[SlotRecord] = field(default_factory=list)

    def append(self, record: SlotRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SlotRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SlotRecord:
        return self.records[index]

    # -- convenience queries -------------------------------------------

    def total_transmissions(self) -> int:
        """Total number of (node, slot) transmit events."""
        return sum(len(rec.transmitters) for rec in self.records)

    def total_collisions(self) -> int:
        """Total number of (receiver, slot) conflict events."""
        return sum(len(rec.collided_receivers) for rec in self.records)

    def transmissions_by(self, node: Node) -> int:
        return sum(1 for rec in self.records if node in rec.transmitters)

    def first_delivery_slot(self, node: Node) -> int | None:
        """First slot at which ``node`` was delivered a message, or None."""
        for rec in self.records:
            if node in rec.deliveries:
                return rec.slot
        return None

    def deliveries_to(self, node: Node) -> list[tuple[int, Node, Any]]:
        """All ``(slot, sender, message)`` deliveries to ``node``."""
        out: list[tuple[int, Node, Any]] = []
        for rec in self.records:
            if node in rec.deliveries:
                sender, message = rec.deliveries[node]
                out.append((rec.slot, sender, message))
        return out
