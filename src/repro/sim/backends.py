"""Engine backend selection.

Two backends produce :class:`~repro.sim.metrics.RunMetrics`:

* ``reference`` — the canonical pure-Python slot engine
  (:class:`~repro.sim.engine.Engine`).  Always available; its results
  define correctness.
* ``numpy`` — the vectorized batch backend (:mod:`repro.sim.vectorized`),
  which advances many Monte-Carlo trials of one topology per array op.
  Seed-for-seed identical to the reference (the parity suite enforces
  it), roughly an order of magnitude faster on campaign workloads, and
  only available when NumPy is installed (``pip install .[fast]``).

``auto`` resolves to ``numpy`` when importable and silently falls back
to ``reference`` otherwise, so campaign code can request speed without
adding a hard dependency.  The ``REPRO_BACKEND`` environment variable
supplies the default when a caller passes ``None``.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError

__all__ = [
    "BACKENDS",
    "BackendUnavailable",
    "numpy_available",
    "available_backends",
    "resolve_backend",
]

BACKENDS = ("reference", "numpy", "auto")

_BACKEND_ENV = "REPRO_BACKEND"


class BackendUnavailable(SimulationError):
    """A requested engine backend cannot run in this environment."""


def numpy_available() -> bool:
    """Whether the vectorized backend's only dependency imports."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run here (reference always can)."""
    return ("reference", "numpy") if numpy_available() else ("reference",)


def resolve_backend(name: str | None) -> str:
    """Resolve a backend request to ``"reference"`` or ``"numpy"``.

    ``None`` defers to ``$REPRO_BACKEND`` (itself defaulting to
    ``reference``); ``auto`` picks ``numpy`` when importable.  An
    explicit ``numpy`` request raises :class:`BackendUnavailable` when
    it cannot be honoured — asking for speed and silently not getting
    it would corrupt benchmark comparisons.
    """
    if name is None:
        name = os.environ.get(_BACKEND_ENV, "").strip() or "reference"
    if name not in BACKENDS:
        raise SimulationError(
            f"unknown backend {name!r}; choose from {', '.join(BACKENDS)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "reference"
    if name == "numpy" and not numpy_available():
        raise BackendUnavailable(
            "the numpy backend needs NumPy, which is not installed; "
            "install the fast extra (pip install .[fast]) or use "
            "--backend reference"
        )
    return name
