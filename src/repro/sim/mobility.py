"""Node mobility for unit-disk networks.

The paper stresses (property 3) that Decay broadcast is "*adaptive to
changes in topology which occur throughout the execution*".  Edge-fault
schedules model adversarial link churn; this module models the *benign*
physical cause — node movement — and compiles it into the same
:class:`~repro.sim.faults.FaultSchedule` machinery:

1. a :class:`RandomWaypointModel` moves each node toward a random
   waypoint at a node-specific speed, re-drawing the waypoint on
   arrival (the classic ad-hoc-network mobility model);
2. :func:`mobility_fault_schedule` samples positions every
   ``resample_every`` slots, recomputes the unit-disk edge set, and
   emits add/remove :class:`~repro.sim.faults.EdgeFault` events for the
   differences.

The engine then replays the churn deterministically — mobility becomes
data, so experiments are reproducible and pausable like everything
else.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.errors import SimulationError
from repro.sim.faults import EdgeFault, FaultSchedule

__all__ = ["RandomWaypointModel", "edges_for_positions", "mobility_fault_schedule"]

Node = Hashable
Position = tuple[float, float]


@dataclass
class _NodeState:
    position: Position
    waypoint: Position
    speed: float


class RandomWaypointModel:
    """Random-waypoint mobility inside an ``area × area`` square.

    Parameters
    ----------
    positions:
        Initial node positions (e.g. ``unit_disk(...).positions``).
    rng:
        Drives waypoint choices and per-node speeds.
    speed:
        Distance units travelled per *slot* (mean); per-node speeds are
        drawn uniformly from ``[0.5·speed, 1.5·speed]``.
    area:
        Side length of the square arena.
    """

    def __init__(
        self,
        positions: dict[Node, Position],
        rng: random.Random,
        *,
        speed: float = 0.01,
        area: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise SimulationError("speed must be positive")
        if not positions:
            raise SimulationError("need at least one node")
        self.area = area
        self._rng = rng
        self._states = {
            node: _NodeState(
                position=pos,
                waypoint=self._draw_waypoint(),
                speed=speed * rng.uniform(0.5, 1.5),
            )
            for node, pos in positions.items()
        }

    def _draw_waypoint(self) -> Position:
        return (self._rng.uniform(0, self.area), self._rng.uniform(0, self.area))

    @property
    def positions(self) -> dict[Node, Position]:
        return {node: state.position for node, state in self._states.items()}

    def step(self, slots: int = 1) -> None:
        """Advance every node ``slots`` time-slots along its trajectory."""
        if slots < 0:
            raise SimulationError("slots must be non-negative")
        for state in self._states.values():
            budget = state.speed * slots
            while budget > 0:
                dx = state.waypoint[0] - state.position[0]
                dy = state.waypoint[1] - state.position[1]
                dist = math.hypot(dx, dy)
                if dist <= budget:
                    state.position = state.waypoint
                    state.waypoint = self._draw_waypoint()
                    budget -= dist
                    if dist == 0:
                        break
                else:
                    frac = budget / dist
                    state.position = (
                        state.position[0] + dx * frac,
                        state.position[1] + dy * frac,
                    )
                    budget = 0.0


def edges_for_positions(
    positions: dict[Node, Position], radius: float
) -> set[frozenset]:
    """The unit-disk edge set for a position snapshot."""
    if radius <= 0:
        raise SimulationError("radius must be positive")
    nodes = list(positions)
    r2 = radius * radius
    edges: set[frozenset] = set()
    for i, u in enumerate(nodes):
        ux, uy = positions[u]
        for v in nodes[i + 1 :]:
            vx, vy = positions[v]
            if (ux - vx) ** 2 + (uy - vy) ** 2 <= r2:
                edges.add(frozenset((u, v)))
    return edges


def mobility_fault_schedule(
    model: RandomWaypointModel,
    radius: float,
    horizon: int,
    *,
    resample_every: int = 8,
    protected: Iterable[frozenset] = (),
) -> FaultSchedule:
    """Compile ``horizon`` slots of movement into an edge-fault schedule.

    ``protected`` edges (e.g. a backbone kept connected, mirroring the
    paper's proviso) are never removed even when their endpoints drift
    out of range.  The model is advanced in place.
    """
    if horizon < 0:
        raise SimulationError("horizon must be non-negative")
    if resample_every < 1:
        raise SimulationError("resample_every must be >= 1")
    protected_set = set(protected)
    current = edges_for_positions(model.positions, radius)
    faults: list[EdgeFault] = []
    slot = 0
    while slot + resample_every <= horizon:
        model.step(resample_every)
        slot += resample_every
        nxt = edges_for_positions(model.positions, radius)
        for gone in current - nxt:
            if gone in protected_set:
                continue
            u, v = tuple(gone)
            faults.append(EdgeFault(slot=slot, u=u, v=v, kind="remove"))
        for new in nxt - current:
            u, v = tuple(new)
            faults.append(EdgeFault(slot=slot, u=u, v=v, kind="add"))
        current = (nxt | (current & protected_set))
    return FaultSchedule(edge_faults=faults)
