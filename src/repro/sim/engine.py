"""The synchronous slot engine.

The engine implements the execution rules of the paper's Definition 1:

1. Time advances in numbered slots (0, 1, 2, ...).
2. In each slot every processor transmits, receives, or is inactive
   (its :class:`~repro.sim.node.NodeProgram` decides via ``act``).
3. A receiver is delivered a message iff exactly one of its neighbours
   transmits that slot (delegated to the :class:`~repro.sim.medium.Medium`).
4. A program's actions may depend only on its context and its past
   observations (structurally enforced: programs only ever see their
   :class:`~repro.sim.node.Context` and their own observations).
5. No spontaneous transmissions: with ``enforce_no_spontaneous=True``
   (the default) a non-initiator that transmits before receiving any
   message trips a :class:`~repro.errors.ProtocolError`.  Experiments
   for Section 3.5 pass ``False``.
6. Broadcast completion is a property of the metrics
   (:meth:`~repro.sim.metrics.RunMetrics.completion_slot`), not of the
   engine: the engine runs until all programs report done, an optional
   ``stop_when`` predicate fires, or ``max_slots`` is exhausted.

The engine never copies messages; protocols exchange immutable payloads
by convention (all protocols in this library send tuples/strings/ints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro import rng as rng_mod
from repro.errors import ProtocolError, SimulationError
from repro.graphs.graph import DiGraph, Graph
from repro.sim.faults import FaultSchedule
from repro.sim.medium import Medium, RadioMedium
from repro.sim.metrics import RunMetrics
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit
from repro.sim.trace import SlotRecord, Trace

__all__ = ["Engine", "RunResult"]

Node = Hashable


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    slots: int
    metrics: RunMetrics
    trace: Trace | None
    programs: dict[Node, NodeProgram]
    graph: Graph

    def node_results(self) -> dict[Node, Any]:
        """Per-node protocol outputs (``NodeProgram.result``)."""
        return {node: prog.result() for node, prog in self.programs.items()}

    def broadcast_completion_slot(self, *, source: Node | None = None) -> int | None:
        """Slot by which all nodes other than ``source`` received a message."""
        skip = frozenset() if source is None else frozenset({source})
        return self.metrics.completion_slot(self.graph.nodes, skip=skip)

    def broadcast_succeeded(self, *, source: Node | None = None) -> bool:
        return self.broadcast_completion_slot(source=source) is not None


class Engine:
    """Drives a set of node programs over a graph, slot by slot."""

    def __init__(
        self,
        graph: Graph,
        programs: Mapping[Node, NodeProgram],
        *,
        medium: Medium | None = None,
        seed: int = 0,
        initiators: frozenset[Node] | set[Node] = frozenset(),
        enforce_no_spontaneous: bool = True,
        faults: FaultSchedule | None = None,
        record_trace: bool = False,
    ) -> None:
        if set(programs) != set(graph.nodes):
            missing = set(graph.nodes) ^ set(programs)
            raise SimulationError(
                f"programs must cover exactly the graph's nodes; mismatch on {sorted(map(repr, missing))}"
            )
        self.graph = graph.copy()
        self.programs: dict[Node, NodeProgram] = dict(programs)
        self.medium = medium if medium is not None else RadioMedium()
        self.seed = seed
        self.initiators = frozenset(initiators)
        self.enforce_no_spontaneous = enforce_no_spontaneous
        self.faults = faults if faults is not None else FaultSchedule()
        self.metrics = RunMetrics()
        self.trace: Trace | None = Trace() if record_trace else None
        self.slot = 0
        self._crashed: set[Node] = set()
        self._has_received: set[Node] = set(self.initiators)
        self._contexts: dict[Node, Context] = {
            node: Context(
                node=node,
                neighbor_ids=self.graph.neighbors(node),
                rng=rng_mod.spawn_for_node(seed, node),
            )
            for node in self.graph.nodes
        }
        self._started = False

    # -- public API -----------------------------------------------------

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run until done / stop condition / ``max_slots``; return the result."""
        if max_slots < 0:
            raise SimulationError("max_slots must be non-negative")
        if not self._started:
            for node, program in self.programs.items():
                program.on_start(self._contexts[node])
            self._started = True
        while self.slot < max_slots:
            if stop_when is not None and stop_when(self):
                break
            if self._all_done():
                break
            self.step()
        return RunResult(
            slots=self.slot,
            metrics=self.metrics,
            trace=self.trace,
            programs=self.programs,
            graph=self.graph,
        )

    def step(self) -> None:
        """Execute exactly one time-slot."""
        self._apply_faults()
        intents = self._collect_intents()
        self._resolve(intents)
        self.slot += 1
        self.metrics.slots = self.slot

    # -- internals --------------------------------------------------------

    def _apply_faults(self) -> None:
        for fault in self.faults.edge_faults_at(self.slot):
            fault.apply(self.graph)
        for crash in self.faults.crashes_at(self.slot):
            self._crashed.add(crash.node)

    def _collect_intents(self) -> dict[Node, Intent]:
        intents: dict[Node, Intent] = {}
        for node, program in self.programs.items():
            if node in self._crashed:
                continue
            ctx = self._contexts[node]
            ctx.slot = self.slot
            if program.is_done(ctx):
                continue
            intent = program.act(ctx)
            if not isinstance(intent, (Transmit, Receive, Idle)):
                raise ProtocolError(
                    f"node {node!r} returned {intent!r}; expected Transmit/Receive/Idle"
                )
            if (
                isinstance(intent, Transmit)
                and self.enforce_no_spontaneous
                and node not in self._has_received
            ):
                raise ProtocolError(
                    f"node {node!r} transmitted spontaneously at slot {self.slot} "
                    "(Definition 1, rule 5; pass enforce_no_spontaneous=False to allow)"
                )
            intents[node] = intent
        return intents

    def _resolve(self, intents: dict[Node, Intent]) -> None:
        messages: dict[Node, Any] = {
            node: intent.message
            for node, intent in intents.items()
            if isinstance(intent, Transmit)
        }
        receivers = [node for node, intent in intents.items() if isinstance(intent, Receive)]

        for node in messages:
            self.metrics.note_transmission(node)

        heard: dict[Node, Any] = {}
        deliveries: dict[Node, tuple[Node, Any]] = {}
        conflict_counts: dict[Node, int] = {}
        for receiver in receivers:
            audible = self._audible_transmitters(receiver, messages)
            conflict_counts[receiver] = len(audible)
            observation = self.medium.resolve(receiver, audible, messages)
            heard[receiver] = observation
            if len(audible) == 1:
                sender = audible[0]
                deliveries[receiver] = (sender, messages[sender])
                self.metrics.note_delivery(receiver, self.slot)
                self._has_received.add(receiver)
            elif len(audible) >= 2:
                self.metrics.note_collision()

        # Observations are delivered only after the whole slot resolves,
        # preserving simultaneity.
        for receiver in receivers:
            self.programs[receiver].on_observe(self._contexts[receiver], heard[receiver])

        if self.trace is not None:
            self.trace.append(
                SlotRecord(
                    slot=self.slot,
                    transmitters=messages,
                    receivers=frozenset(receivers),
                    heard=heard,
                    deliveries=deliveries,
                    conflict_counts=conflict_counts,
                )
            )

    def _audible_transmitters(self, receiver: Node, messages: dict[Node, Any]) -> list[Node]:
        if isinstance(self.graph, DiGraph):
            neighborhood = self.graph.neighbors_in(receiver)
        else:
            neighborhood = self.graph.neighbors(receiver)
        if len(messages) < len(neighborhood):
            return [node for node in messages if node in neighborhood]
        return [node for node in neighborhood if node in messages]

    def _all_done(self) -> bool:
        for node, program in self.programs.items():
            if node in self._crashed:
                continue
            ctx = self._contexts[node]
            ctx.slot = self.slot
            if not program.is_done(ctx):
                return False
        return True
