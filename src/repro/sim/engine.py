"""The synchronous slot engine.

The engine implements the execution rules of the paper's Definition 1:

1. Time advances in numbered slots (0, 1, 2, ...).
2. In each slot every processor transmits, receives, or is inactive
   (its :class:`~repro.sim.node.NodeProgram` decides via ``act``).
3. A receiver is delivered a message iff exactly one of its neighbours
   transmits that slot (delegated to the :class:`~repro.sim.medium.Medium`).
4. A program's actions may depend only on its context and its past
   observations (structurally enforced: programs only ever see their
   :class:`~repro.sim.node.Context` and their own observations).
5. No spontaneous transmissions: with ``enforce_no_spontaneous=True``
   (the default) a non-initiator that transmits before receiving any
   message trips a :class:`~repro.errors.ProtocolError`.  Experiments
   for Section 3.5 pass ``False``.
6. Broadcast completion is a property of the metrics
   (:meth:`~repro.sim.metrics.RunMetrics.completion_slot`), not of the
   engine: the engine runs until all programs report done, an optional
   ``stop_when`` predicate fires, or ``max_slots`` is exhausted.

The engine never copies messages; protocols exchange immutable payloads
by convention (all protocols in this library send tuples/strings/ints).
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro import rng as rng_mod
from repro.errors import ProtocolError, SimulationError
from repro.graphs.graph import DiGraph, Graph
from repro.sim.faults import FaultSchedule, LinkLossFault
from repro.sim.medium import COLLISION, JAMMING, SILENCE, Medium, RadioMedium
from repro.sim.metrics import RunMetrics
from repro.sim.node import Context, Idle, NodeProgram, Receive, Transmit
from repro.sim.provenance import (
    COLLISION as PROV_COLLISION,
    DELIVERED as PROV_DELIVERED,
    FAULT_SUPPRESSED as PROV_FAULT,
    SILENCE as PROV_SILENCE,
    ProvenanceRecorder,
)
from repro.perf import core as _perf
from repro.sim.trace import SlotRecord, Trace
from repro.telemetry.core import Telemetry, get_active

__all__ = ["Engine", "RunResult"]

Node = Hashable


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    slots: int
    metrics: RunMetrics
    trace: Trace | None
    programs: dict[Node, NodeProgram]
    graph: Graph
    provenance: ProvenanceRecorder | None = None

    def node_results(self) -> dict[Node, Any]:
        """Per-node protocol outputs (``NodeProgram.result``)."""
        return {node: prog.result() for node, prog in self.programs.items()}

    def broadcast_completion_slot(self, *, source: Node | None = None) -> int | None:
        """Slot by which all nodes other than ``source`` received a message."""
        skip = frozenset() if source is None else frozenset({source})
        return self.metrics.completion_slot(self.graph.nodes, skip=skip)

    def broadcast_succeeded(self, *, source: Node | None = None) -> bool:
        return self.broadcast_completion_slot(source=source) is not None


class Engine:
    """Drives a set of node programs over a graph, slot by slot.

    Two contracts the hot path relies on:

    * ``NodeProgram.is_done`` is monotone (its docstring: "True once
      this node will never act again"), so done-ness is cached in a
      persistent done-set and each live program is polled exactly once
      per slot.
    * the ``faults`` schedule is snapshotted at construction; mutating
      the :class:`FaultSchedule` object after the engine is built has
      no effect on the run.  Mid-run topology changes always go through
      the schedule (or mutate ``engine.graph``, whose version counter
      invalidates the cached audibility map).
    """

    def __init__(
        self,
        graph: Graph,
        programs: Mapping[Node, NodeProgram],
        *,
        medium: Medium | None = None,
        seed: int = 0,
        initiators: frozenset[Node] | set[Node] = frozenset(),
        enforce_no_spontaneous: bool = True,
        faults: FaultSchedule | None = None,
        record_trace: bool = False,
        record_provenance: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        if set(programs) != set(graph.nodes):
            missing = set(graph.nodes) ^ set(programs)
            raise SimulationError(
                f"programs must cover exactly the graph's nodes; mismatch on {sorted(map(repr, missing))}"
            )
        self.graph = graph.copy()
        self.programs: dict[Node, NodeProgram] = dict(programs)
        self.medium = medium if medium is not None else RadioMedium()
        self.seed = seed
        self.initiators = frozenset(initiators)
        self.enforce_no_spontaneous = enforce_no_spontaneous
        self.faults = faults if faults is not None else FaultSchedule()
        # A fault naming a node the graph lacks is a configuration
        # error: fail at construction, not silently mid-run.
        self.faults.validate_for_graph(self.graph)
        self.metrics = RunMetrics()
        self.trace: Trace | None = Trace() if record_trace else None
        # Telemetry is snapshotted at construction, like the fault
        # schedule: None (the common case) keeps every hot-path check a
        # single attribute load.  Enabling telemetry never implies
        # tracing — the two are independent (and trace memory matters).
        self._telemetry: Telemetry | None = (
            telemetry if telemetry is not None else get_active()
        )
        # Causal slot provenance (see repro.sim.provenance): opt-in per
        # engine or ambiently via REPRO_PROVENANCE=1 (checked once, at
        # construction).  Off (the default) allocates nothing — the hot
        # path pays one None check, exactly like tracing.
        if not record_provenance:
            record_provenance = os.environ.get("REPRO_PROVENANCE", "") not in ("", "0")
        self._prov: ProvenanceRecorder | None = (
            ProvenanceRecorder(telemetry=self._telemetry)
            if record_provenance
            else None
        )
        self.slot = 0
        self._crashed: set[Node] = set()
        self._has_received: set[Node] = set(self.initiators)
        self._contexts: dict[Node, Context] = {
            node: Context(
                node=node,
                neighbor_ids=self.graph.neighbors(node),
                rng=rng_mod.spawn_for_node(seed, node),
            )
            for node in self.graph.nodes
        }
        self._started = False
        # Done-set: nodes whose is_done() has returned True.  is_done is
        # documented as monotone ("True once this node will never act
        # again"), so each program is asked at most once per slot and
        # never again after reporting done.  The engine iterates the
        # pre-bound active list instead of re-filtering programs.
        self._done: set[Node] = set()
        self._done_slot = -1  # slot the done-set was last refreshed at
        self._all_done_cached = False
        self._active: list[tuple[Node, NodeProgram, Context]] = [
            (node, program, self._contexts[node])
            for node, program in self.programs.items()
        ]
        # The fault schedule is snapshotted at construction and indexed
        # by slot, so fault-free runs pay one attribute check per slot.
        self._edge_faults_by_slot, self._crashes_by_slot = self.faults.by_slot()
        self._have_faults = not self.faults.is_empty()
        # Transient crashes: entries pruned from the active list are
        # parked here so recovery can restore them, program state intact.
        self._crashed_entries: dict[Node, tuple[Node, NodeProgram, Context]] = {}
        self._awaiting_recovery: set[Node] = set()
        self._recoveries_by_slot: dict[int, list[Node]] = {}
        for crash in self.faults.crash_faults:
            if crash.until is not None:
                self._recoveries_by_slot.setdefault(crash.until, []).append(crash.node)
        # Window faults: jammers (per-slot noise set) and lossy links.
        self._jam_faults = tuple(self.faults.jam_faults)
        self._jammed_now: frozenset[Node] | set[Node] = frozenset()
        self._loss_faults = tuple(self.faults.link_loss_faults)
        # Adjacency maps: per node, the frozenset it can hear (audible)
        # and the frozenset that hears it (hearers).  Rebuilt lazily
        # whenever the graph's version moves (edge faults, or any
        # out-of-band mutation of ``self.graph``).
        self._fast_medium = type(self.medium) is RadioMedium
        self._audible: dict[Node, frozenset[Node]] = {}
        self._hearers: dict[Node, frozenset[Node]] = {}
        self._audible_version = -1
        self._audible_map()

    # -- public API -----------------------------------------------------

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run until done / stop condition / ``max_slots``; return the result."""
        if max_slots < 0:
            raise SimulationError("max_slots must be non-negative")
        if not self._started:
            for node, program in self.programs.items():
                program.on_start(self._contexts[node])
            self._started = True
        tel = self._telemetry
        # Perf attribution (repro.perf): snapshot once per run — with no
        # session active the per-slot loop below pays nothing.  The run
        # is one "engine.run" span; each slot batch laps an inner
        # "engine.slot_batch" span so sampled time and traced memory
        # are attributed batch by batch.
        perf = _perf.get_active()
        if perf is not None:
            perf.span_push("engine.run")
            if tel is not None:
                perf.span_push("engine.slot_batch")
        if tel is not None:
            start_slot = batch_slot0 = self.slot
            next_batch = self.slot + tel.slot_batch
            run_t0 = batch_t0 = time.perf_counter()
            tel.begin_run(
                nodes=self.graph.num_nodes(),
                edges=self.graph.num_edges(),
                seed=self.seed,
                slot=self.slot,
                max_slots=max_slots,
                initiators=len(self.initiators),
                faults=self.faults.counts() if self._have_faults else {},
            )
        while self.slot < max_slots:
            if stop_when is not None and stop_when(self):
                break
            if self._all_done():
                break
            self.step()
            if tel is not None and self.slot >= next_batch:
                now = time.perf_counter()
                dur = now - batch_t0
                batch_slots = self.slot - batch_slot0
                rate = batch_slots / dur if dur > 0 else 0.0
                tel.emit(
                    "slot_batch",
                    slot=self.slot,
                    slots=batch_slots,
                    dur_s=dur,
                    slots_per_sec=round(rate, 1),
                )
                tel.gauge("slots_per_sec", round(rate, 1), slot=self.slot)
                batch_t0, batch_slot0 = now, self.slot
                next_batch = self.slot + tel.slot_batch
                if perf is not None:
                    perf.span_pop()
                    perf.span_push("engine.slot_batch")
        if perf is not None:
            if tel is not None:
                perf.span_pop()  # engine.slot_batch
            perf.span_pop()  # engine.run
        if tel is not None:
            wall = time.perf_counter() - run_t0
            slots_run = self.slot - start_slot
            metrics = self.metrics
            extra: dict[str, Any] = {}
            if metrics.first_reception:
                # The slot the last first-reception landed in — when all
                # nodes are informed this *is* the broadcast completion
                # slot Theorem 4 budgets (repro.monitor checks it live).
                extra["last_reception_slot"] = max(metrics.first_reception.values())
            tel.end_run(
                slots=self.slot,
                slots_run=slots_run,
                wall_s=wall,
                slots_per_sec=round(slots_run / wall, 1) if wall > 0 else 0.0,
                transmissions=metrics.transmissions,
                collisions=metrics.collisions,
                deliveries=metrics.deliveries,
                jam_transmissions=metrics.jam_transmissions,
                informed=len(self._has_received),
                **extra,
            )
        return RunResult(
            slots=self.slot,
            metrics=self.metrics,
            trace=self.trace,
            programs=self.programs,
            graph=self.graph,
            provenance=self._prov,
        )

    def step(self) -> None:
        """Execute exactly one time-slot."""
        self._apply_faults()
        messages, receivers = self._collect_intents()
        jammed = self._jammed_now
        if jammed:
            # Inject undecodable noise on behalf of each live jammer;
            # _resolve recognises these senders and never delivers them.
            for node in jammed:
                messages[node] = JAMMING
        self._resolve(messages, receivers)
        self.slot += 1
        self.metrics.slots = self.slot

    # -- internals --------------------------------------------------------

    def _apply_faults(self) -> None:
        if not self._have_faults:
            return
        slot = self.slot
        edge_faults = self._edge_faults_by_slot.get(slot, ())
        for fault in edge_faults:
            fault.apply(self.graph)
        # Recoveries fire before same-slot crashes: a node whose outage
        # ends at slot s is up for slot s unless a new crash hits it.
        recoveries = self._recoveries_by_slot.get(slot)
        if recoveries:
            for node in recoveries:
                self._awaiting_recovery.discard(node)
                if node in self._crashed:
                    self._crashed.discard(node)
                    entry = self._crashed_entries.pop(node, None)
                    if entry is not None and node not in self._done:
                        # This slot's done-pass may already have run (the
                        # run loop's check is cached), so stamp the slot
                        # here or the program would act on a stale one.
                        entry[2].slot = slot
                        self._active.append(entry)
        crashes = self._crashes_by_slot.get(slot)
        if crashes:
            prov = self._prov
            for crash in crashes:
                self._crashed.add(crash.node)
                if crash.until is not None:
                    self._awaiting_recovery.add(crash.node)
                if prov is not None:
                    prov.note(slot, crash.node, PROV_FAULT, (), detail="crashed")
            crashed = self._crashed
            still_active = []
            for entry in self._active:
                if entry[0] in crashed:
                    self._crashed_entries[entry[0]] = entry
                else:
                    still_active.append(entry)
            self._active = still_active
        if self._jam_faults:
            self._jammed_now = {
                fault.node
                for fault in self._jam_faults
                if fault.active_at(slot) and fault.node not in self._crashed
            }
        tel = self._telemetry
        if tel is not None and (edge_faults or recoveries or crashes):
            # Discrete activations only; continuous jam pressure is
            # reported as the jammed-set size alongside them.
            tel.emit(
                "fault",
                slot=slot,
                edges_cut=len(edge_faults),
                crashes=len(crashes) if crashes else 0,
                recoveries=len(recoveries) if recoveries else 0,
                jamming=len(self._jammed_now),
            )

    def _audible_map(self) -> dict[Node, frozenset[Node]]:
        """Per-node audibility sets, refreshed when the graph changes."""
        graph = self.graph
        if self._audible_version != graph.version:
            audible = graph.audible
            self._audible = {node: audible(node) for node in graph}
            if isinstance(graph, DiGraph):
                hearers = graph.hearers
                self._hearers = {node: hearers(node) for node in graph}
            else:
                self._hearers = self._audible  # symmetric links
            self._audible_version = graph.version
        return self._audible

    def _refresh_done(self) -> bool:
        """Evaluate ``is_done`` once per live node for the current slot.

        Updates the persistent done-set, prunes the active list, and
        returns True iff every non-crashed node is done.  Idempotent
        within a slot, so the run-loop's termination check and
        :meth:`_collect_intents` share a single evaluation per node per
        slot.
        """
        slot = self.slot
        if self._done_slot == slot:
            return self._all_done_cached
        done = self._done
        active: list[tuple[Node, NodeProgram, Context]] = []
        for entry in self._active:
            ctx = entry[2]
            ctx.slot = slot
            if entry[1].is_done(ctx):
                done.add(entry[0])
            else:
                active.append(entry)
        self._active = active
        self._done_slot = slot
        # A run is not over while a crashed node has a pending recovery:
        # it will rejoin the active list and may act again.
        self._all_done_cached = not active and not self._awaiting_recovery
        return self._all_done_cached

    def _collect_intents(
        self,
    ) -> tuple[dict[Node, Any], list[tuple[Node, NodeProgram, Context]]]:
        """Ask every live, not-done program to act; split the intents.

        Returns ``(messages, receivers)``: the map transmitter → payload
        and the ``(node, program, context)`` entries of nodes listening
        this slot (idlers appear in neither).
        """
        self._refresh_done()
        slot = self.slot
        enforce = self.enforce_no_spontaneous
        has_received = self._has_received
        messages: dict[Node, Any] = {}
        receivers: list[tuple[Node, NodeProgram, Context]] = []
        entries = self._active
        jammed = self._jammed_now
        if jammed:
            # A jamming node's program is suspended for the slot; the
            # noise itself is injected by step() after intents are in.
            entries = [entry for entry in entries if entry[0] not in jammed]
        for entry in entries:
            intent = entry[1].act(entry[2])
            if isinstance(intent, Receive):
                receivers.append(entry)
            elif isinstance(intent, Transmit):
                node = entry[0]
                if enforce and node not in has_received:
                    raise ProtocolError(
                        f"node {node!r} transmitted spontaneously at slot {slot} "
                        "(Definition 1, rule 5; pass enforce_no_spontaneous=False to allow)"
                    )
                messages[node] = intent.message
            elif not isinstance(intent, Idle):
                raise ProtocolError(
                    f"node {entry[0]!r} returned {intent!r}; expected Transmit/Receive/Idle"
                )
        return messages, receivers

    def _resolve(
        self,
        messages: dict[Node, Any],
        receivers: list[tuple[Node, NodeProgram, Context]],
    ) -> None:
        metrics = self.metrics
        jammed = self._jammed_now
        num_transmitters = len(messages)
        if num_transmitters:
            if jammed:
                # Every jammer is a messages key (step() injects them);
                # noise is metered apart from protocol transmissions.
                num_jamming = len(jammed)
                metrics.jam_transmissions += num_jamming
                metrics.transmissions += num_transmitters - num_jamming
                per_node = metrics.transmissions_per_node
                for node in messages:
                    if node not in jammed:
                        per_node[node] = per_node.get(node, 0) + 1
            else:
                metrics.transmissions += num_transmitters
                per_node = metrics.transmissions_per_node
                for node in messages:
                    per_node[node] = per_node.get(node, 0) + 1

        slot = self.slot
        tracing = self.trace is not None
        if not receivers:
            if tracing:
                self.trace.append(
                    SlotRecord(
                        slot=slot,
                        transmitters=messages,
                        receivers=frozenset(),
                        heard={},
                        deliveries={},
                        conflict_counts={},
                    )
                )
            return

        audible_map = self._audible_map()
        medium = self.medium
        fast_medium = self._fast_medium
        prov = self._prov
        first_reception = metrics.first_reception
        col_per_node = metrics.collisions_per_node
        col_get = col_per_node.get
        has_received = self._has_received
        deliveries: dict[Node, tuple[Node, Any]] = {}
        conflict_counts: dict[Node, int] = {}
        heard: dict[Node, Any] = {}
        collisions = 0
        observations: list[Any] = []

        # Lossy links make audibility receiver-specific, so the shared
        # scatter counts below would be wrong; such slots take the
        # per-receiver path with a loss filter.
        losses = self._losses_at(slot) if self._loss_faults else ()

        # Transmitter-side scatter beats per-receiver set intersection
        # when contention is sparse (the common broadcast regime): the
        # energy counts come from one C-speed Counter.update pass over
        # Σ deg(transmitter) hearers, then each receiver is O(1); the
        # sender is recovered by intersection only on clean deliveries.
        if fast_medium and not losses and 0 < num_transmitters <= len(receivers):
            counts: Counter[Node] = Counter()
            count_hearers = counts.update
            hearers_map = self._hearers
            for transmitter in messages:
                count_hearers(hearers_map[transmitter])
            counts_get = counts.get
            for entry in receivers:
                receiver = entry[0]
                num_audible = counts_get(receiver, 0)
                if num_audible == 1:
                    neighborhood = audible_map[receiver]
                    if num_transmitters < len(neighborhood):
                        sender = next(t for t in messages if t in neighborhood)
                    else:
                        sender = next(t for t in neighborhood if t in messages)
                    if jammed and sender in jammed:
                        observation = SILENCE  # lone jammer: pure noise
                        if prov is not None:
                            prov.note(slot, receiver, PROV_FAULT, (sender,),
                                      detail="jamming")
                    else:
                        observation = messages[sender]
                        metrics.deliveries += 1
                        if receiver not in first_reception:
                            first_reception[receiver] = slot
                        has_received.add(receiver)
                        if tracing:
                            deliveries[receiver] = (sender, observation)
                        if prov is not None:
                            prov.note(slot, receiver, PROV_DELIVERED, (sender,))
                else:
                    observation = SILENCE
                    if num_audible >= 2:
                        collisions += 1
                        col_per_node[receiver] = col_get(receiver, 0) + 1
                        if prov is not None:
                            prov.note(
                                slot, receiver, PROV_COLLISION,
                                tuple(self._audible_transmitters(receiver, messages)),
                            )
                    elif prov is not None:
                        prov.note(slot, receiver, PROV_SILENCE, ())
                observations.append(observation)
                if tracing:
                    conflict_counts[receiver] = num_audible
                    heard[receiver] = observation
        else:
            for entry in receivers:
                receiver = entry[0]
                neighborhood = audible_map[receiver]
                # Intersect from the smaller side.
                if num_transmitters < len(neighborhood):
                    audible = [node for node in messages if node in neighborhood]
                else:
                    audible = [node for node in neighborhood if node in messages]
                audible_pre_loss = audible
                if losses and audible:
                    audible = [
                        node
                        for node in audible
                        if not self._erased(losses, slot, node, receiver)
                    ]
                num_audible = len(audible)
                sender = audible[0] if num_audible == 1 else None
                clean = sender is not None and not (jammed and sender in jammed)
                if fast_medium:  # inlined RadioMedium.resolve
                    observation = messages[sender] if clean else SILENCE
                else:
                    observation = medium.resolve(receiver, audible, messages)
                    if sender is not None and not clean:
                        # A lone jammer is energy without content.
                        observation = (
                            COLLISION if medium.detects_collisions else SILENCE
                        )
                if clean:
                    metrics.deliveries += 1
                    if receiver not in first_reception:
                        first_reception[receiver] = slot
                    has_received.add(receiver)
                    if tracing:
                        deliveries[receiver] = (sender, messages[sender])
                elif num_audible >= 2:
                    collisions += 1
                    col_per_node[receiver] = col_get(receiver, 0) + 1
                if prov is not None:
                    if clean:
                        prov.note(slot, receiver, PROV_DELIVERED, (sender,))
                    elif num_audible >= 2:
                        prov.note(slot, receiver, PROV_COLLISION, tuple(audible))
                    elif num_audible == 1:  # lone jammer
                        prov.note(slot, receiver, PROV_FAULT, (sender,),
                                  detail="jamming")
                    elif audible_pre_loss:  # all receptions erased by loss faults
                        prov.note(slot, receiver, PROV_FAULT,
                                  tuple(audible_pre_loss), detail="link-loss")
                    else:
                        prov.note(slot, receiver, PROV_SILENCE, ())
                observations.append(observation)
                if tracing:
                    conflict_counts[receiver] = num_audible
                    heard[receiver] = observation
        metrics.collisions += collisions

        # Observations are delivered only after the whole slot resolves,
        # preserving simultaneity.
        for entry, observation in zip(receivers, observations):
            entry[1].on_observe(entry[2], observation)

        if tracing:
            self.trace.append(
                SlotRecord(
                    slot=slot,
                    transmitters=messages,
                    receivers=frozenset(entry[0] for entry in receivers),
                    heard=heard,
                    deliveries=deliveries,
                    conflict_counts=conflict_counts,
                )
            )

    def _losses_at(self, slot: int) -> tuple[tuple[int, LinkLossFault], ...]:
        """The (index, fault) pairs of loss windows active this slot."""
        return tuple(
            (index, fault)
            for index, fault in enumerate(self._loss_faults)
            if fault.active_at(slot)
        )

    def _erased(
        self,
        losses: tuple[tuple[int, LinkLossFault], ...],
        slot: int,
        transmitter: Node,
        receiver: Node,
    ) -> bool:
        """Whether this directed reception is erased by an active loss fault.

        The erasure coin is a pure function of (engine seed, fault
        index, slot, transmitter, receiver), so loss patterns replay
        identically across runs, processes and iteration orders.
        """
        for index, fault in losses:
            if fault.covers(transmitter, receiver):
                draw = rng_mod.derive_seed(
                    self.seed, "link-loss", index, slot, transmitter, receiver
                )
                if draw / 18446744073709551616.0 < fault.p:  # / 2**64 -> [0, 1)
                    return True
        return False

    def _audible_transmitters(self, receiver: Node, messages: dict[Node, Any]) -> list[Node]:
        neighborhood = self._audible_map()[receiver]
        if len(messages) < len(neighborhood):
            return [node for node in messages if node in neighborhood]
        return [node for node in neighborhood if node in messages]

    def _all_done(self) -> bool:
        return self._refresh_done()
