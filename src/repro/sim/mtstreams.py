"""Vectorized banks of CPython-compatible Mersenne Twister streams.

The reference engine gives every node its own ``random.Random`` seeded
by :func:`repro.rng.spawn_for_node`, and seed-for-seed parity between
backends (the contract the parity suite enforces) therefore requires
the NumPy backend to draw *bit-identical* uniforms from *the same*
per-node streams.  ``numpy.random`` cannot do that — its MT19937 uses
a different seeding algorithm and a different double extraction — so
this module reimplements exactly what CPython does, across many
streams at once:

* :func:`init_streams` replicates ``random.Random(seed).seed`` for a
  vector of 64-bit seeds: the ``init_genrand(19650218)`` base state,
  then ``init_by_array`` over the seed split into little-endian 32-bit
  words (one word when the high half is zero, two otherwise).
* :class:`MTStreams` serves ``random.random()`` values stream by
  stream.  State lives in a ``(624, S)`` uint32 matrix (row-major over
  the Mersenne index, so the twist works on contiguous rows); each
  twist of a stream yields a block of 312 doubles via the standard
  temper + 53-bit extraction ``((a >> 5) * 2^26 + (b >> 6)) / 2^53``.

Streams advance independently: a node that flips no coin this slot
consumes nothing, which is what keeps the per-node draw *order* — the
only thing parity depends on — identical to the reference engine.

This module imports NumPy at module load; gate imports through
:mod:`repro.sim.backends` so the library works without it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["init_streams", "MTStreams"]

_U32 = np.uint32
_UPPER = _U32(0x80000000)
_LOWER = _U32(0x7FFFFFFF)
_MATRIX_A = _U32(0x9908B0DF)

_N = 624  # MT19937 state words
_M = 397  # twist offset
#: random() values produced per twist (two state words per double).
BLOCK = _N // 2


def _base_state() -> np.ndarray:
    """``init_genrand(19650218)`` — the seed-independent prefix state."""
    mt = np.empty(_N, dtype=np.uint32)
    mt[0] = 19650218
    for i in range(1, _N):
        prev = int(mt[i - 1])
        mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
    return mt


_BASE = _base_state()


def init_streams(seeds) -> np.ndarray:
    """State matrix ``(624, S)`` equal to ``random.Random(seed)`` per seed.

    ``seeds`` are the non-negative 64-bit ints :func:`repro.rng.derive_seed`
    produces.  CPython splits such a seed into 32-bit words little-endian
    and feeds them to ``init_by_array``; a seed below 2**32 uses a
    one-word key, which the two-word recurrence reproduces by selecting
    the one-word term stream-wise (``keylen2`` mask).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    key0 = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    key1 = (seeds >> np.uint64(32)).astype(np.uint32)
    keylen2 = key1 != 0
    mt = np.repeat(_BASE[:, None], len(seeds), axis=1)
    i = 1
    jmod = 0
    # key[j] + j for the two-word streams; one-word streams always add
    # key[0] + 0 (j stays 0 when keylen == 1).
    term2 = [key0.copy(), key1 + _U32(1)]
    with np.errstate(over="ignore"):
        for _ in range(_N):
            term = np.where(keylen2, term2[jmod], key0)
            prev = mt[i - 1]
            mt[i] = (mt[i] ^ ((prev ^ (prev >> _U32(30))) * _U32(1664525))) + term
            i += 1
            jmod ^= 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
        for _ in range(_N - 1):
            prev = mt[i - 1]
            mt[i] = (mt[i] ^ ((prev ^ (prev >> _U32(30))) * _U32(1566083941))) - _U32(i)
            i += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
    mt[0] = 0x80000000
    return np.ascontiguousarray(mt)


def _twist(mt: np.ndarray) -> None:
    """Advance every stream one generation, in place.

    Chunks stay <= 227 wide so each reads only state already final for
    this generation (the dependency ``mt[i + 397]`` crosses into the new
    state from index 227 on).
    """
    mtn = np.empty_like(mt)
    with np.errstate(over="ignore"):
        for lo, hi in ((0, 227), (227, 454), (454, _N - 1)):
            y = (mt[lo:hi] & _UPPER) | (mt[lo + 1 : hi + 1] & _LOWER)
            dep = mt[lo + _M : hi + _M] if hi + _M <= _N else mtn[lo + _M - _N : hi + _M - _N]
            # (y & 1) * A == A where the low bit is set, 0 elsewhere.
            mtn[lo:hi] = dep ^ (y >> _U32(1)) ^ ((y & _U32(1)) * _MATRIX_A)
        y = (mt[_N - 1] & _UPPER) | (mtn[0] & _LOWER)
        mtn[_N - 1] = mtn[_M - 1] ^ (y >> _U32(1)) ^ ((y & _U32(1)) * _MATRIX_A)
    mt[:] = mtn


def _extract(mt: np.ndarray) -> np.ndarray:
    """Temper a twisted state and pack it into ``(312, S)`` doubles."""
    with np.errstate(over="ignore"):
        w = mt ^ (mt >> _U32(11))
        w ^= (w << _U32(7)) & _U32(0x9D2C5680)
        w ^= (w << _U32(15)) & _U32(0xEFC60000)
        w ^= w >> _U32(18)
    a = (w[0::2] >> _U32(5)).astype(np.float64)
    b = (w[1::2] >> _U32(6)).astype(np.float64)
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)


class MTStreams:
    """A bank of independent ``random.Random``-equivalent streams.

    ``draw(idx)`` returns, for each stream index in ``idx``, the next
    value its ``random.random()`` would produce.  Only the streams in
    ``idx`` advance.  Exhausted streams are refilled a 312-value block
    at a time; when every stream needs refilling at once the twist runs
    over the whole contiguous state matrix (the fast path on the first
    draw), otherwise only the needed columns are gathered.
    """

    def __init__(self, seeds) -> None:
        self._mt = init_streams(seeds)
        self._count = self._mt.shape[1]
        self._buf = np.empty((BLOCK, self._count), dtype=np.float64)
        self._pos = np.zeros(self._count, dtype=np.int64)
        # Fill every stream's first block now, while the whole state
        # matrix can be twisted contiguously in one pass.  Streams begin
        # drawing at scattered slots; lazily filling each on first draw
        # would splinter this into many gather-refills, which cost ~6x
        # more per stream than the full-matrix path.
        _twist(self._mt)
        self._buf[:] = _extract(self._mt)

    def __len__(self) -> int:
        return self._count

    def draw(self, idx: np.ndarray) -> np.ndarray:
        """Next ``random.random()`` value of each stream in ``idx``."""
        pos = self._pos
        need = idx[pos[idx] >= BLOCK]
        if need.size:
            self._refill(need)
        vals = self._buf[pos[idx], idx]
        pos[idx] += 1
        return vals

    def _refill(self, idx: np.ndarray) -> None:
        if idx.size == self._count:
            _twist(self._mt)
            self._buf[:] = _extract(self._mt)
        else:
            cols = self._mt[:, idx]  # fancy index -> contiguous copy
            _twist(cols)
            self._mt[:, idx] = cols
            self._buf[:, idx] = _extract(cols)
        self._pos[idx] = 0
