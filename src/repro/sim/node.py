"""The node-program abstraction.

A :class:`NodeProgram` is the per-processor state machine of the paper's
Definition 1.  The engine drives each program through the same two-beat
cycle every time-slot:

1. :meth:`NodeProgram.act` — the program announces its *intent* for the
   slot: :class:`Transmit` (with a message), :class:`Receive`, or
   :class:`Idle`.
2. The medium resolves all intents simultaneously; then, for programs
   that chose ``Receive``, the engine calls
   :meth:`NodeProgram.on_observe` with what was heard.

Programs see the world only through their :class:`Context`: their ID,
their neighbours' IDs (the paper's "initial input"), the global slot
counter (the model is synchronous, so a common clock is part of the
model), and a private random stream.  They have **no** access to the
topology, to other programs' state, or to collision information unless
the medium provides it.

Rule 5 of Definition 1 — no spontaneous transmissions — is enforced by
the engine when ``enforce_no_spontaneous=True``: a program that
transmits before having received any message (and is not a designated
initiator) raises :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Transmit", "Receive", "Idle", "Intent", "Context", "NodeProgram"]

Node = Hashable


@dataclass(frozen=True)
class Transmit:
    """Intent: act as a transmitter this slot, sending ``message``."""

    message: Any


@dataclass(frozen=True)
class Receive:
    """Intent: act as a receiver this slot."""


@dataclass(frozen=True)
class Idle:
    """Intent: stay inactive this slot (neither transmit nor receive)."""


Intent = Transmit | Receive | Idle


@dataclass
class Context:
    """Everything a node program may legally observe.

    Attributes
    ----------
    node:
        This processor's ID.
    neighbor_ids:
        IDs of this processor's neighbours at *start of run* — the
        paper's initial input.  Randomized (ID-oblivious) protocols
        must not read it; deterministic protocols may.
    rng:
        This processor's private coin-flip stream.
    slot:
        The current global time-slot number (updated by the engine).
    """

    node: Node
    neighbor_ids: frozenset[Node]
    rng: random.Random
    slot: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


class NodeProgram:
    """Base class for per-processor protocol logic.

    Subclasses override :meth:`act` (mandatory) and usually
    :meth:`on_observe`.  The engine constructs one instance per node.
    """

    def on_start(self, ctx: Context) -> None:
        """Called once before slot 0.  Default: nothing."""

    def act(self, ctx: Context) -> Intent:
        """Return this node's intent for the current slot."""
        raise NotImplementedError

    def on_observe(self, ctx: Context, heard: Any) -> None:
        """Called after a ``Receive`` slot with what was heard.

        In the no-collision-detection medium ``heard`` is either a
        delivered message or :data:`~repro.sim.medium.SILENCE` — the
        latter covering *both* "nobody transmitted" and "a collision
        occurred", indistinguishably.  In the collision-detection
        medium ``heard`` may also be :data:`~repro.sim.medium.COLLISION`.
        """

    def is_done(self, ctx: Context) -> bool:
        """True once this node will never act again (lets runs end early)."""
        return False

    # -- reporting ------------------------------------------------------

    def result(self) -> Any:
        """Protocol-specific output (e.g. a BFS distance label)."""
        return None
