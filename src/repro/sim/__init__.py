"""Synchronous radio-network simulator (the paper's model, Definition 1).

Time proceeds in numbered slots.  In each slot every processor acts as a
transmitter, a receiver, or is inactive.  A receiver hears a message in
slot ``t`` iff **exactly one** of its neighbours transmits in slot ``t``;
otherwise it hears nothing, and — in the default no-collision-detection
medium — cannot distinguish silence from collision.

Entry point: :class:`~repro.sim.engine.Engine` (the canonical
reference backend).  A vectorized NumPy backend for batched campaigns
lives in :mod:`repro.sim.vectorized`; select between them with
:mod:`repro.sim.backends` (:func:`resolve_backend`).  The vectorized
module itself is *not* imported here — it requires NumPy, which is an
optional extra.
"""

from repro.sim.backends import (
    BACKENDS,
    BackendUnavailable,
    available_backends,
    numpy_available,
    resolve_backend,
)
from repro.sim.engine import Engine, RunResult
from repro.sim.faults import (
    CrashFault,
    EdgeFault,
    FaultSchedule,
    JamFault,
    LinkLossFault,
)
from repro.sim.medium import (
    COLLISION,
    JAMMING,
    SILENCE,
    CollisionDetectingMedium,
    Medium,
    RadioMedium,
)
from repro.sim.metrics import RunMetrics
from repro.sim.node import Context, Idle, Intent, NodeProgram, Receive, Transmit
from repro.sim.provenance import ProvenanceRecorder, SlotProvenance
from repro.sim.trace import SlotRecord, Trace

__all__ = [
    "Engine",
    "RunResult",
    "BACKENDS",
    "BackendUnavailable",
    "available_backends",
    "numpy_available",
    "resolve_backend",
    "Context",
    "NodeProgram",
    "Intent",
    "Transmit",
    "Receive",
    "Idle",
    "Medium",
    "RadioMedium",
    "CollisionDetectingMedium",
    "SILENCE",
    "COLLISION",
    "JAMMING",
    "RunMetrics",
    "Trace",
    "SlotRecord",
    "ProvenanceRecorder",
    "SlotProvenance",
    "FaultSchedule",
    "EdgeFault",
    "CrashFault",
    "JamFault",
    "LinkLossFault",
]
