"""Causal slot provenance: why a node did (not) receive in a slot.

The engine's :class:`~repro.sim.metrics.RunMetrics` answer *what*
happened (how many collisions, when each node was first reached); this
module answers *why*.  With ``record_provenance=True`` (or
``REPRO_PROVENANCE=1``) the engine captures, for every listening node
in every slot, the set of audible transmitters and the resolved
outcome:

* ``delivered`` — exactly one audible neighbour transmitted; the
  message went through.
* ``collision`` — two or more audible neighbours transmitted; per the
  paper's Definition 1 the node heard nothing (or noise, with a
  collision-detecting medium).
* ``silence`` — no audible neighbour transmitted.
* ``fault-suppressed`` — the medium alone would have delivered, but an
  injected fault intervened (a lone jammer, a lossy link erasure, or
  the node itself crashing).

Like tracing, provenance is strictly opt-in: with it off the engine
allocates no recorder and the hot path pays one ``None`` check per
slot.  When telemetry is active each entry is also emitted as a
``prov`` event, so ``python -m repro obs ingest`` can load it into the
run store and ``python -m repro obs explain`` can answer "why didn't
node v receive in slot t?" long after the run ended.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

__all__ = [
    "DELIVERED",
    "COLLISION",
    "SILENCE",
    "FAULT_SUPPRESSED",
    "OUTCOMES",
    "SlotProvenance",
    "ProvenanceRecorder",
    "explain_entry",
    "explain_missing",
]

Node = Hashable

DELIVERED = "delivered"
COLLISION = "collision"
SILENCE = "silence"
FAULT_SUPPRESSED = "fault-suppressed"

#: Every outcome a provenance entry may carry.
OUTCOMES = frozenset({DELIVERED, COLLISION, SILENCE, FAULT_SUPPRESSED})


class SlotProvenance:
    """One (node, slot) causal record."""

    __slots__ = ("node", "slot", "outcome", "transmitters", "detail")

    def __init__(
        self,
        node: Node,
        slot: int,
        outcome: str,
        transmitters: tuple[Node, ...],
        detail: str | None = None,
    ) -> None:
        self.node = node
        self.slot = slot
        self.outcome = outcome
        self.transmitters = transmitters
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotProvenance(node={self.node!r}, slot={self.slot}, "
            f"outcome={self.outcome!r}, transmitters={self.transmitters!r}, "
            f"detail={self.detail!r})"
        )


class ProvenanceRecorder:
    """Accumulates :class:`SlotProvenance` entries for one engine run.

    Entries are keyed on ``(node, slot)``; the engine writes at most
    one per listening node per slot.  When constructed with a telemetry
    recorder, every entry is forwarded as a ``prov`` event so the
    provenance survives the process (and can be ingested into the obs
    run store).
    """

    def __init__(self, telemetry: Any | None = None) -> None:
        self._entries: dict[tuple[Node, int], SlotProvenance] = {}
        self._telemetry = telemetry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SlotProvenance]:
        return iter(self._entries.values())

    def note(
        self,
        slot: int,
        node: Node,
        outcome: str,
        transmitters: tuple[Node, ...] = (),
        detail: str | None = None,
    ) -> None:
        """Record one causal entry (and ship it to telemetry, if any)."""
        self._entries[(node, slot)] = SlotProvenance(
            node, slot, outcome, transmitters, detail
        )
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.emit(
                "prov",
                slot=slot,
                node=node,
                outcome=outcome,
                tx=list(transmitters),
                **({"detail": detail} if detail else {}),
            )

    def get(self, node: Node, slot: int) -> SlotProvenance | None:
        return self._entries.get((node, slot))

    def for_node(self, node: Node) -> list[SlotProvenance]:
        """All entries of one node, slot-ordered."""
        return sorted(
            (e for (n, _), e in self._entries.items() if n == node),
            key=lambda e: e.slot,
        )

    def explain(self, node: Node, slot: int) -> str:
        """A one-line human answer to "why this outcome at this slot?"."""
        entry = self.get(node, slot)
        if entry is None:
            return explain_missing(node, slot)
        return explain_entry(entry.node, entry.slot, entry.outcome,
                             entry.transmitters, entry.detail)


def explain_entry(
    node: Any,
    slot: int,
    outcome: str,
    transmitters: tuple | list,
    detail: str | None = None,
) -> str:
    """Render one provenance entry as a causal sentence.

    Shared by the live :class:`ProvenanceRecorder` and the obs store's
    ``explain`` query, so both paths give the same answer.
    """
    tx = ", ".join(str(t) for t in transmitters)
    if outcome == DELIVERED:
        return (
            f"node {node} RECEIVED in slot {slot}: {tx or 'a neighbour'} "
            f"was the only audible transmitter"
        )
    if outcome == COLLISION:
        count = len(transmitters)
        who = f" ({tx})" if tx else ""
        return (
            f"node {node} heard nothing in slot {slot}: COLLISION — "
            f"{count} audible neighbours transmitted simultaneously{who}"
        )
    if outcome == SILENCE:
        return (
            f"node {node} heard nothing in slot {slot}: SILENCE — "
            f"no audible neighbour transmitted"
        )
    if outcome == FAULT_SUPPRESSED:
        cause = detail or "an injected fault"
        who = f" (transmitters: {tx})" if tx else ""
        return (
            f"node {node} heard nothing in slot {slot}: FAULT — "
            f"reception suppressed by {cause}{who}"
        )
    return f"node {node} at slot {slot}: {outcome}" + (f" ({detail})" if detail else "")


def explain_missing(node: Any, slot: int) -> str:
    """The answer when no entry exists for (node, slot)."""
    return (
        f"no provenance entry for node {node} at slot {slot}: the node was "
        f"not listening that slot (idle, transmitting, done, or crashed), "
        f"the slot was never executed, or provenance recording was off"
    )
