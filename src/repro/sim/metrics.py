"""Aggregate per-run metrics.

:class:`RunMetrics` is always collected (it is cheap), unlike the full
:class:`~repro.sim.trace.Trace`.  It carries everything the paper's
experiments measure:

* ``slots`` — total time-slots executed (the paper's complexity measure);
* ``first_reception`` — per node, the slot of the first message delivery
  (the random variable ``T_v`` of Lemma 3);
* ``transmissions`` — total transmit events (paper property 2);
* ``collisions`` — total (receiver, slot) conflict events;
* ``deliveries`` — total successful message deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["RunMetrics"]

Node = Hashable


@dataclass
class RunMetrics:
    """Counters accumulated by the engine during one run."""

    slots: int = 0
    transmissions: int = 0
    collisions: int = 0
    deliveries: int = 0
    #: noise slots injected by jammer faults (kept out of ``transmissions``
    #: so property-2 message accounting is undisturbed by adversity)
    jam_transmissions: int = 0
    first_reception: dict[Node, int] = field(default_factory=dict)
    transmissions_per_node: dict[Node, int] = field(default_factory=dict)

    def note_transmission(self, node: Node) -> None:
        self.transmissions += 1
        self.transmissions_per_node[node] = self.transmissions_per_node.get(node, 0) + 1

    def note_delivery(self, node: Node, slot: int) -> None:
        self.deliveries += 1
        self.first_reception.setdefault(node, slot)

    def note_collision(self) -> None:
        self.collisions += 1

    # -- derived quantities ---------------------------------------------

    def completion_slot(self, nodes: list[Node], *, skip: frozenset[Node] = frozenset()) -> int | None:
        """The slot by which every node in ``nodes`` (except ``skip``,
        typically the source) had received a message — the broadcast
        completion time — or ``None`` if some node never received.
        """
        times = []
        for node in nodes:
            if node in skip:
                continue
            if node not in self.first_reception:
                return None
            times.append(self.first_reception[node])
        return max(times) if times else 0

    def coverage(self, nodes: list[Node], *, skip: frozenset[Node] = frozenset()) -> float:
        """Fraction of (non-skipped) nodes that received at least one message."""
        counted = [node for node in nodes if node not in skip]
        if not counted:
            return 1.0
        reached = sum(1 for node in counted if node in self.first_reception)
        return reached / len(counted)
