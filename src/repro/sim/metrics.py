"""Aggregate per-run metrics.

:class:`RunMetrics` is always collected (it is cheap), unlike the full
:class:`~repro.sim.trace.Trace`.  It carries everything the paper's
experiments measure:

* ``slots`` — total time-slots executed (the paper's complexity measure);
* ``first_reception`` — per node, the slot of the first message delivery
  (the random variable ``T_v`` of Lemma 3);
* ``transmissions`` — total transmit events (paper property 2);
* ``collisions`` — total (receiver, slot) conflict events;
* ``deliveries`` — total successful message deliveries.

Metrics are *mergeable*: :meth:`RunMetrics.merge` combines two runs'
metrics (counters sum, ``first_reception`` min-merges) so parallel
chunks and the telemetry summarizer can aggregate campaigns without
ad-hoc dict surgery.  Merging is associative and commutative with the
empty ``RunMetrics()`` as identity (unit-tested), so any reduction
order gives the same aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = ["RunMetrics"]

Node = Hashable


def _sum_by_key(a: dict[Node, int], b: dict[Node, int]) -> dict[Node, int]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) + value
    return out


@dataclass
class RunMetrics:
    """Counters accumulated by the engine during one run."""

    slots: int = 0
    transmissions: int = 0
    collisions: int = 0
    deliveries: int = 0
    #: noise slots injected by jammer faults (kept out of ``transmissions``
    #: so property-2 message accounting is undisturbed by adversity)
    jam_transmissions: int = 0
    first_reception: dict[Node, int] = field(default_factory=dict)
    transmissions_per_node: dict[Node, int] = field(default_factory=dict)
    #: per receiver, how many of its Receive slots had >= 2 transmitting
    #: neighbours (mirrors ``transmissions_per_node``; powers the
    #: per-phase collision histograms and the E-series tables)
    collisions_per_node: dict[Node, int] = field(default_factory=dict)

    def note_transmission(self, node: Node) -> None:
        self.transmissions += 1
        self.transmissions_per_node[node] = self.transmissions_per_node.get(node, 0) + 1

    def note_delivery(self, node: Node, slot: int) -> None:
        self.deliveries += 1
        self.first_reception.setdefault(node, slot)

    def note_collision(self, node: Node | None = None) -> None:
        self.collisions += 1
        if node is not None:
            self.collisions_per_node[node] = self.collisions_per_node.get(node, 0) + 1

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Combine two runs' metrics into a new :class:`RunMetrics`.

        Counters (including the per-node maps) sum; ``slots`` sums to
        the total simulated slots; ``first_reception`` takes the
        earliest slot per node.  ``merge`` never mutates its operands,
        is associative and commutative, and has ``RunMetrics()`` as
        identity — so chunked campaigns can reduce in any order.
        """
        first = dict(self.first_reception)
        for node, slot in other.first_reception.items():
            if node not in first or slot < first[node]:
                first[node] = slot
        return RunMetrics(
            slots=self.slots + other.slots,
            transmissions=self.transmissions + other.transmissions,
            collisions=self.collisions + other.collisions,
            deliveries=self.deliveries + other.deliveries,
            jam_transmissions=self.jam_transmissions + other.jam_transmissions,
            first_reception=first,
            transmissions_per_node=_sum_by_key(
                self.transmissions_per_node, other.transmissions_per_node
            ),
            collisions_per_node=_sum_by_key(
                self.collisions_per_node, other.collisions_per_node
            ),
        )

    @classmethod
    def merge_all(cls, metrics: Iterable["RunMetrics"]) -> "RunMetrics":
        """Reduce any number of metrics (empty iterable -> identity)."""
        total = cls()
        for item in metrics:
            total = total.merge(item)
        return total

    # -- derived quantities ---------------------------------------------

    def completion_slot(self, nodes: list[Node], *, skip: frozenset[Node] = frozenset()) -> int | None:
        """The slot by which every node in ``nodes`` (except ``skip``,
        typically the source) had received a message — the broadcast
        completion time — or ``None`` if some node never received.
        """
        times = []
        for node in nodes:
            if node in skip:
                continue
            if node not in self.first_reception:
                return None
            times.append(self.first_reception[node])
        return max(times) if times else 0

    def coverage(self, nodes: list[Node], *, skip: frozenset[Node] = frozenset()) -> float:
        """Fraction of (non-skipped) nodes that received at least one message."""
        counted = [node for node in nodes if node not in skip]
        if not counted:
            return 1.0
        reached = sum(1 for node in counted if node in self.first_reception)
        return reached / len(counted)
