"""Radio medium semantics.

The medium answers one question per receiver per slot: *what does this
node hear, given the set of its neighbours that transmitted?*  The rule
of the paper's model (Definition 1, rule 3):

* exactly one transmitting neighbour → the message is delivered;
* zero or more than one → nothing is delivered.

Two media are provided:

* :class:`RadioMedium` — **no collision detection** (the paper's
  model): zero and many transmitters are both reported as
  :data:`SILENCE`, indistinguishably.
* :class:`CollisionDetectingMedium` — the Section 4 variant: a
  collision is reported as the distinct token :data:`COLLISION`, so a
  receiver can tell silence from conflict.

Sentinels rather than ``None`` are used so that protocols may legally
broadcast ``None`` as a message payload.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

__all__ = [
    "SILENCE",
    "COLLISION",
    "JAMMING",
    "Medium",
    "RadioMedium",
    "CollisionDetectingMedium",
]

Node = Hashable


class _Sentinel:
    """A named singleton observation token."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"

    def __reduce__(self):  # keep identity across pickling
        return (_sentinel_lookup, (self._name,))


SILENCE = _Sentinel("SILENCE")
COLLISION = _Sentinel("COLLISION")
#: The undecodable payload a :class:`~repro.sim.faults.JamFault` injects.
#: Never delivered to a program: a lone jammer reads as SILENCE (or
#: COLLISION under collision detection); it appears only in traces.
JAMMING = _Sentinel("JAMMING")


def _sentinel_lookup(name: str) -> _Sentinel:
    return {"SILENCE": SILENCE, "COLLISION": COLLISION, "JAMMING": JAMMING}[name]


class Medium:
    """Resolution policy mapping transmitting neighbours to an observation."""

    __slots__ = ()

    #: whether receivers can distinguish collision from silence
    detects_collisions: bool = False

    def resolve(
        self,
        receiver: Node,
        transmitting_neighbors: list[Node],
        messages: Mapping[Node, Any],
    ) -> Any:
        """Return what ``receiver`` hears this slot.

        Parameters
        ----------
        receiver:
            The listening node.
        transmitting_neighbors:
            Its neighbours that chose ``Transmit`` this slot.
        messages:
            Map from transmitting node to the message it sent.
        """
        raise NotImplementedError


class RadioMedium(Medium):
    """The paper's medium: no collision detection.

    The engine inlines this exact class's resolution rule in its hot
    loop (deliver iff exactly one audible transmitter, else
    :data:`SILENCE`); subclasses with a different :meth:`resolve` are
    dispatched normally.
    """

    __slots__ = ()

    detects_collisions = False

    def resolve(
        self,
        receiver: Node,
        transmitting_neighbors: list[Node],
        messages: Mapping[Node, Any],
    ) -> Any:
        if len(transmitting_neighbors) == 1:
            return messages[transmitting_neighbors[0]]
        return SILENCE


class CollisionDetectingMedium(Medium):
    """Section-4 variant: collisions are observable as :data:`COLLISION`."""

    __slots__ = ()

    detects_collisions = True

    def resolve(
        self,
        receiver: Node,
        transmitting_neighbors: list[Node],
        messages: Mapping[Node, Any],
    ) -> Any:
        if len(transmitting_neighbors) == 1:
            return messages[transmitting_neighbors[0]]
        if len(transmitting_neighbors) > 1:
            return COLLISION
        return SILENCE
