"""Vectorized NumPy backend: batched Monte-Carlo broadcast runs.

Where the reference :class:`~repro.sim.engine.Engine` advances one run
one node at a time, this backend advances **many trials of the same
topology simultaneously**, one array operation per slot:

* per-node protocol state (informed flags, Decay counters, ALOHA
  bounds) lives in ``(trials, nodes)`` arrays;
* the slot is resolved with a single matmul — transmit-intent matrix
  ``X`` against the dense audibility matrix from
  :func:`repro.graphs.matrix.adjacency_matrix` gives every receiver's
  audible-transmitter count, and ``delivered`` is the exactly-one mask
  (with jammer noise subtracted to require the lone signal be
  legitimate);
* coin flips come from :class:`~repro.sim.mtstreams.MTStreams`, a bank
  of CPython-compatible Mersenne Twister streams seeded exactly like
  the reference engine's per-node ``random.Random`` instances.

**Parity contract.**  For the protocols implemented here (p-persistent
ALOHA and the paper's Decay Broadcast_scheme), the same trial seeds
produce bit-identical :class:`~repro.sim.metrics.RunMetrics` and node
outcomes as running each seed through the reference engine — including
under ``CrashFault``/``JamFault``/``LinkLossFault``/``EdgeFault``
schedules (the schedule is shared by all trials of a batch, as
campaigns use it).  The parity suite (``tests/sim/test_vectorized_parity``)
enforces this; the reference engine remains the definition of correct.

Two deliberate non-goals: traces and causal provenance are not
recorded (``RunResult.trace``/``provenance`` stay ``None`` — use the
reference backend to debug a single run), and per-node ``phase``
telemetry markers are not emitted (they would dominate the batch's
runtime); per-trial ``run_begin``/``run_end`` telemetry *is* emitted,
with the same fields as the reference engine, so the live conformance
monitor judges batched campaigns identically.

This module imports NumPy at module load; gate imports through
:mod:`repro.sim.backends`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.core.bounds import decay_phase_length, num_phases
from repro.core.decay import decay_step
from repro.errors import ProtocolError, SimulationError
from repro.graphs.graph import Graph
from repro.graphs.matrix import adjacency_matrix
from repro.perf import core as _perf_core
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import RunMetrics
from repro.sim.mtstreams import MTStreams
from repro.telemetry.core import get_active

__all__ = [
    "VectorRunResult",
    "AlohaBatch",
    "DecayBroadcastBatch",
    "run_aloha_batch",
    "run_decay_broadcast_batch",
]

Node = Hashable

#: Default stream budget per sub-batch of the convenience runners: the
#: MT state bank costs ~5 KB per stream, so 32k streams ≈ 160 MB.
_STREAM_BUDGET = 32768


def default_batch_size(num_nodes: int) -> int:
    """Trials per sub-batch keeping the stream bank memory bounded."""
    return max(1, _STREAM_BUDGET // max(1, num_nodes))


@dataclass
class VectorRunResult:
    """One trial's outcome, shaped like :class:`~repro.sim.engine.RunResult`.

    Carries the same result surface experiments read — ``slots``,
    ``metrics``, ``node_results()``, ``broadcast_completion_slot`` —
    minus the per-slot ``trace``/``provenance`` recorders (always
    ``None`` here) and the live ``programs`` map (node outcomes are
    pre-extracted into :attr:`outputs`).
    """

    slots: int
    metrics: RunMetrics
    graph: Graph
    outputs: dict[Node, Any] = field(default_factory=dict)
    trace: None = None
    provenance: None = None

    def node_results(self) -> dict[Node, Any]:
        return self.outputs

    def broadcast_completion_slot(self, *, source: Node | None = None) -> int | None:
        skip = frozenset() if source is None else frozenset({source})
        return self.metrics.completion_slot(self.graph.nodes, skip=skip)

    def broadcast_succeeded(self, *, source: Node | None = None) -> bool:
        return self.broadcast_completion_slot(source=source) is not None


class _VectorBatch:
    """Shared slot loop: faults, resolution, metrics, telemetry.

    Subclasses supply the protocol transition (:meth:`_intents`), the
    optional protocol stop condition (:meth:`_quiescent`) and the
    per-node outcome extraction (:meth:`_outputs`).  The loop replays
    the reference engine's per-slot order exactly: stop checks (on the
    previous slot's state), then slot-boundary faults (recoveries
    before same-slot crashes), then intents, then resolution.
    """

    protocol = "?"

    def __init__(
        self,
        graph: Graph,
        seeds: Sequence[int],
        *,
        source: Node,
        message: Any,
        max_slots: int,
        stop_informed: bool,
        faults: FaultSchedule | None,
    ) -> None:
        if max_slots < 0:
            raise SimulationError("max_slots must be non-negative")
        if source not in graph:
            raise SimulationError(f"source {source!r} is not in the graph")
        self._faults = faults if faults is not None else FaultSchedule()
        self._faults.validate_for_graph(graph)
        self._g = graph.copy()
        self._seeds = [int(seed) for seed in seeds]
        self._message = message
        self._max_slots = max_slots
        self._stop_informed = stop_informed

        nodes = self._g.nodes
        self._nodes = nodes
        self._index = {node: position for position, node in enumerate(nodes)}
        n = len(nodes)
        trials = len(self._seeds)
        self._n = n
        self._trials = trials
        self._source_idx = self._index[source]
        self._source = source

        # Per-(trial, node) coin streams, seeded exactly like the
        # reference engine's Context rngs (rng.spawn_for_node).
        self._streams = MTStreams(
            [
                rng_mod.derive_seed(seed, "node", node)
                for seed in self._seeds
                for node in nodes
            ]
        )

        shape = (trials, n)
        self._live = np.ones(trials, dtype=bool)
        self._slots_out = np.zeros(trials, dtype=np.int64)
        self._done = np.zeros(shape, dtype=bool)
        self._informed = np.zeros(shape, dtype=bool)
        self._informed[:, self._source_idx] = True
        self._informed_at = np.zeros(shape, dtype=np.int64)
        self._first_rec = np.full(shape, -1, dtype=np.int64)
        self._init_row = np.zeros(n, dtype=bool)
        self._init_row[self._source_idx] = True

        # Metric accumulators (converted to RunMetrics at the end).
        self._tx = np.zeros(trials, dtype=np.int64)
        self._col = np.zeros(trials, dtype=np.int64)
        self._deliv = np.zeros(trials, dtype=np.int64)
        self._jam_tx = np.zeros(trials, dtype=np.int64)
        self._tx_pn = np.zeros(shape, dtype=np.int64)
        self._col_pn = np.zeros(shape, dtype=np.int64)

        # Fault state: one schedule shared by every trial, so node-level
        # outage state is a function of the slot alone.
        self._have_faults = not self._faults.is_empty()
        self._edge_by_slot, self._crash_by_slot = self._faults.by_slot()
        self._recoveries_by_slot: dict[int, list[int]] = {}
        for crash in self._faults.crash_faults:
            if crash.until is not None:
                self._recoveries_by_slot.setdefault(crash.until, []).append(
                    self._index[crash.node]
                )
        self._crashed = np.zeros(n, dtype=bool)
        self._awaiting: set[int] = set()
        self._jam_faults = tuple(self._faults.jam_faults)
        self._jammed = np.zeros(n, dtype=bool)
        self._loss_faults = tuple(self._faults.link_loss_faults)

        self._tel = None
        self._perf = None
        self._run_ids: list[str] = []
        self._t0 = 0.0
        self._ran = False

    # -- protocol hooks -------------------------------------------------

    def _intents(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _quiescent(self) -> np.ndarray | None:
        """Per-trial protocol stop mask (``None``: no extra condition)."""
        return None

    def _outputs(self, trial: int) -> dict[Node, Any]:
        raise NotImplementedError

    # -- the batch loop -------------------------------------------------

    def run(self) -> list[VectorRunResult]:
        """Advance every trial to completion; one result per seed."""
        if self._ran:
            raise SimulationError("a batch can only run once")
        self._ran = True
        self._tel = get_active()
        # Perf attribution: snapshot once, branch on a local per slot —
        # with no session active the loop pays one None check per slot
        # against array ops that each cost orders of magnitude more.
        self._perf = perf = _perf_core.get_active()
        if perf is not None:
            perf.span_push(f"vector.run:{self.protocol}")
        self._t0 = time.perf_counter()
        if self._tel is not None:
            edges = self._g.num_edges()
            counts = self._faults.counts() if self._have_faults else {}
            for seed in self._seeds:
                self._run_ids.append(
                    self._tel.open_run(
                        nodes=self._n,
                        edges=edges,
                        seed=seed,
                        slot=0,
                        max_slots=self._max_slots,
                        initiators=1,
                        faults=counts,
                        backend="numpy",
                    )
                )
        live = self._live
        slot = 0
        while slot < self._max_slots and live.any():
            stop = self._stop_mask()
            if stop is not None:
                self._retire(live & stop, slot)
                if not live.any():
                    break
            self._retire(live & self._all_done_mask(), slot)
            if not live.any():
                break
            self._apply_faults(slot)
            if perf is not None:
                perf.span_push("vector.intents")
            transmit, receiver = self._intents(slot)
            if perf is not None:
                perf.span_pop()
                perf.span_push("resolve.kernel")
            self._resolve(slot, transmit, receiver)
            if perf is not None:
                perf.span_pop()
            slot += 1
        self._retire(live.copy(), slot)
        if perf is not None:
            perf.span_pop()  # vector.run
        return [self._result(trial) for trial in range(self._trials)]

    # -- stop conditions ------------------------------------------------

    def _stop_mask(self) -> np.ndarray | None:
        informed = None
        if self._stop_informed:
            reached = (self._first_rec >= 0) | self._init_row
            informed = reached.sum(axis=1) >= self._n
        extra = self._quiescent()
        if informed is None:
            return extra
        if extra is None:
            return informed
        return informed | extra

    def _all_done_mask(self) -> np.ndarray:
        if self._awaiting:
            return np.zeros(self._trials, dtype=bool)
        return (self._done | self._crashed).all(axis=1)

    # -- faults ---------------------------------------------------------

    def _apply_faults(self, slot: int) -> None:
        if not self._have_faults:
            return
        edge_faults = self._edge_by_slot.get(slot, ())
        if edge_faults:
            for fault in edge_faults:
                fault.apply(self._g)  # version bump invalidates the matrix
        recoveries = self._recoveries_by_slot.get(slot)
        if recoveries:
            # Recoveries fire before same-slot crashes, as in the engine.
            for node_idx in recoveries:
                self._awaiting.discard(node_idx)
                self._crashed[node_idx] = False
        crashes = self._crash_by_slot.get(slot)
        if crashes:
            for crash in crashes:
                node_idx = self._index[crash.node]
                self._crashed[node_idx] = True
                if crash.until is not None:
                    self._awaiting.add(node_idx)
        if self._jam_faults:
            self._jammed[:] = False
            for fault in self._jam_faults:
                if fault.active_at(slot):
                    node_idx = self._index[fault.node]
                    if not self._crashed[node_idx]:
                        self._jammed[node_idx] = True
        if self._tel is not None and (edge_faults or recoveries or crashes):
            self._tel.emit(
                "fault",
                slot=slot,
                edges_cut=len(edge_faults),
                crashes=len(crashes) if crashes else 0,
                recoveries=len(recoveries) if recoveries else 0,
                jamming=int(self._jammed.sum()),
            )

    def _eligible(self) -> np.ndarray:
        """Nodes whose program acts this slot (per live trial)."""
        up = ~(self._crashed | self._jammed)
        return (~self._done & up) & self._live[:, None]

    # -- slot resolution ------------------------------------------------

    def _resolve(self, slot: int, transmit: np.ndarray, receiver: np.ndarray) -> None:
        self._tx += transmit.sum(axis=1)
        self._tx_pn += transmit
        jam_any = bool(self._jammed.any())
        if jam_any:
            # Jam noise is metered whenever the slot has any signal at
            # all — which, with a jammer up, is every slot.
            self._jam_tx[self._live] += int(self._jammed.sum())
        losses = (
            tuple(
                (position, fault)
                for position, fault in enumerate(self._loss_faults)
                if fault.active_at(slot)
            )
            if self._loss_faults
            else ()
        )
        if losses:
            delivered, collided = self._resolve_lossy(
                slot, transmit, receiver, losses, jam_any
            )
        else:
            hears = adjacency_matrix(self._g).hears
            if jam_any:
                signal = (transmit | self._jammed).astype(np.float32)
                counts = signal @ hears
                jam_audible = self._jammed.astype(np.float32) @ hears
                delivered = receiver & (counts == 1.0) & (counts - jam_audible == 1.0)
            else:
                counts = transmit.astype(np.float32) @ hears
                delivered = receiver & (counts == 1.0)
            collided = receiver & (counts >= 2.0)
        self._deliv += delivered.sum(axis=1)
        self._col += collided.sum(axis=1)
        self._col_pn += collided
        newly_received = delivered & (self._first_rec < 0)
        self._first_rec[newly_received] = slot
        newly_informed = delivered & ~self._informed
        if newly_informed.any():
            self._informed |= delivered
            self._informed_at[newly_informed] = slot

    def _resolve_lossy(
        self,
        slot: int,
        transmit: np.ndarray,
        receiver: np.ndarray,
        losses: tuple,
        jam_any: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-receiver resolution under lossy links.

        Loss coins are pure functions of (trial seed, fault index, slot,
        transmitter, receiver) — the same derivation the reference
        engine uses — so this path is exact, just not vectorized.
        """
        nodes = self._nodes
        audible_of = self._g.audible
        jam_labels = (
            {nodes[i] for i in np.flatnonzero(self._jammed)} if jam_any else frozenset()
        )
        delivered = np.zeros_like(receiver)
        collided = np.zeros_like(receiver)
        for trial in np.flatnonzero(self._live):
            seed = self._seeds[trial]
            transmitters = {nodes[i] for i in np.flatnonzero(transmit[trial])}
            transmitters |= jam_labels
            if not transmitters:
                continue
            for receiver_idx in np.flatnonzero(receiver[trial]):
                label = nodes[receiver_idx]
                audible = [t for t in audible_of(label) if t in transmitters]
                if not audible:
                    continue
                audible = [
                    t
                    for t in audible
                    if not self._erased(losses, seed, slot, t, label)
                ]
                if len(audible) == 1 and audible[0] not in jam_labels:
                    delivered[trial, receiver_idx] = True
                elif len(audible) >= 2:
                    collided[trial, receiver_idx] = True
        return delivered, collided

    @staticmethod
    def _erased(losses: tuple, seed: int, slot: int, transmitter: Node, receiver: Node) -> bool:
        for position, fault in losses:
            if fault.covers(transmitter, receiver):
                draw = rng_mod.derive_seed(
                    seed, "link-loss", position, slot, transmitter, receiver
                )
                if draw / 18446744073709551616.0 < fault.p:  # / 2**64 -> [0, 1)
                    return True
        return False

    # -- retirement and results -----------------------------------------

    def _retire(self, mask: np.ndarray, slot: int) -> None:
        trials = np.flatnonzero(mask)
        if not trials.size:
            return
        self._live[trials] = False
        self._slots_out[trials] = slot
        if self._tel is not None:
            wall = time.perf_counter() - self._t0
            for trial in trials:
                self._close_run(int(trial), slot, wall)

    def _close_run(self, trial: int, slot: int, wall: float) -> None:
        first = self._first_rec[trial]
        extra: dict[str, Any] = {}
        if (first >= 0).any():
            extra["last_reception_slot"] = int(first.max())
        informed = int(((first >= 0) | self._init_row).sum())
        self._tel.close_run(
            self._run_ids[trial],
            slots=slot,
            slots_run=slot,
            wall_s=wall,
            slots_per_sec=round(slot / wall, 1) if wall > 0 else 0.0,
            transmissions=int(self._tx[trial]),
            collisions=int(self._col[trial]),
            deliveries=int(self._deliv[trial]),
            jam_transmissions=int(self._jam_tx[trial]),
            informed=informed,
            **extra,
        )

    def _result(self, trial: int) -> VectorRunResult:
        nodes = self._nodes
        first = self._first_rec[trial]
        metrics = RunMetrics(
            slots=int(self._slots_out[trial]),
            transmissions=int(self._tx[trial]),
            collisions=int(self._col[trial]),
            deliveries=int(self._deliv[trial]),
            jam_transmissions=int(self._jam_tx[trial]),
            first_reception={
                nodes[j]: int(first[j]) for j in np.flatnonzero(first >= 0)
            },
            transmissions_per_node={
                nodes[j]: int(self._tx_pn[trial, j])
                for j in np.flatnonzero(self._tx_pn[trial])
            },
            collisions_per_node={
                nodes[j]: int(self._col_pn[trial, j])
                for j in np.flatnonzero(self._col_pn[trial])
            },
        )
        return VectorRunResult(
            slots=int(self._slots_out[trial]),
            metrics=metrics,
            graph=self._g,
            outputs=self._outputs(trial),
        )


class AlohaBatch(_VectorBatch):
    """Batched p-persistent ALOHA broadcast (the bench workload)."""

    protocol = "aloha"

    def __init__(
        self,
        graph: Graph,
        seeds: Sequence[int],
        *,
        source: Node,
        p: float,
        slots: int,
        message: Any = "m",
        active_slots: int | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ProtocolError("transmission probability must be in (0, 1]")
        super().__init__(
            graph,
            seeds,
            source=source,
            message=message,
            max_slots=slots,
            stop_informed=False,
            faults=faults,
        )
        self._p = p
        self._active_slots = active_slots
        # The initiator's program starts informed at slot 0.
        self._informed_at[:, self._source_idx] = 0

    def _intents(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        eligible = self._eligible()
        contending = eligible & self._informed
        transmit = np.zeros_like(eligible)
        past_bound = None
        if self._active_slots is not None:
            past_bound = contending & (
                slot - self._informed_at >= self._active_slots
            )
            if past_bound.any():
                self._done |= past_bound  # the program idles out
                contending &= ~past_bound
        draw_idx = np.flatnonzero(contending.ravel())
        if draw_idx.size:
            perf = self._perf
            if perf is not None:
                perf.span_push("rng.bank")
            coins = self._streams.draw(draw_idx)
            if perf is not None:
                perf.span_pop()
            transmit.reshape(-1)[draw_idx[coins < self._p]] = True
        receiver = eligible & ~transmit
        if past_bound is not None:
            receiver &= ~past_bound
        return transmit, receiver

    def _outputs(self, trial: int) -> dict[Node, Any]:
        outputs = {}
        for j, node in enumerate(self._nodes):
            if j == self._source_idx:
                informed_at: int | None = 0
            elif self._informed[trial, j]:
                informed_at = int(self._informed_at[trial, j])
            else:
                informed_at = None
            outputs[node] = {
                "informed": bool(self._informed[trial, j]),
                "informed_at": informed_at,
            }
        return outputs


class DecayBroadcastBatch(_VectorBatch):
    """Batched Broadcast_scheme (paper Section 2.2) from one source.

    Parameters mirror
    :func:`repro.protocols.decay_broadcast.run_decay_broadcast`; the
    stop policy is the same: ``informed`` halts a trial once every node
    holds the message, and either policy also halts at quiescence
    (every informed node out of phases — the outcome is decided).
    """

    protocol = "decay"

    def __init__(
        self,
        graph: Graph,
        seeds: Sequence[int],
        *,
        source: Node,
        epsilon: float = 0.1,
        upper_bound_n: int | None = None,
        max_degree_bound: int | None = None,
        max_slots: int | None = None,
        message: Any = "m",
        p_continue: float = 0.5,
        align_phases: bool = True,
        phase_multiplier: float = 2.0,
        stop: str = "informed",
        faults: FaultSchedule | None = None,
    ) -> None:
        from repro.graphs.properties import max_degree as true_max_degree

        if stop not in ("informed", "terminated"):
            raise SimulationError(f"unknown stop policy {stop!r}")
        n = graph.num_nodes()
        big_n = upper_bound_n if upper_bound_n is not None else n
        if big_n < n:
            raise ProtocolError(f"upper bound N={big_n} is below the true n={n}")
        delta = (
            max_degree_bound
            if max_degree_bound is not None
            else max(1, true_max_degree(graph))
        )
        k = decay_phase_length(delta)
        phases = num_phases(big_n, epsilon, multiplier=phase_multiplier)
        if max_slots is None:
            max_slots = max(1, n * phases * k)
        super().__init__(
            graph,
            seeds,
            source=source,
            message=message,
            max_slots=max_slots,
            stop_informed=(stop == "informed"),
            faults=faults,
        )
        self._k = k
        self._phases = phases
        self._p_continue = p_continue
        self._align = align_phases
        self.params = {"k": k, "phases": phases}
        shape = (self._trials, self._n)
        self._in_decay = np.zeros(shape, dtype=bool)
        self._d_active = np.zeros(shape, dtype=bool)
        self._d_sent = np.zeros(shape, dtype=np.int64)
        self._d_started = np.zeros(shape, dtype=np.int64)
        self._phases_done = np.zeros(shape, dtype=np.int64)
        # The initiator is informed "before time 0" (paper: -1 marker).
        self._informed_at[:, self._source_idx] = -1

    def _intents(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        eligible = self._eligible()
        if not self._align or slot % self._k == 0:
            starting = eligible & self._informed & ~self._in_decay
            if starting.any():
                # A fresh DecayProcess per phase: reset, don't carry over.
                self._in_decay |= starting
                self._d_active[starting] = True
                self._d_sent[starting] = 0
                self._d_started[starting] = slot
        acting = eligible & self._in_decay
        transmit = np.zeros_like(eligible)
        acting_idx = np.flatnonzero(acting.ravel())
        if acting_idx.size:
            flat_active = self._d_active.reshape(-1)
            flat_sent = self._d_sent.reshape(-1)
            sub_active = flat_active[acting_idx]
            sub_sent = flat_sent[acting_idx]
            perf = self._perf

            def draw(mask: np.ndarray) -> np.ndarray:
                if perf is not None:
                    perf.span_push("rng.bank")
                coins = self._streams.draw(acting_idx[mask])
                if perf is not None:
                    perf.span_pop()
                return coins

            if perf is not None:
                perf.span_push("decay.phase")
            sub_transmit = decay_step(
                sub_active,
                sub_sent,
                self._k,
                draw,
                p_continue=self._p_continue,
            )
            if perf is not None:
                perf.span_pop()
            flat_active[acting_idx] = sub_active
            flat_sent[acting_idx] = sub_sent
            transmit.reshape(-1)[acting_idx[sub_transmit]] = True
            ended = acting & (slot - self._d_started >= self._k - 1)
            if ended.any():
                self._in_decay &= ~ended
                self._phases_done += ended
                self._done |= self._phases_done >= self._phases
        receiver = eligible & ~transmit
        return transmit, receiver

    def _quiescent(self) -> np.ndarray:
        # Once every informed node has exhausted its phases, no further
        # transmission can ever occur (matches run_decay_broadcast).
        return ~(self._informed & ~self._done).any(axis=1)

    def _outputs(self, trial: int) -> dict[Node, Any]:
        outputs = {}
        for j, node in enumerate(self._nodes):
            informed = bool(self._informed[trial, j])
            informed_at = int(self._informed_at[trial, j]) if informed else None
            outputs[node] = {
                "informed": informed,
                "informed_at_slot": informed_at,
                "phases_executed": int(self._phases_done[trial, j]),
                "message": self._message if informed else None,
            }
        return outputs


def _batched(seeds: Sequence[int], batch_size: int | None, num_nodes: int):
    seeds = list(seeds)
    if batch_size is None:
        batch_size = default_batch_size(num_nodes)
    if batch_size < 1:
        raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(seeds), batch_size):
        yield seeds[start : start + batch_size]


def run_aloha_batch(
    graph: Graph,
    source: Node,
    seeds: Sequence[int],
    *,
    p: float,
    slots: int,
    message: Any = "m",
    active_slots: int | None = None,
    faults: FaultSchedule | None = None,
    batch_size: int | None = None,
) -> list[VectorRunResult]:
    """Run one seeded ALOHA broadcast trial per seed, batched.

    ``batch_size`` caps trials advanced simultaneously (default: sized
    to keep the coin-stream bank around 160 MB); results are identical
    for every value.
    """
    results: list[VectorRunResult] = []
    for chunk in _batched(seeds, batch_size, graph.num_nodes()):
        results.extend(
            AlohaBatch(
                graph,
                chunk,
                source=source,
                p=p,
                slots=slots,
                message=message,
                active_slots=active_slots,
                faults=faults,
            ).run()
        )
    return results


def run_decay_broadcast_batch(
    graph: Graph,
    source: Node,
    seeds: Sequence[int],
    *,
    epsilon: float = 0.1,
    upper_bound_n: int | None = None,
    max_degree_bound: int | None = None,
    max_slots: int | None = None,
    message: Any = "m",
    p_continue: float = 0.5,
    align_phases: bool = True,
    phase_multiplier: float = 2.0,
    stop: str = "informed",
    faults: FaultSchedule | None = None,
    batch_size: int | None = None,
) -> list[VectorRunResult]:
    """Run one seeded Broadcast_scheme trial per seed, batched.

    Seed-for-seed equivalent to calling
    :func:`~repro.protocols.decay_broadcast.run_decay_broadcast` per
    seed on the reference engine (the parity suite enforces it), an
    order of magnitude faster for campaign-sized seed lists.
    """
    results: list[VectorRunResult] = []
    for chunk in _batched(seeds, batch_size, graph.num_nodes()):
        results.extend(
            DecayBroadcastBatch(
                graph,
                chunk,
                source=source,
                epsilon=epsilon,
                upper_bound_n=upper_bound_n,
                max_degree_bound=max_degree_bound,
                max_slots=max_slots,
                message=message,
                p_continue=p_continue,
                align_phases=align_phases,
                phase_multiplier=phase_multiplier,
                stop=stop,
                faults=faults,
            ).run()
        )
    return results
