"""Minimal hand-rolled HTTP/1.1 over asyncio streams.

Just enough protocol for the tower's endpoints — request-line +
headers + optional ``Content-Length`` body in, fixed-length responses
or an unbounded SSE stream out, one request per connection
(``Connection: close``).  No chunked transfer, no keep-alive
pipelining, no TLS: the tower fronts a trusted lab network, and every
byte of protocol it does speak is std-library and auditable.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "Request",
    "HttpError",
    "read_request",
    "response",
    "json_response",
    "sse_preamble",
]

#: Reason phrases for the statuses the tower actually emits.
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on request head (request line + headers) and body bytes.
MAX_HEAD = 32 * 1024
MAX_BODY = 1024 * 1024


class HttpError(Exception):
    """A protocol-level failure mapped straight to a status code."""

    def __init__(self, status: int, detail: str = "") -> None:
        super().__init__(detail or REASONS.get(status, "error"))
        self.status = status
        self.detail = detail or REASONS.get(status, "error")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def param(self, name: str, default: str | None = None) -> str | None:
        """First value of a query parameter, or ``default``."""
        values = self.query.get(name)
        return values[0] if values else default


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client connected and left: not an error
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEAD} bytes")
    if len(head) > MAX_HEAD:
        raise HttpError(413, f"request head exceeds {MAX_HEAD} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > MAX_BODY:
            raise HttpError(413, f"request body exceeds {MAX_BODY} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "request body shorter than Content-Length")
    split = urlsplit(target)
    return Request(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """A complete fixed-length HTTP/1.1 response as bytes."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    """A JSON response; keys sorted so identical payloads are identical
    bytes (the tower's endpoints aim for ``cmp``-testable output)."""
    body = json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
    return response(status, body, content_type="application/json")


def sse_preamble() -> bytes:
    """Response head opening an unbounded ``text/event-stream`` flow."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "X-Accel-Buffering: no\r\n"
        "\r\n"
    ).encode("latin-1")
