"""Feed the hub: the telemetry-bus bridge and on-disk log followers.

Two ways records enter the tower:

* :func:`bridge_recorder` — subscribe to a live in-process
  :class:`~repro.telemetry.core.Telemetry` recorder.  The subscriber
  callback runs synchronously under the recorder's write lock on
  whatever thread emitted the record, so it must be O(1) and must
  never block: it shallow-copies the record and hands it to
  :meth:`~repro.tower.hub.EventHub.publish`, which hops onto the
  serving loop via ``call_soon_threadsafe``.  Detaching restores the
  bus to its zero-cost (falsy-tuple check) fast path.

* :func:`follow_paths` — an asyncio task polling telemetry JSON-lines
  logs on disk with the torn-tail-tolerant
  :class:`~repro.monitor.tail.TailReader` (rotation- and
  truncation-safe).  Directories are rescanned every poll so logs that
  appear later (fabric workers starting up) are picked up live.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.monitor.tail import TailReader
from repro.tower.hub import EventHub

__all__ = ["bridge_recorder", "follow_paths", "discover_logs"]

#: Glob for telemetry logs when following a directory.
LOG_PATTERN = "*.jsonl"


def bridge_recorder(hub: EventHub, recorder: Any) -> Callable[[], None]:
    """Relay every record the recorder writes into the hub.

    Returns the unsubscribe callable.  The copy matters: the hub hands
    records to taps and SSE encoders on another thread's loop, and the
    emitting side must stay free to do whatever it likes with its dict
    after ``emit`` returns.
    """

    def _relay(record: dict[str, Any]) -> None:
        hub.publish(dict(record))

    return recorder.subscribe(_relay)


def discover_logs(target: Path, *, pattern: str = LOG_PATTERN) -> list[Path]:
    """The telemetry logs a ``--follow`` target currently names.

    A file is itself; a directory is globbed (sorted, so follower
    start order is deterministic); a missing path is empty *for now* —
    follow targets may be created after the tower boots.
    """
    if target.is_dir():
        return sorted(p for p in target.glob(pattern) if p.is_file())
    if target.exists():
        return [target]
    return []


async def follow_paths(
    hub: EventHub,
    targets: Iterable[Path],
    *,
    poll_interval: float = 0.2,
    pattern: str = LOG_PATTERN,
    stop: asyncio.Event | None = None,
) -> None:
    """Tail every log under ``targets`` into the hub until ``stop``.

    Each record is stamped with a ``log`` field naming its source file
    (unless the record already carries one), so a merged stream of N
    worker logs stays attributable — the same convention the fleet
    board uses for its per-worker lanes.
    """
    targets = [Path(t) for t in targets]
    readers: dict[Path, TailReader] = {}
    while True:
        for target in targets:
            for path in discover_logs(target, pattern=pattern):
                if path not in readers:
                    readers[path] = TailReader(path)
        for path, reader in readers.items():
            for record in reader.poll():
                record.setdefault("log", path.name)
                hub.publish(record)
        if stop is not None and stop.is_set():
            # Final drain pass so records racing the stop signal land.
            for path, reader in readers.items():
                for record in reader.poll():
                    record.setdefault("log", path.name)
                    hub.publish(record)
            return
        await asyncio.sleep(poll_interval)
