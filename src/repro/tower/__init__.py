"""``repro.tower`` — the live observability gateway.

Every observability layer the repo has grown (telemetry JSON-lines
logs, the obs SQLite store, monitor SLO gates, fleet tracing/metrics,
perf profiles) is pull-after-the-fact: you must be on the box, tailing
files or running CLIs.  The tower is the *push* half — a long-running,
stdlib-only asyncio HTTP service that lets a remote scraper or browser
watch a campaign live:

* ``GET /stream``   — Server-Sent Events over live telemetry, fed by
  the zero-cost subscriber bus (in-process runs) and by the
  torn-tail-tolerant :class:`repro.monitor.tail.TailReader` (on-disk
  fabric worker logs), with ``Last-Event-ID`` resume and a bounded
  per-client queue whose overflow is *signalled in-stream* as a
  ``gap`` event instead of ever blocking the telemetry bus;
* ``GET /metrics``  — Prometheus text exposition merging the fleet
  metrics registry (ambient or reconstructed from streamed ``metrics``
  snapshots) with the tower's own client/relay/drop counters;
* ``GET /runs`` / ``/runs/<id>`` / ``/trend`` / ``/dashboard`` — JSON
  query and self-contained HTML endpoints over the obs
  :class:`~repro.obs.store.RunStore` (read-only, WAL-safe concurrent
  with ingest);
* alert webhooks — monitor-fired ``alert`` records POSTed to
  configured URLs with seeded-jitter :func:`repro.parallel.backoff_delay`
  retries and an on-disk dead-letter journal;
* ``/healthz`` / ``/readyz`` and a graceful SIGTERM drain.

Everything is hand-rolled HTTP/1.1 over :mod:`asyncio` streams — no
third-party dependency, matching the rest of the repo.  With no tower
attached nothing changes anywhere: the telemetry bus fast path stays
one falsy-tuple check per record (``bench_engine.py --bus-check``).

CLI: ``python -m repro tower [--port --obs-db --follow DIR --webhook
URL]``; ``python -m repro fabric run --tower PORT`` serves the
coordinator's own fleet while the campaign runs.
"""

from repro.tower.app import Tower, TowerConfig, TowerThread, run_tower
from repro.tower.hub import EventHub, Subscription
from repro.tower.webhooks import WebhookDispatcher

__all__ = [
    "Tower",
    "TowerConfig",
    "TowerThread",
    "run_tower",
    "EventHub",
    "Subscription",
    "WebhookDispatcher",
]
