"""Alert webhooks: POST monitor alerts out, with retries and a dead letter.

When the monitor fires an ``alert`` record (a theorem SLO tripped, a
fence rejected a stale commit), the tower POSTs it as JSON to every
configured URL.  Delivery is at-least-once with bounded retries: each
attempt backs off with the repo's seeded-jitter
:func:`repro.parallel.backoff_delay` (the hub sequence number seeds
the jitter, so retry schedules are deterministic per alert), and an
alert that exhausts its attempts lands in an on-disk JSONL
*dead-letter journal* instead of vanishing.  ``drain_dead_letters``
replays the journal — entries that now deliver are removed, the rest
stay — so a receiver outage is recovered with one call (or a ``POST
/webhooks/drain`` to a running tower).

The client side is the same hand-rolled HTTP/1.1 the server speaks:
``asyncio.open_connection`` + a fixed-length POST.  ``http://`` only —
the tower fronts a trusted lab network.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ExperimentError
from repro.parallel import backoff_delay

__all__ = ["WebhookDispatcher", "DEFAULT_ATTEMPTS", "DEFAULT_BASE_DELAY"]

#: Delivery attempts per alert per URL before dead-lettering.
DEFAULT_ATTEMPTS = 3

#: Base seconds for the seeded-jitter exponential backoff between attempts.
DEFAULT_BASE_DELAY = 0.1

#: Per-attempt network timeout, seconds.
DEFAULT_TIMEOUT = 5.0


def _check_url(url: str) -> None:
    split = urlsplit(url)
    if split.scheme != "http" or not split.hostname:
        raise ExperimentError(
            f"webhook URL {url!r} is not plain http:// with a host; the "
            f"tower's hand-rolled client speaks http only"
        )


class WebhookDispatcher:
    """Deliver ``alert`` records to webhook URLs; journal what fails."""

    def __init__(
        self,
        urls: list[str],
        *,
        dead_letter: str | Path | None = None,
        attempts: int = DEFAULT_ATTEMPTS,
        base_delay: float = DEFAULT_BASE_DELAY,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        for url in urls:
            _check_url(url)
        self.urls = list(urls)
        self.dead_letter = Path(dead_letter) if dead_letter else None
        self.attempts = max(1, attempts)
        self.base_delay = base_delay
        self.timeout = timeout
        self.delivered = 0
        self.failed = 0
        self.queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None

    # -- feeding --------------------------------------------------------

    def submit(self, seq: int, record: dict[str, Any]) -> None:
        """Queue one alert for delivery (hub tap; never blocks)."""
        if self.urls:
            self.queue.put_nowait((seq, record))

    # -- the worker task ------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self, *, flush_timeout: float = 10.0) -> None:
        """Drain queued alerts (bounded), then stop the worker."""
        if self._task is None:
            return
        try:
            await asyncio.wait_for(self.queue.join(), flush_timeout)
        except asyncio.TimeoutError:
            pass  # receivers are down; their alerts are dead-lettered/retried
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _run(self) -> None:
        while True:
            seq, record = await self.queue.get()
            try:
                for url in self.urls:
                    await self._deliver(url, seq, record)
            finally:
                self.queue.task_done()

    # -- delivery -------------------------------------------------------

    async def _deliver(self, url: str, seq: int, record: dict[str, Any]) -> bool:
        body = json.dumps(record, sort_keys=True, default=repr).encode("utf-8")
        error = "no attempt"
        for attempt in range(self.attempts):
            try:
                status = await self._post(url, body)
            except (OSError, asyncio.TimeoutError) as exc:
                error = f"{type(exc).__name__}: {exc}"
            else:
                if 200 <= status < 300:
                    self.delivered += 1
                    return True
                error = f"HTTP {status}"
            if attempt + 1 < self.attempts:
                await asyncio.sleep(
                    backoff_delay(self.base_delay, attempt, chunk_index=seq)
                )
        self.failed += 1
        self._journal(url, seq, record, error)
        return False

    async def _post(self, url: str, body: bytes) -> int:
        """One hand-rolled ``POST url`` with ``body``; returns the status."""
        split = urlsplit(url)
        host = split.hostname or "localhost"
        port = split.port or 80
        path = split.path or "/"
        if split.query:
            path += "?" + split.query
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {split.netloc}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")

        async def _exchange() -> int:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(head + body)
                await writer.drain()
                status_line = await reader.readline()
                parts = status_line.decode("latin-1", "replace").split()
                if len(parts) < 2 or not parts[1].isdigit():
                    raise OSError(f"malformed webhook response {status_line!r}")
                return int(parts[1])
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except OSError:
                    pass

        return await asyncio.wait_for(_exchange(), self.timeout)

    # -- dead letter ----------------------------------------------------

    def _journal(self, url: str, seq: int, record: dict[str, Any], error: str) -> None:
        if self.dead_letter is None:
            return
        entry = {
            "url": url,
            "seq": seq,
            "record": record,
            "error": error,
            "attempts": self.attempts,
        }
        self.dead_letter.parent.mkdir(parents=True, exist_ok=True)
        with self.dead_letter.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")

    async def drain_dead_letters(self) -> dict[str, int]:
        """Replay the journal; keep only what still fails to deliver.

        One fresh attempt per entry (the entry already burned its
        retries once).  The journal is rewritten atomically, so a crash
        mid-drain can duplicate a delivery but never lose an alert —
        the same at-least-once stance as the fabric's lease store.
        """
        if self.dead_letter is None or not self.dead_letter.exists():
            return {"redelivered": 0, "remaining": 0}
        entries: list[dict[str, Any]] = []
        for line in self.dead_letter.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        remaining: list[dict[str, Any]] = []
        redelivered = 0
        for entry in entries:
            url = entry.get("url")
            record = entry.get("record")
            if not isinstance(url, str) or not isinstance(record, dict):
                continue
            body = json.dumps(record, sort_keys=True, default=repr).encode("utf-8")
            try:
                status = await self._post(url, body)
                ok = 200 <= status < 300
            except (OSError, asyncio.TimeoutError):
                ok = False
            if ok:
                redelivered += 1
                self.delivered += 1
            else:
                remaining.append(entry)
        tmp = self.dead_letter.with_suffix(self.dead_letter.suffix + ".tmp")
        tmp.write_text(
            "".join(
                json.dumps(e, sort_keys=True, default=repr) + "\n"
                for e in remaining
            ),
            encoding="utf-8",
        )
        tmp.replace(self.dead_letter)
        return {"redelivered": redelivered, "remaining": len(remaining)}
