"""The event hub: telemetry records fanned out to bounded client queues.

The hub is the tower's heart and the reason a slow (or stalled) SSE
client can never hurt a campaign: records are *published* into the hub
— from the telemetry subscriber bus (any thread) or from log-follow
tasks (the event loop) — and *consumed* from per-client
:class:`asyncio.Queue` instances with a hard ``maxsize``.  A full
queue drops the record for that client only, counts the drop, and the
next record that fits is preceded by an in-stream ``gap`` event naming
how many records that client missed.  Publishing never awaits and
never blocks.

Every published record gets a monotone sequence number; a bounded ring
of recent ``(seq, record)`` pairs backs ``Last-Event-ID`` resume: a
reconnecting client replays everything after its last-seen id, or — if
the ring has already forgotten that far back — starts with a ``gap``
event counting the loss, so resumption is *exact or explicitly lossy*,
never silently wrong.
"""

from __future__ import annotations

import asyncio
import collections
from typing import Any, Callable, Iterable

__all__ = ["EventHub", "Subscription", "DEFAULT_QUEUE_SIZE", "DEFAULT_RING_SIZE"]

#: Per-client queue bound: how far a consumer may lag before dropping.
DEFAULT_QUEUE_SIZE = 256

#: Recent-event ring bound: how far back ``Last-Event-ID`` can resume.
DEFAULT_RING_SIZE = 1024


class Subscription:
    """One client's bounded view of the hub's event flow.

    Queue items are tuples:

    * ``("event", seq, record)`` — one relayed telemetry record;
    * ``("gap", dropped)``       — ``dropped`` records were lost to
      this client (queue overflow or ring-expired resume);
    * ``("eof",)``               — the hub is draining; no more events.
    """

    def __init__(
        self, queue: asyncio.Queue, kinds: frozenset[str] | None
    ) -> None:
        self.queue = queue
        self.kinds = kinds
        self.dropped = 0  # records this client missed, lifetime
        self._gap = 0  # drops not yet announced in-stream

    async def get(self, timeout: float | None = None) -> tuple:
        """Next queue item; raises :class:`asyncio.TimeoutError` on idle."""
        if timeout is None:
            return await self.queue.get()
        return await asyncio.wait_for(self.queue.get(), timeout)


class EventHub:
    """Monotone-sequenced fan-out with bounded queues and a resume ring."""

    def __init__(
        self,
        *,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        if queue_size < 2:
            # One slot must always be reservable for the gap marker.
            raise ValueError("queue_size must be >= 2")
        self.queue_size = queue_size
        self.seq = 0
        self.ring: collections.deque[tuple[int, dict[str, Any]]] = (
            collections.deque(maxlen=ring_size)
        )
        self.relayed = 0  # (seq, record) items enqueued across clients
        self.dropped = 0  # items lost to full client queues, all clients
        self.published = 0  # records that entered the hub
        self.closed = False
        self._clients: list[Subscription] = []
        self._taps: list[Callable[[int, dict[str, Any]], None]] = []
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the hub to its serving loop (set once, at startup)."""
        self._loop = loop

    @property
    def clients(self) -> int:
        return len(self._clients)

    # -- publishing -----------------------------------------------------

    def publish(self, record: dict[str, Any]) -> None:
        """Enqueue one record for every client; never blocks, any thread.

        Called from the telemetry writer's thread (bus subscriber) or
        from follow tasks on the loop itself.  Off-loop calls hop over
        via ``call_soon_threadsafe``; a closed/unbound loop silently
        drops — the tower must never propagate trouble into the
        recorder that is feeding it.
        """
        loop = self._loop
        if loop is None or self.closed:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._publish_local(record)
        else:
            try:
                loop.call_soon_threadsafe(self._publish_local, record)
            except RuntimeError:
                pass  # loop shut down mid-publish: drop, never raise

    def _publish_local(self, record: dict[str, Any]) -> None:
        if self.closed:
            return
        self.seq += 1
        seq = self.seq
        self.published += 1
        self.ring.append((seq, record))
        for tap in self._taps:
            try:
                tap(seq, record)
            except Exception:  # noqa: BLE001 - taps are internal, isolate anyway
                pass
        for client in self._clients:
            if client.kinds is not None and record.get("kind") not in client.kinds:
                continue
            self._offer(client, seq, record)

    def _offer(self, client: Subscription, seq: int, record: dict[str, Any]) -> None:
        """Non-blocking delivery with drop-and-count + gap signalling."""
        queue = client.queue
        if client._gap:
            # A gap is pending: the marker needs a slot *and* the record
            # needs one, or this record joins the gap.
            if queue.maxsize - queue.qsize() >= 2:
                queue.put_nowait(("gap", client._gap))
                client._gap = 0
                queue.put_nowait(("event", seq, record))
                self.relayed += 1
            else:
                client._gap += 1
                client.dropped += 1
                self.dropped += 1
            return
        try:
            queue.put_nowait(("event", seq, record))
            self.relayed += 1
        except asyncio.QueueFull:
            client._gap = 1
            client.dropped += 1
            self.dropped += 1

    # -- taps (server-internal, loop-thread observers) -------------------

    def tap(self, callback: Callable[[int, dict[str, Any]], None]) -> Callable[[], None]:
        """Observe every published ``(seq, record)`` synchronously on the
        loop thread (webhook feed, metrics-snapshot cache).  Returns an
        un-tap callable."""
        self._taps.append(callback)
        return lambda: self._taps.remove(callback)

    # -- subscriptions --------------------------------------------------

    def subscribe(
        self,
        *,
        last_event_id: int | None = None,
        kinds: Iterable[str] | None = None,
    ) -> Subscription:
        """Attach a client; replay ring events after ``last_event_id``.

        A resume id older than the ring start yields an initial ``gap``
        item counting the unrecoverable records, so the client knows
        the resumption was lossy instead of silently missing history.
        """
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_size)
        client = Subscription(
            queue, frozenset(kinds) if kinds is not None else None
        )
        if last_event_id is not None:
            oldest = self.ring[0][0] if self.ring else self.seq + 1
            if last_event_id + 1 < oldest:
                lost = oldest - 1 - last_event_id
                client.dropped += lost
                self.dropped += lost
                queue.put_nowait(("gap", lost))
            for seq, record in self.ring:
                if seq <= last_event_id:
                    continue
                if client.kinds is not None and record.get("kind") not in client.kinds:
                    continue
                self._offer(client, seq, record)
        self._clients.append(client)
        return client

    def unsubscribe(self, client: Subscription) -> None:
        if client in self._clients:
            self._clients.remove(client)

    # -- shutdown -------------------------------------------------------

    def close(self) -> None:
        """Drain mode: tell every client the flow is over.

        A full queue sheds its oldest item to make room — the ``eof``
        must land even on a stalled consumer, or its handler would hang
        the graceful shutdown.
        """
        if self.closed:
            return
        self.closed = True
        for client in self._clients:
            queue = client.queue
            if queue.full():
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
            try:
                queue.put_nowait(("eof",))
            except asyncio.QueueFull:
                pass
        self._clients.clear()
