"""The ``/dashboard`` page: a byte-stable fleet overview over the obs store.

One self-contained HTML page (inline CSS, no scripts, no external
assets — the same conventions as :mod:`repro.obs.report`, whose page
chrome it reuses): the run history table, metric tiles for the latest
run, and sparkline trends for the headline series.  Deliberately a
pure function of the store's contents — no clocks, no live hub
counters (those belong on ``/metrics``) — so two fetches against an
unchanged store return **identical bytes** and CI can assert the page
with ``cmp``.
"""

from __future__ import annotations

import html as html_mod
import time
from typing import Any

from repro.obs.report import _fmt, _page, _tile, sparkline
from repro.obs.store import RunStore

__all__ = ["render_dashboard"]

#: Headline metrics given trend sparklines when present across runs.
TREND_METRICS = ("slots_per_sec", "collisions", "deliveries", "wall_s")

#: Metric tiles shown for the latest run (first matches win).
TILE_METRICS = (
    "engine_runs", "slots", "slots_per_sec", "transmissions", "collisions",
    "deliveries", "wall_s", "alerts", "fabric.takeovers",
)


def _created_text(created: Any) -> str:
    if not isinstance(created, (int, float)):
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(created)) + "Z"


def render_dashboard(store: RunStore | None, *, title: str = "repro tower") -> str:
    """The tower overview page (empty-state page when no store)."""
    if store is None:
        return _page(
            title,
            "<p class='meta'>no obs store attached — start the tower with "
            "--obs-db to serve run history here</p>",
        )
    runs = store.runs()
    body: list[str] = []
    if not runs:
        body.append("<p class='meta'>the obs store holds no runs yet</p>")
        return _page(title, "".join(body))

    latest = runs[-1]
    metrics = store.metrics_for(latest["id"])
    body.append(
        "<p class='meta'>"
        + html_mod.escape(
            f"{len(runs)} run(s) · latest: run {latest['id']} "
            f"({str(latest.get('fingerprint'))[:8]}) · "
            f"{latest.get('command') or 'unknown command'} · "
            f"created {_created_text(latest.get('created'))}"
        )
        + "</p>"
    )

    tiles = [
        _tile(name, metrics[name]) for name in TILE_METRICS if name in metrics
    ]
    if tiles:
        body.append("<div class='tiles'>" + "".join(tiles) + "</div>")

    rows = []
    for run in runs[-20:][::-1]:  # newest first, bounded
        rows.append(
            "<tr>"
            f"<td>{run['id']}</td>"
            f"<td>{html_mod.escape(str(run.get('fingerprint'))[:12])}</td>"
            f"<td>{html_mod.escape(str(run.get('command') or '-'))}</td>"
            f"<td>{html_mod.escape(_fmt(run.get('seed')))}</td>"
            f"<td>{html_mod.escape(_created_text(run.get('created')))}</td>"
            "</tr>"
        )
    body.append(
        "<h2>Runs</h2><table><tr><th>id</th><th>fingerprint</th>"
        "<th>command</th><th>seed</th><th>created (UTC)</th></tr>"
        + "".join(rows)
        + "</table>"
    )

    trend_rows = []
    for metric in TREND_METRICS:
        series = [
            float(row["value"])
            for row in store.metric_trend(metric)
            if row.get("value") is not None
        ]
        if len(series) < 2:
            continue
        trend_rows.append(
            "<tr>"
            f"<td>{html_mod.escape(metric)}</td>"
            f"<td><code>{html_mod.escape(sparkline(series, width=40))}</code></td>"
            f"<td>{html_mod.escape(_fmt(series[-1]))}</td>"
            f"<td>{len(series)}</td>"
            "</tr>"
        )
    if trend_rows:
        body.append(
            "<h2>Trends</h2><table><tr><th>metric</th><th>trend</th>"
            "<th>latest</th><th>points</th></tr>"
            + "".join(trend_rows)
            + "</table>"
        )
    body.append(
        "<p class='meta'>served by python -m repro tower · JSON at /runs, "
        "/trend?metric=… · live events at /stream · Prometheus at /metrics</p>"
    )
    return _page(title, "".join(body))
