"""The tower itself: config, server, routes, and lifecycle.

:class:`Tower` owns the :class:`~repro.tower.hub.EventHub`, the asyncio
HTTP server, the optional log-follow task and webhook dispatcher, and
the route table.  Three ways to run one:

* :func:`run_tower` — the blocking CLI entry (``python -m repro
  tower``): serves until SIGTERM/SIGINT, then drains gracefully
  (``/readyz`` flips to 503, every SSE stream gets a final ``eof``
  frame, queued webhooks flush).
* :class:`TowerThread` — a daemon-thread embedding for ``fabric run
  --tower`` and for tests: the coordinator keeps its synchronous
  control flow while the tower serves its recorder's bus live.
* ``Tower`` directly inside an existing event loop.

Every fixed-length endpoint is a pure function of its inputs — the
obs store for ``/runs``/``/trend``/``/dashboard``, registry state for
``/metrics`` — rendered with sorted keys, so identical state is
identical bytes (``cmp``-testable, like the rest of the repo's
reports).
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.tower.httpd import (
    HttpError,
    Request,
    json_response,
    read_request,
    response,
    sse_preamble,
)
from repro.tower.hub import DEFAULT_QUEUE_SIZE, DEFAULT_RING_SIZE, EventHub
from repro.tower.metrics import SnapshotCache, render_exposition
from repro.tower.sources import LOG_PATTERN, bridge_recorder, follow_paths
from repro.tower.sse import (
    encode_comment,
    encode_eof,
    encode_event,
    encode_gap,
    parse_last_event_id,
)
from repro.tower.webhooks import WebhookDispatcher

__all__ = ["TowerConfig", "Tower", "TowerThread", "run_tower"]

#: Prometheus text exposition content type.
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Seconds a client gets to present its request head.
_REQUEST_TIMEOUT = 10.0

#: Seconds granted to healthy SSE clients to flush their ``eof`` frame
#: before remaining connections are force-closed during drain.
_DRAIN_GRACE = 0.25


@dataclass
class TowerConfig:
    """Everything a tower needs to serve."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in Tower.port
    obs_db: str | Path | None = None
    follow: list[Path] = field(default_factory=list)
    follow_pattern: str = LOG_PATTERN
    webhooks: list[str] = field(default_factory=list)
    dead_letter: str | Path | None = None
    queue_size: int = DEFAULT_QUEUE_SIZE
    ring_size: int = DEFAULT_RING_SIZE
    poll_interval: float = 0.2
    heartbeat: float = 15.0
    port_file: str | Path | None = None
    recorder: Any = None  # live Telemetry to bridge (embedded towers)


class Tower:
    """The asyncio HTTP service over the hub, the store, and the registry."""

    def __init__(self, config: TowerConfig) -> None:
        self.config = config
        self.hub = EventHub(
            queue_size=config.queue_size, ring_size=config.ring_size
        )
        self.snapshots = SnapshotCache()
        self.request_counts: dict[str, int] = {}
        self.webhooks: WebhookDispatcher | None = None
        if config.webhooks or config.dead_letter:
            self.webhooks = WebhookDispatcher(
                list(config.webhooks), dead_letter=config.dead_letter
            )
        self.draining = False
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._follow_task: asyncio.Task | None = None
        self._follow_stop: asyncio.Event | None = None
        self._unbridge = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind, start serving, and attach every configured source."""
        loop = asyncio.get_running_loop()
        self.hub.bind(loop)
        self.hub.tap(self.snapshots.observe)
        if self.webhooks is not None:
            self.webhooks.start()
            self.hub.tap(self._feed_webhooks)
        if self.config.recorder is not None:
            self._unbridge = bridge_recorder(self.hub, self.config.recorder)
        if self.config.follow:
            self._follow_stop = asyncio.Event()
            self._follow_task = loop.create_task(
                follow_paths(
                    self.hub,
                    self.config.follow,
                    poll_interval=self.config.poll_interval,
                    pattern=self.config.follow_pattern,
                    stop=self._follow_stop,
                )
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(
                f"{self.port}\n", encoding="utf-8"
            )

    async def stop(self) -> None:
        """Graceful drain: 503 readiness, ``eof`` streams, flushed hooks."""
        self.draining = True
        if self._unbridge is not None:
            self._unbridge()  # recorder bus back to its zero-cost path
            self._unbridge = None
        if self._follow_task is not None:
            assert self._follow_stop is not None
            self._follow_stop.set()
            try:
                await asyncio.wait_for(self._follow_task, 5.0)
            except asyncio.TimeoutError:
                self._follow_task.cancel()
            self._follow_task = None
        self.hub.close()
        await asyncio.sleep(_DRAIN_GRACE)
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.close()  # unstick anyone blocked in drain()
        if self.webhooks is not None:
            await self.webhooks.stop()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    def _feed_webhooks(self, seq: int, record: dict[str, Any]) -> None:
        if record.get("kind") == "alert" and self.webhooks is not None:
            self.webhooks.submit(seq, record)

    # -- connection handling --------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), _REQUEST_TIMEOUT
                )
            except asyncio.TimeoutError:
                writer.write(response(408, "request head timed out\n"))
                return
            except HttpError as exc:
                writer.write(response(exc.status, exc.detail + "\n"))
                return
            if request is None:
                return
            try:
                await self._dispatch(request, writer)
            except HttpError as exc:
                writer.write(response(exc.status, exc.detail + "\n"))
            except (ConnectionResetError, BrokenPipeError):
                pass  # client left mid-response
            except Exception as exc:  # noqa: BLE001 - one bad handler != downtime
                try:
                    writer.write(
                        response(500, f"{type(exc).__name__}: {exc}\n")
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _count(self, route: str) -> None:
        self.request_counts[route] = self.request_counts.get(route, 0) + 1

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        path = request.path
        if path == "/webhooks/drain":
            self._count(path)
            if request.method != "POST":
                raise HttpError(405, "POST /webhooks/drain")
            writer.write(await self._drain_webhooks())
            return
        if request.method != "GET":
            self._count("other")
            raise HttpError(405, f"{request.method} not supported")
        if path == "/stream":
            self._count(path)
            await self._stream(request, writer)
            return
        if path == "/":
            self._count(path)
            writer.write(self._index())
        elif path == "/healthz":
            self._count(path)
            writer.write(json_response(200, {"status": "ok"}))
        elif path == "/readyz":
            self._count(path)
            if self.draining:
                writer.write(json_response(503, {"status": "draining"}))
            else:
                writer.write(json_response(200, {"status": "ready"}))
        elif path == "/metrics":
            self._count(path)
            writer.write(
                response(200, render_exposition(self), content_type=_PROM_TYPE)
            )
        elif path == "/runs":
            self._count(path)
            writer.write(self._runs())
        elif path.startswith("/runs/"):
            self._count("/runs/{id}")
            writer.write(self._run_detail(path[len("/runs/"):]))
        elif path == "/trend":
            self._count(path)
            writer.write(self._trend(request))
        elif path == "/dashboard":
            self._count(path)
            writer.write(self._dashboard())
        else:
            self._count("other")
            raise HttpError(404, f"no route {path}")
        await writer.drain()

    # -- fixed-length endpoints -----------------------------------------

    def _index(self) -> bytes:
        return json_response(
            200,
            {
                "service": "repro tower",
                "endpoints": {
                    "/stream": "live telemetry over SSE "
                    "(?kinds=alert,lease&last_event_id=N)",
                    "/metrics": "Prometheus exposition: fleet + tower series",
                    "/runs": "ingested runs from the obs store",
                    "/runs/{selector}": "one run (id, fingerprint prefix, "
                    "latest, prev) with its metrics",
                    "/trend": "metric trend (?metric=...&source=runs|bench)",
                    "/dashboard": "byte-stable HTML overview",
                    "/healthz": "liveness",
                    "/readyz": "readiness (503 while draining)",
                    "/webhooks/drain": "POST: replay the dead-letter journal",
                },
            },
        )

    def _store(self):
        if self.config.obs_db is None:
            raise HttpError(404, "no obs store attached (start with --obs-db)")
        from repro.obs import RunStore

        return RunStore(self.config.obs_db)

    def _runs(self) -> bytes:
        with self._store() as store:
            runs = store.runs()
        return json_response(200, {"count": len(runs), "runs": runs})

    def _run_detail(self, selector: str) -> bytes:
        with self._store() as store:
            try:
                run = store.resolve_run(selector)
            except ExperimentError as exc:
                return json_response(404, {"error": str(exc)})
            metrics = store.metrics_for(run["id"])
        return json_response(200, {"run": run, "metrics": metrics})

    def _trend(self, request: Request) -> bytes:
        metric = request.param("metric")
        if not metric:
            return json_response(
                400, {"error": "query parameter 'metric' is required"}
            )
        source = request.param("source", "runs")
        from repro.obs import trend_points

        with self._store() as store:
            try:
                points = trend_points(store, metric, source=source)
            except ExperimentError as exc:
                return json_response(400, {"error": str(exc)})
        return json_response(
            200,
            {
                "metric": metric,
                "source": source,
                "points": [
                    {
                        "label": p.label,
                        "value": p.value,
                        "run_id": p.run_id,
                        "created": p.created,
                    }
                    for p in points
                ],
            },
        )

    def _dashboard(self) -> bytes:
        from repro.tower.dashboard import render_dashboard

        if self.config.obs_db is None:
            page = render_dashboard(None)
        else:
            with self._store() as store:
                page = render_dashboard(store)
        return response(200, page, content_type="text/html; charset=utf-8")

    async def _drain_webhooks(self) -> bytes:
        if self.webhooks is None:
            return json_response(
                404, {"error": "no webhooks configured on this tower"}
            )
        return json_response(200, await self.webhooks.drain_dead_letters())

    # -- the SSE endpoint -----------------------------------------------

    async def _stream(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        kinds_text = request.param("kinds")
        kinds = (
            [k.strip() for k in kinds_text.split(",") if k.strip()]
            if kinds_text
            else None
        )
        client = self.hub.subscribe(
            last_event_id=parse_last_event_id(request), kinds=kinds
        )
        writer.write(sse_preamble())
        try:
            await writer.drain()
            while True:
                try:
                    item = await client.get(timeout=self.config.heartbeat)
                except asyncio.TimeoutError:
                    writer.write(encode_comment())
                    await writer.drain()
                    continue
                if item[0] == "event":
                    writer.write(encode_event(item[1], item[2]))
                elif item[0] == "gap":
                    writer.write(encode_gap(item[1]))
                else:  # ("eof",)
                    writer.write(encode_eof())
                    await writer.drain()
                    return
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; the hub just loses one subscriber
        finally:
            self.hub.unsubscribe(client)


# -- entry points -------------------------------------------------------


async def _serve(config: TowerConfig, stop: asyncio.Event) -> int:
    tower = Tower(config)
    await tower.start()
    print(f"[tower] listening on http://{config.host}:{tower.port}")
    print(f"[tower] dashboard: http://{config.host}:{tower.port}/dashboard")
    await stop.wait()
    print("[tower] draining")
    await tower.stop()
    return 0


def run_tower(config: TowerConfig) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully (CLI entry)."""

    async def _main() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop; Ctrl-C still raises KeyboardInterrupt
        return await _serve(config, stop)

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0


class TowerThread:
    """A tower on a daemon thread with its own event loop.

    ``fabric run --tower`` embeds one so the coordinator's synchronous
    drive loop is untouched while its recorder's bus streams out live;
    tests use it the same way.  ``start()`` blocks until the port is
    bound (or startup failed); ``stop()`` drains and joins.
    """

    def __init__(self, config: TowerConfig) -> None:
        self.config = config
        self.port: int | None = None
        self.error: BaseException | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-tower", daemon=True
        )

    def _run(self) -> None:
        async def _amain() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            tower = Tower(self.config)
            try:
                await tower.start()
            except BaseException as exc:  # noqa: BLE001 - report to caller
                self.error = exc
                self._started.set()
                return
            self.port = tower.port
            self._started.set()
            await self._stop_event.wait()
            await tower.stop()

        asyncio.run(_amain())

    def start(self, *, timeout: float = 10.0) -> int:
        """Boot the thread; returns the bound port."""
        self._thread.start()
        if not self._started.wait(timeout):
            raise ExperimentError("tower thread did not start in time")
        if self.error is not None:
            raise ExperimentError(f"tower failed to start: {self.error}")
        assert self.port is not None
        return self.port

    def stop(self, *, timeout: float = 10.0) -> None:
        """Drain the tower and join the thread (idempotent)."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout)
