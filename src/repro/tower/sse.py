"""Server-Sent Events framing for relayed telemetry records.

One telemetry record becomes one SSE event: ``id:`` carries the hub's
monotone sequence number (the ``Last-Event-ID`` resume key), ``event:``
carries the record's telemetry ``kind`` so browsers can
``addEventListener("alert", ...)`` without parsing every payload, and
``data:`` carries the record as one line of sorted-key JSON.  Dropped
records surface as ``event: gap`` with the count, and a draining tower
says goodbye with ``event: eof`` — a client never has to infer loss or
shutdown from silence.
"""

from __future__ import annotations

import json
from typing import Any

from repro.tower.httpd import Request

__all__ = [
    "encode_event",
    "encode_gap",
    "encode_eof",
    "encode_comment",
    "parse_last_event_id",
]

#: SSE ``event:`` names must not collide with telemetry kinds; ``gap``
#: and ``eof`` are tower-reserved (no telemetry kind uses them).
GAP_EVENT = "gap"
EOF_EVENT = "eof"


def _frame(event: str, event_id: int | None, data: str) -> bytes:
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    for chunk in data.split("\n"):  # JSON is one line, but stay correct
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def encode_event(seq: int, record: dict[str, Any]) -> bytes:
    """One relayed record as an SSE frame (id = hub sequence)."""
    kind = str(record.get("kind") or "record")
    data = json.dumps(record, sort_keys=True, default=repr)
    return _frame(kind, seq, data)


def encode_gap(dropped: int) -> bytes:
    """An in-stream loss marker: this client missed ``dropped`` records."""
    return _frame(GAP_EVENT, None, json.dumps({"dropped": dropped}))


def encode_eof(reason: str = "drain") -> bytes:
    """The tower is shutting down; the stream ends after this frame."""
    return _frame(EOF_EVENT, None, json.dumps({"reason": reason}))


def encode_comment(text: str = "keepalive") -> bytes:
    """An SSE comment line — the idle heartbeat that keeps proxies and
    clients convinced the connection is alive."""
    return f": {text}\n\n".encode("utf-8")


def parse_last_event_id(request: Request) -> int | None:
    """The client's resume position: ``Last-Event-ID`` header (what
    ``EventSource`` sends on reconnect) or a ``last_event_id`` query
    parameter (curl-friendly).  Unparseable values mean "from now" —
    a malformed resume must not take the stream down."""
    raw = request.headers.get("last-event-id") or request.param("last_event_id")
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None
