"""The ``/metrics`` exposition: fleet registry + tower internals.

Two registries are merged into one Prometheus text body:

* the **fleet** registry — the ambient
  :class:`~repro.fleet.metrics.MetricsRegistry` when the tower runs
  inside a coordinator process, plus every ``metrics`` snapshot record
  seen on the relay (fabric workers and finished campaigns emit these
  into their telemetry logs), rebuilt with
  :func:`~repro.fleet.metrics.registry_from_snapshot` exactly like
  ``python -m repro fleet metrics`` does offline;
* the **tower** registry — the gateway's own operational counters
  (connected clients, events relayed, slow-consumer drops, HTTP
  requests per path, webhook deliveries/failures), rebuilt from hub
  state at scrape time so there is no double bookkeeping.

Both renderings are deterministically ordered; identical state is
identical bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.fleet.metrics import (
    MetricsRegistry,
    get_registry,
    registry_from_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tower.app import Tower

__all__ = ["SnapshotCache", "tower_registry", "render_exposition"]


class SnapshotCache:
    """Latest ``metrics`` snapshot per emitting stream.

    Keyed by the record's worker/log identity so N processes' snapshots
    merge the way ``fleet metrics`` merges logs: later snapshots from
    the same stream replace earlier ones, distinct streams coexist.
    """

    def __init__(self) -> None:
        self._latest: dict[str, dict[str, Any]] = {}

    def observe(self, seq: int, record: dict[str, Any]) -> None:
        """Hub tap signature: ``(seq, record)``."""
        if record.get("kind") != "metrics":
            return
        snapshot = record.get("snapshot")
        if not isinstance(snapshot, dict):
            return
        key = str(record.get("worker") or record.get("log") or record.get("span") or "main")
        self._latest[key] = snapshot

    def merged(self, into: MetricsRegistry) -> MetricsRegistry:
        for key in sorted(self._latest):
            registry_from_snapshot(self._latest[key], into=into)
        return into


def tower_registry(tower: "Tower") -> MetricsRegistry:
    """The gateway's own metrics, rebuilt from live state."""
    registry = MetricsRegistry()
    hub = tower.hub
    registry.gauge(
        "tower_clients_connected", "SSE clients currently attached"
    ).set(float(hub.clients))
    registry.counter(
        "tower_events_published_total", "records that entered the hub"
    ).value = float(hub.published)
    registry.counter(
        "tower_events_relayed_total", "record deliveries across all clients"
    ).value = float(hub.relayed)
    registry.counter(
        "tower_dropped_slow_consumer_total",
        "records dropped because a client queue was full",
    ).value = float(hub.dropped)
    for path in sorted(tower.request_counts):
        registry.counter(
            "tower_http_requests_total", "HTTP requests served", path=path
        ).value = float(tower.request_counts[path])
    if tower.webhooks is not None:
        registry.counter(
            "tower_webhook_delivered_total", "webhook POSTs acknowledged 2xx"
        ).value = float(tower.webhooks.delivered)
        registry.counter(
            "tower_webhook_dead_letter_total",
            "alerts journalled after exhausting retries",
        ).value = float(tower.webhooks.failed)
    return registry


def render_exposition(tower: "Tower") -> str:
    """The full ``/metrics`` body: fleet series then tower series."""
    fleet = MetricsRegistry()
    ambient = get_registry()
    if ambient is not None:
        registry_from_snapshot(ambient.snapshot(), into=fleet)
    tower.snapshots.merged(fleet)
    return fleet.prometheus_text() + tower_registry(tower).prometheus_text()
